/**
 * @file
 * Cross-run memoization of per-candidate refinement results - the core
 * hook behind incremental re-analysis (docs/SERVING.md).
 *
 * Both refinement stages are per-candidate pure given frozen substrates:
 * CS and FS read only the post-FI environment, the DDG, the hint index
 * and the module, never each other's overlays. A candidate's result can
 * therefore be reused across runs when everything its walks *actually
 * read* is unchanged. The walker records the owning function of every
 * value it touches (see DdgWalker::enableTouchCapture); a RefineMemo
 * implementation validates a stored record by comparing per-function
 * substrate content hashes over that recorded touched-set - verification
 * of what was read, not prediction of what might change - and the
 * stages then skip the walk phase for validated candidates.
 *
 * Warm results are byte-identical to cold runs at the rendered-artifact
 * level: bounds are structural types (re-interned through the current
 * run's TypeTable by the memo implementation), and per-PR-5 guarantees
 * walk results never depend on memo sharing. Walk statistics and
 * timings DO differ warm vs cold; artifacts exclude them.
 *
 * The canonical implementation lives in src/serve (IncrementalMemo);
 * core only defines the interface so the pipeline stays free of
 * serialization concerns.
 */
#ifndef MANTA_CORE_REFINE_MEMO_H
#define MANTA_CORE_REFINE_MEMO_H

#include <vector>

#include "analysis/ddg.h"
#include "analysis/pointsto.h"
#include "core/ddg_walk.h"
#include "core/hints.h"
#include "core/unify.h"

namespace manta {

/** Cached outcome of the context-sensitive stage for one candidate. */
struct CtxCached
{
    /**
     * True when the stage produced a refined interval (the collected
     * type set was non-empty). False = candidate passed through as
     * still-over-approximated with no overlay entry.
     */
    bool hasBound = false;
    /** The post-refineWithin interval, in the current run's table. */
    BoundPair bound;
};

/** Cached outcome of the flow-sensitive stage for one candidate. */
struct FlowCached
{
    /**
     * Final bounds per site, parallel to the stage's regenerated site
     * list (def site first, then use sites in instruction order - the
     * enumeration is derived from the candidate's unchanged owning
     * function, so positions line up across runs).
     */
    std::vector<BoundPair> siteBounds;
    /** True when the def-site interval was refined (not lost). */
    bool hasRefined = false;
    /** The post-refineWithin def-site interval when hasRefined. */
    BoundPair refined;
};

/**
 * Cross-run refinement memo consulted by the CS/FS stages. All calls
 * happen on the inference thread, sequentially, between beginRun and
 * the end of infer(); implementations need no internal locking for
 * them. Lookup/store receive ValueIds of the *current* run; the
 * implementation owns the translation to stable cross-run keys.
 */
class RefineMemo
{
  public:
    virtual ~RefineMemo() = default;

    /**
     * Called once per infer() run, after flow-insensitive unification
     * has populated `env`. Returns false to disable memoization for
     * this run (e.g. unsupported configuration); the stages then walk
     * everything cold and store nothing. The module is non-const so
     * the implementation can re-intern cached bounds into the run's
     * TypeTable at lookup time.
     */
    virtual bool beginRun(Module &module, const Ddg &ddg,
                          const HintIndex &hints, const PointsTo &pts,
                          const TypeEnv &env, const WalkBudget &budget) = 0;

    /**
     * Owning-function attribution for touch capture: a numValues-sized
     * array mapping value raw id to owning function raw id (invalid
     * raw = unattributable; candidates touching such values are never
     * cached). Valid until the next beginRun.
     */
    virtual const std::uint32_t *valueOwners(std::size_t *count) const = 0;

    /** True (+ fills `out`) when a validated CS record exists for v. */
    virtual bool lookupCtx(ValueId v, CtxCached &out) = 0;

    /**
     * Store a freshly computed CS outcome. `touched` holds the raw
     * function ids the candidate's walks read (current run's ids).
     */
    virtual void storeCtx(ValueId v, const CtxCached &rec,
                          const std::vector<std::uint32_t> &touched) = 0;

    /**
     * True (+ fills `out`) when a validated FS record exists for v AND
     * its stored site count equals `num_sites` (a mismatch means the
     * validation was somehow stale; treated as a miss).
     */
    virtual bool lookupFlow(ValueId v, std::size_t num_sites,
                            FlowCached &out) = 0;

    /** Store a freshly computed FS outcome. */
    virtual void storeFlow(ValueId v, const FlowCached &rec,
                           const std::vector<std::uint32_t> &touched) = 0;
};

} // namespace manta

#endif // MANTA_CORE_REFINE_MEMO_H
