/**
 * @file
 * Global flow-insensitive type inference (paper Section 4.1, Table 1).
 *
 * A unification-based algorithm: type variables (SSA values and object
 * fields) are merged into equivalence classes by the COPY/LOAD/STORE
 * rules, and every type-revealing hint is folded into its class's
 * (F-up, F-down) bound pair - join into the upper bound, meet into the
 * lower bound. Afterwards every variable classifies as Precise,
 * Over-approximated or Unknown; unknowns widen to the any-type state.
 */
#ifndef MANTA_CORE_UNIFY_H
#define MANTA_CORE_UNIFY_H

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/pointsto.h"
#include "core/hints.h"
#include "core/typevar.h"
#include "types/bounds.h"

namespace manta {

/**
 * Union-find over type variables with per-class type bounds.
 * Shared by the flow-insensitive stage (which populates it) and the
 * refinement stages (which read equivalence classes and overlay
 * refined bounds).
 */
class TypeEnv
{
  public:
    explicit TypeEnv(TypeTable &types) : types_(types) {}

    /** Dense index of a variable, created on first use. */
    std::uint32_t indexOf(const TypeVar &var);

    /** Index lookup without creation; UINT32_MAX when absent. */
    std::uint32_t tryIndexOf(const TypeVar &var) const;

    /** Union-find root of an index. */
    std::uint32_t find(std::uint32_t index);

    /**
     * Root lookup without path compression: a pure read, safe to call
     * concurrently from many threads as long as nobody is mutating the
     * environment (the refinement stages' batched walkers rely on
     * this — unification has finished by the time they run).
     */
    std::uint32_t find(std::uint32_t index) const;

    /** Merge two classes (bounds merge too). */
    void unite(std::uint32_t a, std::uint32_t b);

    /** Fold a hint into a class. */
    void addHint(std::uint32_t index, TypeRef type);

    /**
     * Overwrite a class's bounds wholesale. The subtype engine's
     * sketch lowering (subtype/solver.cc) uses this to publish solved
     * intervals onto singleton classes; the unification stage never
     * calls it.
     */
    void
    setBounds(std::uint32_t index, const BoundPair &bp)
    {
        bounds_[find(index)] = bp;
    }

    /** Current bounds of a variable (unknown pair if never seen). */
    BoundPair boundsOf(const TypeVar &var);

    /** Mutation-free bounds read (no path compression; thread-safe
     *  against concurrent const readers on a frozen environment). */
    BoundPair boundsOf(const TypeVar &var) const;

    /** Classification of a variable per Section 4.1. */
    TypeClass classifyOf(const TypeVar &var);

    /** Are two variables in the same equivalence class? */
    bool sameClass(const TypeVar &a, const TypeVar &b);

    /** Offsets with a registered field variable, per object. */
    const std::unordered_set<std::int32_t> &fieldsOf(ObjectId obj) const;

    std::size_t numVars() const { return parents_.size(); }

    TypeTable &types() { return types_; }

  private:
    TypeTable &types_;
    std::unordered_map<TypeVar, std::uint32_t> index_;
    std::vector<std::uint32_t> parents_;
    std::vector<BoundPair> bounds_;
    std::unordered_map<std::uint32_t, std::unordered_set<std::int32_t>>
        fields_;
    static const std::unordered_set<std::int32_t> no_fields_;
};

/** Outcome counters of one inference stage. */
struct StageStats
{
    std::size_t precise = 0;
    std::size_t over = 0;
    std::size_t unknown = 0;

    std::size_t total() const { return precise + over + unknown; }
};

/** The flow-insensitive unification stage. */
class FlowInsensitiveInference
{
  public:
    FlowInsensitiveInference(Module &module, const PointsTo &pts,
                             const HintIndex &hints)
        : module_(module), pts_(pts), hints_(hints)
    {}

    /**
     * Run Table 1 to completion, populating `env`. Returns the
     * classification counts over all SSA values.
     */
    StageStats run(TypeEnv &env);

  private:
    void unifyValueValue(TypeEnv &env, ValueId a, ValueId b);
    void unifyObjTypes(TypeEnv &env, ValueId a, ValueId b);
    void processUnifications(TypeEnv &env);
    void collapseUnknownOffsets(TypeEnv &env);
    void applyHints(TypeEnv &env);

    /** Max points-to set size for the object-type unification rule. */
    static constexpr std::size_t maxObjUnifySet = 4;

    Module &module_;
    const PointsTo &pts_;
    const HintIndex &hints_;
};

} // namespace manta

#endif // MANTA_CORE_UNIFY_H
