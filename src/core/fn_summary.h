/**
 * @file
 * Per-function walk summaries for the modular bottom-up scheduler.
 *
 * A summary entry is a completed (never budget-truncated) FIND_ROOTS
 * or COLLECT_TYPES closure keyed by its start value, exactly what
 * DdgWalker memoizes within one walker — lifted out of the walker so
 * every SCC analyzed after the owning function's SCC can instantiate
 * it at the call site instead of re-walking the callee body. Because
 * a memoized answer is bit-identical to a recomputed one (the PR 5
 * walker contract, guarded by the walk_diff oracle), seeding walkers
 * from this store cannot change any refined bound; it only removes
 * repeated traversal work.
 *
 * Concurrency protocol (core/refine_ctx.cc, core/refine_flow.cc):
 * within one scheduling wave the store is frozen and read by many
 * walkers concurrently; between waves the scheduler publishes each
 * pack's harvest sequentially in pack order (first entry wins), so
 * the store contents at every wave boundary are independent of
 * MANTA_JOBS. Entries remain valid for one infer() run: they are a
 * function of the frozen DDG, type environment, hint index and walk
 * budget.
 *
 * When touch capture is active (serve incremental mode), entries
 * carry the touched-function list of the query that produced them so
 * a store hit replays the same dirtiness accounting a local memo hit
 * would; an entry harvested without capture poisons capturing
 * candidates instead of silently under-reporting their reads.
 */
#ifndef MANTA_CORE_FN_SUMMARY_H
#define MANTA_CORE_FN_SUMMARY_H

#include <cstdint>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "mir/mir.h"
#include "types/type.h"

namespace manta {

/** Compact per-function accounting of what the store holds. */
struct FnSummary
{
    std::uint32_t rootEntries = 0;  ///< FIND_ROOTS closures published.
    std::uint32_t typeEntries = 0;  ///< COLLECT_TYPES closures published.
};

/** Aggregate store counters (surfaced via InferenceProfile). */
struct SummaryStoreStats
{
    std::size_t publishedRoots = 0;
    std::size_t publishedTypes = 0;
    std::size_t dropped = 0;  ///< Re-published keys (first entry won).
};

/** Cross-SCC walk-summary store. */
class FnSummaryStore
{
  public:
    struct RootsEntry
    {
        std::vector<ValueId> roots;
        std::vector<std::uint32_t> touched;
        bool hasTouched = false;
    };
    struct TypesEntry
    {
        std::vector<TypeRef> types;
        std::vector<std::uint32_t> touched;
        bool hasTouched = false;
    };

    /** One pack's harvest, published between waves. */
    struct Delta
    {
        /** (start value raw, owner function raw, payload). */
        std::vector<std::tuple<std::uint32_t, std::uint32_t, RootsEntry>>
            roots;
        std::vector<std::tuple<std::uint32_t, std::uint32_t, TypesEntry>>
            types;

        bool empty() const { return roots.empty() && types.empty(); }
    };

    /// @name Read side (frozen during a wave; safe to call from many
    /// walker threads concurrently).
    /// @{
    const RootsEntry *
    findRoots(std::uint32_t value_raw) const
    {
        const auto it = roots_.find(value_raw);
        return it == roots_.end() ? nullptr : &it->second;
    }

    const TypesEntry *
    findTypes(std::uint32_t value_raw) const
    {
        const auto it = types_.find(value_raw);
        return it == types_.end() ? nullptr : &it->second;
    }
    /// @}

    /** Publish one harvest (sequential; first entry per key wins). */
    void publish(Delta &&delta);

    /** Per-function entry counts (invalidation/reporting unit). */
    const std::unordered_map<std::uint32_t, FnSummary> &
    perFunction() const
    {
        return per_func_;
    }

    const SummaryStoreStats &stats() const { return stats_; }

    std::size_t numRootEntries() const { return roots_.size(); }
    std::size_t numTypeEntries() const { return types_.size(); }

  private:
    std::unordered_map<std::uint32_t, RootsEntry> roots_;
    std::unordered_map<std::uint32_t, TypesEntry> types_;
    std::unordered_map<std::uint32_t, FnSummary> per_func_;
    SummaryStoreStats stats_;
};

} // namespace manta

#endif // MANTA_CORE_FN_SUMMARY_H
