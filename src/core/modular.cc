#include "core/modular.h"

#include <algorithm>

namespace manta {

ModularSchedule::ModularSchedule(const Module &module,
                                 const CallGraph &graph)
    : sccs_(graph, module.numFuncs())
{
    // Kind-based attribution: arguments and instruction results carry
    // their function directly. Literals, globals and function
    // addresses stay unowned — their closures are still walked and
    // published, just scheduled in the first wave.
    const std::size_t n = module.numValues();
    owner_of_.assign(n, kNoOwner);
    for (std::size_t i = 0; i < n; ++i) {
        const Value &v =
            module.value(ValueId(static_cast<ValueId::RawType>(i)));
        if (v.kind == ValueKind::Argument && v.argFunc.valid()) {
            owner_of_[i] = v.argFunc.raw();
        } else if (v.kind == ValueKind::InstResult && v.inst.valid()) {
            const BlockId parent = module.inst(v.inst).parent;
            if (parent.valid())
                owner_of_[i] = module.block(parent).func.raw();
        }
    }
}

std::vector<ModularSchedule::Wave>
ModularSchedule::plan(const std::vector<ValueId> &candidates,
                      const std::vector<std::size_t> &misses,
                      std::size_t pack_size) const
{
    if (pack_size == 0)
        pack_size = 1;
    const std::size_t num_waves = sccs_.numWaves();
    std::vector<std::vector<std::size_t>> by_wave(
        num_waves == 0 ? 1 : num_waves);
    for (std::size_t k = 0; k < misses.size(); ++k) {
        const std::uint32_t w = waveOfValue(candidates[misses[k]].raw());
        by_wave[w].push_back(k);
    }

    std::vector<Wave> out;
    for (const auto &ks : by_wave) {
        if (ks.empty())
            continue;
        Wave wave;
        for (std::size_t lo = 0; lo < ks.size(); lo += pack_size) {
            const std::size_t hi = std::min(ks.size(), lo + pack_size);
            Pack pack;
            pack.ks.assign(ks.begin() + static_cast<std::ptrdiff_t>(lo),
                           ks.begin() + static_cast<std::ptrdiff_t>(hi));
            wave.packs.push_back(std::move(pack));
        }
        out.push_back(std::move(wave));
    }
    return out;
}

} // namespace manta
