#include "core/refine_flow.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <set>

#include "support/task_pool.h"

namespace manta {

/**
 * Per-worker walk-phase scratch. The DdgWalker answers the alias-root
 * queries (memoized within the worker); the interner/epoch structures
 * back the fast CFG walks. Everything a worker touches beyond this is
 * frozen for the whole phase.
 */
struct FlowRefinement::Worker
{
    Worker(const Ddg &ddg, const TypeEnv *env, TypeTable &types,
           WalkBudget budget, WalkEngine engine)
        : walker(ddg, env, types, budget, engine)
    {}

    DdgWalker walker;
    CtxInterner ctx;        ///< Contexts for the CFG walk (call insts).
    EpochVisited visited;   ///< (inst, ctx-top) marks for the CFG walk.
    EpochFlags roots;       ///< Current candidate's alias-root set.
    WalkStats cfgStats;     ///< CFG-walk counters (walker has its own).
};

FlowRefinement::FlowRefinement(Module &module, const Ddg &ddg,
                               const HintIndex &hints, TypeEnv &env,
                               WalkBudget budget, WalkEngine engine,
                               bool parallel, RefineMemo *memo,
                               const ModularSchedule *schedule,
                               FnSummaryStore *summaries)
    : module_(module), ddg_(ddg), hints_(hints), env_(env), budget_(budget),
      engine_(engine), parallel_(parallel), memo_(memo),
      schedule_(schedule), summaries_(summaries), instIndex_(module)
{}

const Cfg &
FlowRefinement::cfgOf(FuncId func)
{
    const auto it = cfg_cache_.find(func.raw());
    if (it != cfg_cache_.end())
        return it->second;
    return cfg_cache_.emplace(func.raw(), Cfg(module_, func)).first->second;
}

namespace {

/** Reference-engine CFG walk item: instruction plus context copy. */
struct WalkItem
{
    InstId inst;
    std::vector<InstId> ctx;
};

struct VisitKey
{
    std::uint32_t inst;
    std::uint32_t top;
    friend bool
    operator<(const VisitKey &a, const VisitKey &b)
    {
        if (a.inst != b.inst)
            return a.inst < b.inst;
        return a.top < b.top;
    }
};

VisitKey
keyOf(const WalkItem &item)
{
    return VisitKey{item.inst.raw(),
                    item.ctx.empty() ? 0xffffffffu : item.ctx.back().raw()};
}

/** Fast-engine CFG walk item: two ids. */
struct FastItem
{
    std::uint32_t inst;
    std::uint32_t ctx;
};

} // namespace

std::vector<TypeRef>
FlowRefinement::reachableTypesFast(Worker &w, InstId site)
{
    ++w.cfgStats.queries;
    std::vector<TypeRef> types;
    w.visited.ensure(site.raw() + 1);
    w.visited.newEpoch();
    std::vector<FastItem> work;
    work.push_back(FastItem{site.raw(), CtxInterner::kEmpty});
    w.visited.insert(site.raw(), CtxInterner::kNoSite);

    std::size_t steps = 0;
    while (!work.empty()) {
        if (++steps > budget_.maxVisited) {
            ++w.cfgStats.truncated;
            break;
        }
        const FastItem item = work.back();
        work.pop_back();

        const InstId iid(static_cast<InstId::RawType>(item.inst));
        const Instruction &inst = module_.inst(iid);
        // Touch capture: the walk read this instruction (and below,
        // possibly a callee's block structure); its function's content
        // hash covers the CFG shape, positions and hints read here.
        if (w.walker.captureEnabled())
            w.walker.noteFunc(module_.block(inst.parent).func.raw());

        // Annotation check: the first alias annotation met along the
        // path is collected and strong-updates (stops) the path.
        bool stop = false;
        for (const TypeHint &hint : hints_.at(iid)) {
            for (const ValueId r : w.walker.rootsOf(hint.value)) {
                if (w.roots.marked(r.raw())) {
                    types.push_back(hint.type);
                    stop = true;
                    break;
                }
            }
        }
        if (stop)
            continue;

        auto enqueue = [&](InstId next, std::uint32_t ctx) {
            w.visited.ensure(next.raw() + 1);
            if (w.visited.insert(next.raw(), w.ctx.top(ctx)))
                work.push_back(FastItem{next.raw(), ctx});
        };

        // Descend into direct callees: the callee body executes before
        // control returns to this point.
        if (inst.op == Opcode::Call && inst.callee.valid() &&
                w.ctx.depth(item.ctx) < budget_.maxStack) {
            w.walker.noteFunc(inst.callee.raw());
            const Function &callee = module_.func(inst.callee);
            for (const BlockId bid : callee.blocks) {
                const BasicBlock &bb = module_.block(bid);
                if (bb.insts.empty())
                    continue;
                const Instruction &term = module_.inst(bb.insts.back());
                if (term.op == Opcode::Ret) {
                    const std::uint32_t ctx = w.ctx.push(item.ctx, iid);
                    if (w.ctx.depth(ctx) > w.cfgStats.peakCtxDepth)
                        w.cfgStats.peakCtxDepth = w.ctx.depth(ctx);
                    enqueue(bb.insts.back(), ctx);
                }
            }
        }

        const BasicBlock &bb = module_.block(inst.parent);
        const std::size_t pos = instIndex_.positionInBlock(iid);
        if (pos > 0) {
            enqueue(bb.insts[pos - 1], item.ctx);
            continue;
        }

        const Cfg &cfg = cfgOf(bb.func);
        for (const BlockId pred : cfg.preds(inst.parent)) {
            const BasicBlock &pb = module_.block(pred);
            if (!pb.insts.empty())
                enqueue(pb.insts.back(), item.ctx);
        }

        // At the function entry: return to the call site we descended
        // from. The flow-sensitive walk never ascends past its starting
        // frame - collecting hints from arbitrary callers without a
        // context is the context-sensitive stage's job, not this one's
        // (mixing them would re-introduce the polymorphic merging that
        // Section 4.2.1 exists to avoid).
        const Function &fn = module_.func(bb.func);
        if (inst.parent == fn.entry() && item.ctx != CtxInterner::kEmpty) {
            const InstId ret_site(
                static_cast<InstId::RawType>(w.ctx.top(item.ctx)));
            enqueue(ret_site, w.ctx.pop(item.ctx));
        }
    }
    w.cfgStats.steps += steps;
    return types;
}

std::vector<TypeRef>
FlowRefinement::reachableTypesRef(Worker &w, InstId site)
{
    ++w.cfgStats.queries;
    std::vector<TypeRef> types;
    std::set<VisitKey> visited;
    std::vector<WalkItem> work;
    work.push_back(WalkItem{site, {}});
    visited.insert(keyOf(work.back()));

    std::size_t steps = 0;
    while (!work.empty()) {
        if (++steps > budget_.maxVisited) {
            ++w.cfgStats.truncated;
            break;
        }
        WalkItem item = std::move(work.back());
        work.pop_back();

        const Instruction &inst = module_.inst(item.inst);

        // Annotation check: the first alias annotation met along the
        // path is collected and strong-updates (stops) the path.
        bool stop = false;
        for (const TypeHint &hint : hints_.at(item.inst)) {
            for (const ValueId r : w.walker.rootsOf(hint.value)) {
                if (w.roots.marked(r.raw())) {
                    types.push_back(hint.type);
                    stop = true;
                    break;
                }
            }
        }
        if (stop)
            continue;

        auto enqueue = [&](InstId next, std::vector<InstId> ctx) {
            WalkItem n{next, std::move(ctx)};
            if (visited.insert(keyOf(n)).second)
                work.push_back(std::move(n));
        };

        // Descend into direct callees: the callee body executes before
        // control returns to this point.
        if (inst.op == Opcode::Call && inst.callee.valid() &&
                item.ctx.size() < budget_.maxStack) {
            const Function &callee = module_.func(inst.callee);
            for (const BlockId bid : callee.blocks) {
                const BasicBlock &bb = module_.block(bid);
                if (bb.insts.empty())
                    continue;
                const Instruction &term = module_.inst(bb.insts.back());
                if (term.op == Opcode::Ret) {
                    auto ctx = item.ctx;
                    ctx.push_back(item.inst);
                    if (ctx.size() > w.cfgStats.peakCtxDepth)
                        w.cfgStats.peakCtxDepth = ctx.size();
                    enqueue(bb.insts.back(), std::move(ctx));
                }
            }
        }

        const BasicBlock &bb = module_.block(inst.parent);
        const std::size_t pos = instIndex_.positionInBlock(item.inst);
        if (pos > 0) {
            enqueue(bb.insts[pos - 1], item.ctx);
            continue;
        }

        const Cfg &cfg = cfgOf(bb.func);
        for (const BlockId pred : cfg.preds(inst.parent)) {
            const BasicBlock &pb = module_.block(pred);
            if (!pb.insts.empty())
                enqueue(pb.insts.back(), item.ctx);
        }

        // At the function entry: return to the call site we descended
        // from (never ascending past the starting frame; see the fast
        // variant for why).
        const Function &fn = module_.func(bb.func);
        if (inst.parent == fn.entry() && !item.ctx.empty()) {
            auto ctx = item.ctx;
            const InstId ret_site = ctx.back();
            ctx.pop_back();
            enqueue(ret_site, std::move(ctx));
        }
    }
    w.cfgStats.steps += steps;
    return types;
}

void
FlowRefinement::buildFlatHints(WalkStats &stats)
{
    // Single sequential pass in instruction order: one walker computes
    // (or borrows from the shared store) the alias-root closure of
    // every hint value and flattens it into the pooled arrays. The
    // pass is deterministic regardless of MANTA_JOBS, and the fresh
    // closures it publishes seed the store for the walk waves.
    TypeTable &tt = module_.types();
    Worker w(ddg_, &env_, tt, budget_, engine_);
    w.walker.attachSharedSummaries(summaries_);
    const std::size_t ni = module_.numInsts();
    flat_.instSpan.assign(ni, {0, 0});
    // Hint values repeat across sites; flatten each closure once.
    std::unordered_map<std::uint32_t,
                       std::pair<std::uint32_t, std::uint32_t>> pooled;
    for (std::size_t i = 0; i < ni; ++i) {
        const InstId iid(static_cast<InstId::RawType>(i));
        const std::vector<TypeHint> &hints = hints_.at(iid);
        if (hints.empty())
            continue;
        flat_.instSpan[i] = {static_cast<std::uint32_t>(flat_.spans.size()),
                             static_cast<std::uint32_t>(hints.size())};
        for (const TypeHint &hint : hints) {
            auto [it, fresh] = pooled.try_emplace(hint.value.raw());
            if (fresh) {
                const auto begin =
                    static_cast<std::uint32_t>(flat_.rootPool.size());
                for (const ValueId r : w.walker.rootsOf(hint.value))
                    flat_.rootPool.push_back(r.raw());
                it->second = {begin,
                              static_cast<std::uint32_t>(
                                  flat_.rootPool.size()) - begin};
            }
            flat_.spans.push_back(
                {hint.type, it->second.first, it->second.second});
        }
    }
    stats.merge(w.walker.stats());
    FnSummaryStore::Delta delta;
    w.walker.harvestSummaries(delta, *schedule_);
    summaries_->publish(std::move(delta));
}

void
FlowRefinement::buildFlatCfg()
{
    // Flatten the backward-step relation (see reachableTypesFast) into
    // the tagged adjacency, emitting entries in the interpreted push
    // order so walk DFS order - and the truncation point of budget-
    // limited walks - is preserved exactly.
    const std::size_t ni = module_.numInsts();
    fcfg_.rowSpan.assign(ni, {0, 0});
    for (std::size_t i = 0; i < ni; ++i) {
        const InstId iid(static_cast<InstId::RawType>(i));
        const Instruction &inst = module_.inst(iid);
        const auto begin = static_cast<std::uint32_t>(fcfg_.pool.size());

        if (inst.op == Opcode::Call && inst.callee.valid()) {
            const Function &callee = module_.func(inst.callee);
            for (const BlockId bid : callee.blocks) {
                const BasicBlock &bb = module_.block(bid);
                if (bb.insts.empty())
                    continue;
                const Instruction &term = module_.inst(bb.insts.back());
                if (term.op == Opcode::Ret)
                    fcfg_.pool.push_back((FlatCfg::kCall << 30) |
                                         bb.insts.back().raw());
            }
        }

        const BasicBlock &bb = module_.block(inst.parent);
        const std::size_t pos = instIndex_.positionInBlock(iid);
        if (pos > 0) {
            fcfg_.pool.push_back((FlatCfg::kStep << 30) |
                                 bb.insts[pos - 1].raw());
        } else {
            const Cfg &cfg = cfgOf(bb.func);
            for (const BlockId pred : cfg.preds(inst.parent)) {
                const BasicBlock &pb = module_.block(pred);
                if (!pb.insts.empty())
                    fcfg_.pool.push_back((FlatCfg::kStep << 30) |
                                         pb.insts.back().raw());
            }
            const Function &fn = module_.func(bb.func);
            if (inst.parent == fn.entry())
                fcfg_.pool.push_back(FlatCfg::kAscend << 30);
        }
        fcfg_.rowSpan[i] = {begin,
                            static_cast<std::uint32_t>(fcfg_.pool.size()) -
                                begin};
    }
    flatReady_ = true;
}

std::vector<TypeRef>
FlowRefinement::reachableTypesFlat(Worker &w, InstId site)
{
    ++w.cfgStats.queries;
    std::vector<TypeRef> types;
    w.visited.ensure(site.raw() + 1);
    w.visited.newEpoch();
    std::vector<FastItem> work;
    work.push_back(FastItem{site.raw(), CtxInterner::kEmpty});
    w.visited.insert(site.raw(), CtxInterner::kNoSite);

    std::size_t steps = 0;
    while (!work.empty()) {
        if (++steps > budget_.maxVisited) {
            ++w.cfgStats.truncated;
            break;
        }
        const FastItem item = work.back();
        work.pop_back();

        // Annotation check against the flattened hint index: the exact
        // root sets rootsOf() would answer, minus the memo probe.
        bool stop = false;
        const auto [hfirst, hcount] = flat_.instSpan[item.inst];
        for (std::uint32_t h = 0; h < hcount; ++h) {
            const FlatHints::Span &span = flat_.spans[hfirst + h];
            for (std::uint32_t j = 0; j < span.count; ++j) {
                if (w.roots.marked(flat_.rootPool[span.begin + j])) {
                    types.push_back(span.type);
                    stop = true;
                    break;
                }
            }
        }
        if (stop)
            continue;

        const std::uint32_t cur_top = w.ctx.top(item.ctx);
        const auto [rfirst, rcount] = fcfg_.rowSpan[item.inst];
        for (std::uint32_t e = 0; e < rcount; ++e) {
            const std::uint32_t entry = fcfg_.pool[rfirst + e];
            const std::uint32_t tag = entry >> 30;
            const std::uint32_t target = entry & FlatCfg::kPayload;
            if (tag == FlatCfg::kStep) {
                w.visited.ensure(target + 1);
                if (w.visited.insert(target, cur_top))
                    work.push_back(FastItem{target, item.ctx});
            } else if (tag == FlatCfg::kCall) {
                if (w.ctx.depth(item.ctx) >= budget_.maxStack)
                    continue;
                const std::uint32_t ctx = w.ctx.push(
                    item.ctx, InstId(static_cast<InstId::RawType>(item.inst)));
                if (w.ctx.depth(ctx) > w.cfgStats.peakCtxDepth)
                    w.cfgStats.peakCtxDepth = w.ctx.depth(ctx);
                w.visited.ensure(target + 1);
                if (w.visited.insert(target, item.inst))
                    work.push_back(FastItem{target, ctx});
            } else if (item.ctx != CtxInterner::kEmpty) {
                // Ascend to the call site we descended from.
                const std::uint32_t up = w.ctx.pop(item.ctx);
                w.visited.ensure(cur_top + 1);
                if (w.visited.insert(cur_top, w.ctx.top(up)))
                    work.push_back(FastItem{cur_top, up});
            }
        }
    }
    w.cfgStats.steps += steps;
    return types;
}

void
FlowRefinement::candidateSites(ValueId v, CandidateOut &out) const
{
    // Sites: the def site plus every use site.
    const Value &value = module_.value(v);
    if (value.kind == ValueKind::InstResult) {
        out.defSite = value.inst;
    } else if (value.kind == ValueKind::Argument) {
        const Function &fn = module_.func(value.argFunc);
        if (fn.entry().valid() && !module_.block(fn.entry()).insts.empty())
            out.defSite = module_.block(fn.entry()).insts.front();
    }
    if (out.defSite.valid())
        out.sites.push_back(out.defSite);
    for (const InstId user : instIndex_.users(v))
        out.sites.push_back(user);
}

void
FlowRefinement::processCandidate(Worker &w, ValueId v, CandidateOut &out)
{
    // Root set for the alias check.
    w.roots.newEpoch();
    for (const ValueId r : w.walker.rootsOf(v)) {
        w.roots.ensure(r.raw() + 1);
        w.roots.mark(r.raw());
    }

    out.siteTypes.reserve(out.sites.size());
    for (const InstId s : out.sites) {
        if (engine_ != WalkEngine::Fast)
            out.siteTypes.push_back(reachableTypesRef(w, s));
        else if (flatReady_)
            out.siteTypes.push_back(reachableTypesFlat(w, s));
        else
            out.siteTypes.push_back(reachableTypesFast(w, s));
    }
}

FlowRefineResult
FlowRefinement::run(const std::vector<ValueId> &candidates)
{
    FlowRefineResult result;
    TypeTable &tt = module_.types();
    const std::size_t n = candidates.size();
    std::vector<CandidateOut> collected(n);

    // Phase 0: site enumeration (cheap, module-derived) and memo
    // consult. Hits skip the walk phase; their cached per-site bounds
    // line up positionally with the regenerated site list.
    const bool use_memo = memo_ != nullptr && engine_ == WalkEngine::Fast;
    for (std::size_t i = 0; i < n; ++i)
        candidateSites(candidates[i], collected[i]);
    std::vector<FlowCached> cached(use_memo ? n : 0);
    std::vector<char> hit(n, 0);
    std::vector<std::size_t> misses;
    misses.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (use_memo && memo_->lookupFlow(candidates[i],
                                          collected[i].sites.size(),
                                          cached[i])) {
            hit[i] = 1;
        } else {
            misses.push_back(i);
        }
    }
    const std::size_t m = misses.size();

    const std::uint32_t *owners = nullptr;
    std::size_t owners_count = 0;
    if (use_memo)
        owners = memo_->valueOwners(&owners_count);

    std::vector<std::vector<std::uint32_t>> touched(use_memo ? m : 0);
    std::vector<char> poisoned(m, 0);

    auto walkOne = [&](Worker &w, std::size_t k) {
        if (use_memo)
            w.walker.beginCandidate();
        processCandidate(w, candidates[misses[k]], collected[misses[k]]);
        if (use_memo) {
            touched[k] = w.walker.candidateTouched();
            poisoned[k] = w.walker.candidatePoisoned() ? 1 : 0;
        }
    };

    // Phase 1: traversal, reading only frozen state.
    const bool modular = schedule_ != nullptr && summaries_ != nullptr &&
                         engine_ == WalkEngine::Fast;
    if (modular && m > 0) {
        // Bottom-up SCC waves over the shared summary store; see
        // refine_ctx.cc for the publication protocol.
        for (std::size_t f = 0; f < module_.numFuncs(); ++f)
            cfgOf(FuncId(static_cast<FuncId::RawType>(f)));
        // Touch capture needs the per-hint rootsOf() calls to record
        // which functions a candidate's answer read, so the flattened
        // index only serves memo-less (batch) runs - and only modules
        // large enough to amortize the whole-module flattening pass
        // (kFlatIndexMinInsts; tiny modules fall back to the
        // interpreted walk, which answers identically).
        if (!use_memo && flatIndexEligible(module_)) {
            buildFlatHints(result.walk);
            buildFlatCfg();
        }
        const auto waves = schedule_->plan(candidates, misses, kChunk);
        // As in refine_ctx.cc: Workers carry module-sized epoch scratch,
        // so a freelist recycles them across packs and waves instead of
        // constructing one per pack. Harvest drains the memo and every
        // visited/root mark is epoch-stamped, so reuse cannot change a
        // walk's answer or its expansion order.
        std::vector<std::unique_ptr<Worker>> pool_store;
        std::vector<Worker *> idle;
        std::mutex pool_mu;
        auto acquire = [&]() -> Worker * {
            std::lock_guard<std::mutex> lock(pool_mu);
            if (!idle.empty()) {
                Worker *w = idle.back();
                idle.pop_back();
                return w;
            }
            pool_store.push_back(std::make_unique<Worker>(
                ddg_, &env_, tt, budget_, engine_));
            Worker *w = pool_store.back().get();
            w->walker.attachSharedSummaries(summaries_);
            if (use_memo)
                w->walker.enableTouchCapture(owners, owners_count);
            return w;
        };
        auto release = [&](Worker *w) {
            std::lock_guard<std::mutex> lock(pool_mu);
            idle.push_back(w);
        };
        for (const auto &wave : waves) {
            const std::size_t np = wave.packs.size();
            std::vector<WalkStats> stats(np);
            std::vector<FnSummaryStore::Delta> deltas(np);
            auto runPack = [&](std::size_t p) {
                Worker *w = acquire();
                w->walker.resetStats();
                w->cfgStats = WalkStats{};
                for (const std::size_t k : wave.packs[p].ks)
                    walkOne(*w, k);
                stats[p] = w->walker.stats();
                stats[p].merge(w->cfgStats);
                w->walker.harvestSummaries(deltas[p], *schedule_);
                release(w);
            };
            if (parallel_ && np > 1) {
                sharedPool().parallelFor(np, runPack);
            } else {
                for (std::size_t p = 0; p < np; ++p)
                    runPack(p);
            }
            for (std::size_t p = 0; p < np; ++p) {
                result.walk.merge(stats[p]);
                summaries_->publish(std::move(deltas[p]));
            }
        }
    } else if (parallel_ && engine_ == WalkEngine::Fast && m > 1) {
        // Build every per-function CFG up front; the lazy cache would
        // be a write from multiple workers.
        for (std::size_t f = 0; f < module_.numFuncs(); ++f)
            cfgOf(FuncId(static_cast<FuncId::RawType>(f)));
        const std::size_t chunks = (m + kChunk - 1) / kChunk;
        std::vector<WalkStats> stats(chunks);
        sharedPool().parallelFor(chunks, [&](std::size_t c) {
            Worker w(ddg_, &env_, tt, budget_, engine_);
            if (use_memo)
                w.walker.enableTouchCapture(owners, owners_count);
            const std::size_t hi = std::min(m, (c + 1) * kChunk);
            for (std::size_t k = c * kChunk; k < hi; ++k)
                walkOne(w, k);
            stats[c] = w.walker.stats();
            stats[c].merge(w.cfgStats);
        });
        for (const WalkStats &s : stats)
            result.walk.merge(s);
    } else if (m > 0) {
        Worker w(ddg_, &env_, tt, budget_, engine_);
        if (use_memo)
            w.walker.enableTouchCapture(owners, owners_count);
        for (std::size_t k = 0; k < m; ++k)
            walkOne(w, k);
        result.walk = w.walker.stats();
        result.walk.merge(w.cfgStats);
    }

    // Phase 2: merge, sequentially in candidate/site order (join/meet
    // intern new type nodes; interning order defines TypeRef ids).
    std::size_t mi = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const ValueId v = candidates[i];
        const CandidateOut &out = collected[i];

        if (hit[i]) {
            ++result.reused;
            const FlowCached &rec = cached[i];
            for (std::size_t j = 0; j < out.sites.size(); ++j)
                result.siteBounds.emplace(SiteVar{v, out.sites[j]},
                                          rec.siteBounds[j]);
            if (!rec.hasRefined) {
                ++result.lost;
            } else {
                result.refined.emplace(v, rec.refined);
                if (rec.refined.classify(tt) == TypeClass::Precise)
                    ++result.resolved;
            }
            continue;
        }
        const std::size_t k = mi++;

        FlowCached rec;
        rec.siteBounds.reserve(out.sites.size());
        BoundPair def_bp = BoundPair::anyType(tt);
        for (std::size_t j = 0; j < out.sites.size(); ++j) {
            const InstId s = out.sites[j];
            const std::vector<TypeRef> &types = out.siteTypes[j];
            if (types.empty()) {
                // Site refined to unknown (Section 6.4 aggression).
                result.siteBounds.emplace(SiteVar{v, s},
                                          BoundPair::anyType(tt));
                rec.siteBounds.push_back(BoundPair::anyType(tt));
                continue;
            }
            const BoundPair site_bp(tt.joinAll(types), tt.meetAll(types));
            result.siteBounds.emplace(SiteVar{v, s}, site_bp);
            rec.siteBounds.push_back(site_bp);
            if (s == out.defSite)
                def_bp = site_bp;
        }

        // The variable-level flow-sensitive type is its def-site type.
        // Per Algorithm 2 line 9 the bounds are only updated when type
        // hints were collected; a def site with no reachable hints
        // keeps the previous stage's interval (standalone FS therefore
        // leaves such variables unknown - the Section 6.4 aggression).
        if (def_bp.classify(tt) == TypeClass::Unknown) {
            ++result.lost;
        } else {
            def_bp = BoundPair::refineWithin(tt, def_bp,
                                             env_.boundsOf(TypeVar::of(v)));
            result.refined.emplace(v, def_bp);
            rec.hasRefined = true;
            rec.refined = def_bp;
            if (def_bp.classify(tt) == TypeClass::Precise)
                ++result.resolved;
        }
        if (use_memo && !poisoned[k])
            memo_->storeFlow(v, rec, touched[k]);
    }
    return result;
}

} // namespace manta
