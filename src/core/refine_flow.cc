#include "core/refine_flow.h"

#include <memory>
#include <set>

#include "support/error.h"

namespace manta {

FlowRefinement::FlowRefinement(Module &module, const Ddg &ddg,
                               const HintIndex &hints, TypeEnv &env,
                               WalkBudget budget)
    : module_(module), ddg_(ddg), hints_(hints), env_(env), budget_(budget),
      walker_(ddg, &env, module.types(), budget), instIndex_(module)
{
    call_sites_.assign(module.numFuncs(), {});
    for (std::size_t i = 0; i < module.numInsts(); ++i) {
        const InstId iid(static_cast<InstId::RawType>(i));
        const Instruction &inst = module.inst(iid);
        if (inst.op == Opcode::Call && inst.callee.valid())
            call_sites_[inst.callee.index()].push_back(iid);
    }
}

const std::vector<ValueId> &
FlowRefinement::rootsOf(ValueId v)
{
    const auto it = roots_cache_.find(v.raw());
    if (it != roots_cache_.end())
        return it->second;
    return roots_cache_.emplace(v.raw(), walker_.findRoots(v)).first->second;
}

const Cfg &
FlowRefinement::cfgOf(FuncId func)
{
    const auto it = cfg_cache_.find(func.raw());
    if (it != cfg_cache_.end())
        return it->second;
    return cfg_cache_.emplace(func.raw(), Cfg(module_, func)).first->second;
}

namespace {

struct WalkItem
{
    InstId inst;
    std::vector<InstId> ctx;
};

struct VisitKey
{
    std::uint32_t inst;
    std::uint32_t top;
    friend bool
    operator<(const VisitKey &a, const VisitKey &b)
    {
        if (a.inst != b.inst)
            return a.inst < b.inst;
        return a.top < b.top;
    }
};

VisitKey
keyOf(const WalkItem &item)
{
    return VisitKey{item.inst.raw(),
                    item.ctx.empty() ? 0xffffffffu : item.ctx.back().raw()};
}

} // namespace

std::vector<TypeRef>
FlowRefinement::reachableTypes(
    InstId site, const std::unordered_map<std::uint32_t, char> &roots)
{
    std::vector<TypeRef> types;
    std::set<VisitKey> visited;
    std::vector<WalkItem> work;
    work.push_back(WalkItem{site, {}});
    visited.insert(keyOf(work.back()));

    std::size_t steps = 0;
    while (!work.empty()) {
        if (++steps > budget_.maxVisited)
            break;
        WalkItem item = std::move(work.back());
        work.pop_back();

        const Instruction &inst = module_.inst(item.inst);

        // Annotation check: the first alias annotation met along the
        // path is collected and strong-updates (stops) the path.
        bool stop = false;
        for (const TypeHint &hint : hints_.at(item.inst)) {
            const auto hr = rootsOf(hint.value);
            for (const ValueId r : hr) {
                if (roots.count(r.raw())) {
                    types.push_back(hint.type);
                    stop = true;
                    break;
                }
            }
        }
        if (stop)
            continue;

        auto enqueue = [&](InstId next, std::vector<InstId> ctx) {
            WalkItem n{next, std::move(ctx)};
            if (visited.insert(keyOf(n)).second)
                work.push_back(std::move(n));
        };

        // Descend into direct callees: the callee body executes before
        // control returns to this point.
        if (inst.op == Opcode::Call && inst.callee.valid() &&
                item.ctx.size() < budget_.maxStack) {
            const Function &callee = module_.func(inst.callee);
            for (const BlockId bid : callee.blocks) {
                const BasicBlock &bb = module_.block(bid);
                if (bb.insts.empty())
                    continue;
                const Instruction &term = module_.inst(bb.insts.back());
                if (term.op == Opcode::Ret) {
                    auto ctx = item.ctx;
                    ctx.push_back(item.inst);
                    enqueue(bb.insts.back(), std::move(ctx));
                }
            }
        }

        const BasicBlock &bb = module_.block(inst.parent);
        const std::size_t pos = instIndex_.positionInBlock(item.inst);
        if (pos > 0) {
            enqueue(bb.insts[pos - 1], item.ctx);
            continue;
        }

        const Cfg &cfg = cfgOf(bb.func);
        const auto &preds = cfg.preds(inst.parent);
        for (const BlockId pred : preds) {
            const BasicBlock &pb = module_.block(pred);
            if (!pb.insts.empty())
                enqueue(pb.insts.back(), item.ctx);
        }

        // At the function entry: return to the call site we descended
        // from. The flow-sensitive walk never ascends past its starting
        // frame - collecting hints from arbitrary callers without a
        // context is the context-sensitive stage's job, not this one's
        // (mixing them would re-introduce the polymorphic merging that
        // Section 4.2.1 exists to avoid).
        const Function &fn = module_.func(bb.func);
        if (inst.parent == fn.entry() && !item.ctx.empty()) {
            auto ctx = item.ctx;
            const InstId ret_site = ctx.back();
            ctx.pop_back();
            enqueue(ret_site, std::move(ctx));
        }
    }
    return types;
}

FlowRefineResult
FlowRefinement::run(const std::vector<ValueId> &candidates)
{
    FlowRefineResult result;
    TypeTable &tt = module_.types();

    for (const ValueId v : candidates) {
        // Root set for the alias check.
        std::unordered_map<std::uint32_t, char> roots;
        for (const ValueId r : rootsOf(v))
            roots.emplace(r.raw(), 1);

        // Sites: the def site plus every use site.
        std::vector<InstId> sites;
        InstId def_site;
        const Value &value = module_.value(v);
        if (value.kind == ValueKind::InstResult) {
            def_site = value.inst;
        } else if (value.kind == ValueKind::Argument) {
            const Function &fn = module_.func(value.argFunc);
            if (fn.entry().valid() &&
                    !module_.block(fn.entry()).insts.empty()) {
                def_site = module_.block(fn.entry()).insts.front();
            }
        }
        if (def_site.valid())
            sites.push_back(def_site);
        for (const InstId user : instIndex_.users(v))
            sites.push_back(user);

        BoundPair def_bp = BoundPair::anyType(tt);
        for (const InstId s : sites) {
            const auto types = reachableTypes(s, roots);
            if (types.empty()) {
                // Site refined to unknown (Section 6.4 aggression).
                result.siteBounds.emplace(SiteVar{v, s},
                                          BoundPair::anyType(tt));
                continue;
            }
            const BoundPair site_bp(tt.joinAll(types), tt.meetAll(types));
            result.siteBounds.emplace(SiteVar{v, s}, site_bp);
            if (s == def_site)
                def_bp = site_bp;
        }

        // The variable-level flow-sensitive type is its def-site type.
        // Per Algorithm 2 line 9 the bounds are only updated when type
        // hints were collected; a def site with no reachable hints
        // keeps the previous stage's interval (standalone FS therefore
        // leaves such variables unknown - the Section 6.4 aggression).
        if (def_bp.classify(tt) == TypeClass::Unknown) {
            ++result.lost;
        } else {
            def_bp = BoundPair::refineWithin(tt, def_bp,
                                             env_.boundsOf(TypeVar::of(v)));
            result.refined.emplace(v, def_bp);
            if (def_bp.classify(tt) == TypeClass::Precise)
                ++result.resolved;
        }
    }
    return result;
}

} // namespace manta
