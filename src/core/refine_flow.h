/**
 * @file
 * Flow-sensitive type refinement (paper Section 4.2.2, Algorithm 2).
 *
 * For every still-over-approximated variable, the def site and each use
 * site v@s become distinct type variables. REACHABLE_TYPES performs a
 * backward walk on the (inter-procedural) CFG from s: the first type
 * annotation found on an alias of v along each path is collected and
 * terminates that path (a strong update); the LUB/GLB of all collected
 * annotations become the bounds of v@s. A site with no reachable
 * annotations becomes unknown - the deliberate aggression the paper
 * discusses in Section 6.4 (Type Refinement Order).
 */
#ifndef MANTA_CORE_REFINE_FLOW_H
#define MANTA_CORE_REFINE_FLOW_H

#include <unordered_map>
#include <vector>

#include "analysis/cfg.h"
#include "core/ddg_walk.h"

namespace manta {

/** Key of a per-site type variable v@s. */
struct SiteVar
{
    ValueId value;
    InstId site;  ///< Invalid site = the def site of the variable.

    friend bool
    operator==(const SiteVar &a, const SiteVar &b)
    {
        return a.value == b.value && a.site == b.site;
    }
};

} // namespace manta

namespace std {

template <>
struct hash<manta::SiteVar>
{
    size_t
    operator()(const manta::SiteVar &sv) const noexcept
    {
        return hash<manta::ValueId>()(sv.value) * 1000003u +
               hash<manta::InstId>()(sv.site);
    }
};

} // namespace std

namespace manta {

/** Outcome of the flow-sensitive stage. */
struct FlowRefineResult
{
    /** Per-site bounds for refined variables. */
    std::unordered_map<SiteVar, BoundPair> siteBounds;

    /** Variable-level merge of site results. */
    std::unordered_map<ValueId, BoundPair> refined;

    std::size_t resolved = 0;   ///< Variables precise after this stage.
    std::size_t lost = 0;       ///< Variables refined to unknown.
};

/** The flow-sensitive refinement stage. */
class FlowRefinement
{
  public:
    FlowRefinement(Module &module, const Ddg &ddg, const HintIndex &hints,
                   TypeEnv &env, WalkBudget budget = {});

    /** Refine every variable in `candidates` (Algorithm 2). */
    FlowRefineResult run(const std::vector<ValueId> &candidates);

  private:
    /** REACHABLE_TYPES: backward CFG walk from `site`. */
    std::vector<TypeRef>
    reachableTypes(InstId site,
                   const std::unordered_map<std::uint32_t, char> &roots);

    /** Cached FIND_ROOTS per value. */
    const std::vector<ValueId> &rootsOf(ValueId v);

    const Cfg &cfgOf(FuncId func);

    Module &module_;
    const Ddg &ddg_;
    const HintIndex &hints_;
    TypeEnv &env_;
    WalkBudget budget_;
    DdgWalker walker_;
    InstIndex instIndex_;
    std::unordered_map<std::uint32_t, std::vector<ValueId>> roots_cache_;
    std::unordered_map<std::uint32_t, Cfg> cfg_cache_;
    std::vector<std::vector<InstId>> call_sites_;  ///< Per callee function.
};

} // namespace manta

#endif // MANTA_CORE_REFINE_FLOW_H
