/**
 * @file
 * Flow-sensitive type refinement (paper Section 4.2.2, Algorithm 2).
 *
 * For every still-over-approximated variable, the def site and each use
 * site v@s become distinct type variables. REACHABLE_TYPES performs a
 * backward walk on the (inter-procedural) CFG from s: the first type
 * annotation found on an alias of v along each path is collected and
 * terminates that path (a strong update); the LUB/GLB of all collected
 * annotations become the bounds of v@s. A site with no reachable
 * annotations becomes unknown - the deliberate aggression the paper
 * discusses in Section 6.4 (Type Refinement Order).
 *
 * Like the context stage, this runs as a read-only walk phase (which
 * can be chunked across the shared pool; each worker owns a DdgWalker
 * for the alias-root queries plus interned-context/epoch scratch for
 * the CFG walks) followed by a sequential merge phase that performs
 * the joins in candidate/site order. Chunks are fixed-size, so the
 * result and the walk statistics are independent of MANTA_JOBS.
 *
 * With a ModularSchedule + FnSummaryStore attached the walk phase runs
 * as bottom-up SCC waves (see core/refine_ctx.h — the protocol is
 * identical); the alias-root closures the CFG walks depend on are then
 * shared across packs and with the context stage instead of being
 * recomputed per worker. The merge phase is untouched, so site and
 * variable bounds are bit-identical to the whole-program path.
 */
#ifndef MANTA_CORE_REFINE_FLOW_H
#define MANTA_CORE_REFINE_FLOW_H

#include <unordered_map>
#include <vector>

#include "analysis/cfg.h"
#include "core/ddg_walk.h"
#include "core/modular.h"
#include "core/refine_memo.h"

namespace manta {

/** Key of a per-site type variable v@s. */
struct SiteVar
{
    ValueId value;
    InstId site;  ///< Invalid site = the def site of the variable.

    friend bool
    operator==(const SiteVar &a, const SiteVar &b)
    {
        return a.value == b.value && a.site == b.site;
    }
};

} // namespace manta

namespace std {

template <>
struct hash<manta::SiteVar>
{
    size_t
    operator()(const manta::SiteVar &sv) const noexcept
    {
        return hash<manta::ValueId>()(sv.value) * 1000003u +
               hash<manta::InstId>()(sv.site);
    }
};

} // namespace std

namespace manta {

/** Outcome of the flow-sensitive stage. */
struct FlowRefineResult
{
    /** Per-site bounds for refined variables. */
    std::unordered_map<SiteVar, BoundPair> siteBounds;

    /** Variable-level merge of site results. */
    std::unordered_map<ValueId, BoundPair> refined;

    std::size_t resolved = 0;   ///< Variables precise after this stage.
    std::size_t lost = 0;       ///< Variables refined to unknown.

    /** Candidates answered from the cross-run memo (0 without one). */
    std::size_t reused = 0;

    /** Traversal work counters (DDG root queries + CFG walks). */
    WalkStats walk;
};

/** The flow-sensitive refinement stage. */
class FlowRefinement
{
  public:
    /**
     * Modules below this instruction count skip the flattened
     * hint/CFG indexes in the modular batch walk phase: flattening is
     * a whole-module pass, and on tiny modules its setup cost exceeds
     * everything the flat hot loop saves (the interpreted walk answers
     * with identical site types either way). The threshold is pinned
     * by tests/test_modular.cc.
     */
    static constexpr std::size_t kFlatIndexMinInsts = 500;

    /** True when the module is large enough to amortize flattening. */
    static bool
    flatIndexEligible(const Module &module)
    {
        return module.numInsts() >= kFlatIndexMinInsts;
    }

    FlowRefinement(Module &module, const Ddg &ddg, const HintIndex &hints,
                   TypeEnv &env, WalkBudget budget = {},
                   WalkEngine engine = defaultWalkEngine(),
                   bool parallel = false, RefineMemo *memo = nullptr,
                   const ModularSchedule *schedule = nullptr,
                   FnSummaryStore *summaries = nullptr);

    /** Refine every variable in `candidates` (Algorithm 2). */
    FlowRefineResult run(const std::vector<ValueId> &candidates);

  private:
    /** Walk-phase scratch owned by one worker; defined in the .cc. */
    struct Worker;

    /** Walk-phase output for one candidate. */
    struct CandidateOut
    {
        InstId defSite;
        std::vector<InstId> sites;
        std::vector<std::vector<TypeRef>> siteTypes;
    };

    /**
     * Enumerate the candidate's sites (def site first, then use sites
     * in instruction order). Derived only from the module/inst index,
     * so hits and misses alike get their site lists here; for an
     * unchanged owning function the enumeration is identical across
     * runs, which is what lines a cached record's per-site bounds up
     * with the regenerated sites.
     */
    void candidateSites(ValueId v, CandidateOut &out) const;

    /** Walk phase for one candidate (read-only on shared state);
     *  `out.sites` must already be enumerated. */
    void processCandidate(Worker &w, ValueId v, CandidateOut &out);

    /** REACHABLE_TYPES: backward CFG walk from `site`. */
    std::vector<TypeRef> reachableTypesFast(Worker &w, InstId site);
    std::vector<TypeRef> reachableTypesRef(Worker &w, InstId site);

    const Cfg &cfgOf(FuncId func);

    /**
     * Candidate-independent flattened hint index for the modular walk
     * phase: for every instruction, the alias-root closure of each of
     * its hints, pooled into flat arrays. rootsOf(hint.value) depends
     * only on frozen state, so flattening it once per stage (instead of
     * probing the walker memo per hint on every one of the hundreds of
     * millions of CFG-walk steps) answers the annotation check with the
     * exact same root sets - site types are unchanged, only the probe
     * cost moves out of the hot loop. Built through the shared summary
     * store; closures computed fresh here are published for the waves.
     */
    struct FlatHints
    {
        /** One hint at an instruction: type + its value's roots. */
        struct Span
        {
            TypeRef type;
            std::uint32_t begin;  ///< Offset into rootPool.
            std::uint32_t count;
        };
        /** Per instruction: (first span, span count); (0,0) = none. */
        std::vector<std::pair<std::uint32_t, std::uint32_t>> instSpan;
        std::vector<Span> spans;
        std::vector<std::uint32_t> rootPool;  ///< Root value raw ids.
    };

    /** Build flat_ (sequential; publishes fresh closures). */
    void buildFlatHints(WalkStats &stats);

    /**
     * The backward-step relation of REACHABLE_TYPES flattened into a
     * tagged CSR adjacency (modular walk phase). Entries are emitted in
     * exactly the order the interpreted walk pushes work items - call
     * descents, then the in-block predecessor (which suppresses the
     * rest) or block predecessors plus the caller ascent - so the DFS
     * order, and therefore the budget-truncation point of every walk,
     * is unchanged. Only dynamic checks (stack depth, empty context)
     * stay in the hot loop.
     */
    struct FlatCfg
    {
        static constexpr std::uint32_t kStep = 0;    ///< Same context.
        static constexpr std::uint32_t kCall = 1;    ///< Push this inst.
        static constexpr std::uint32_t kAscend = 2;  ///< Pop to caller.
        static constexpr std::uint32_t kPayload = 0x3fffffffu;

        /** Per instruction: (first entry, entry count) into pool. */
        std::vector<std::pair<std::uint32_t, std::uint32_t>> rowSpan;
        /** Tag in bits 30-31, target inst raw id in bits 0-29. */
        std::vector<std::uint32_t> pool;
    };

    /** Build fcfg_ (pure CFG structure; sequential, deterministic). */
    void buildFlatCfg();

    /** REACHABLE_TYPES over the flattened index + adjacency. */
    std::vector<TypeRef> reachableTypesFlat(Worker &w, InstId site);

    Module &module_;
    const Ddg &ddg_;
    const HintIndex &hints_;
    TypeEnv &env_;
    WalkBudget budget_;
    WalkEngine engine_;
    bool parallel_;
    RefineMemo *memo_;
    const ModularSchedule *schedule_;
    FnSummaryStore *summaries_;
    InstIndex instIndex_;
    std::unordered_map<std::uint32_t, Cfg> cfg_cache_;
    FlatHints flat_;
    FlatCfg fcfg_;
    bool flatReady_ = false;

    /** Candidate chunk size; fixed so results and statistics do not
     *  depend on the worker count. */
    static constexpr std::size_t kChunk = 128;
};

} // namespace manta

#endif // MANTA_CORE_REFINE_FLOW_H
