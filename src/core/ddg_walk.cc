#include "core/ddg_walk.h"

#include <cstdlib>
#include <set>
#include <unordered_set>

#include "core/fn_summary.h"
#include "core/modular.h"
#include "support/env.h"

namespace manta {

WalkEngine
defaultWalkEngine()
{
    static const WalkEngine engine =
        envFlagTruthy(std::getenv("MANTA_WALK_REF")) ? WalkEngine::Reference
                                                     : WalkEngine::Fast;
    return engine;
}

namespace {

/** Reference-engine traversal frame: node plus context stack copy. */
struct Frame
{
    ValueId node;
    std::vector<InstId> ctx;
};

/** Visited key: node plus context top (finite approximation). */
struct VisitKey
{
    std::uint32_t node;
    std::uint32_t top;

    friend bool
    operator<(const VisitKey &a, const VisitKey &b)
    {
        if (a.node != b.node)
            return a.node < b.node;
        return a.top < b.top;
    }
};

VisitKey
keyOf(const Frame &f)
{
    return VisitKey{f.node.raw(),
                    f.ctx.empty() ? 0xffffffffu : f.ctx.back().raw()};
}

/** Fast-engine frame: two ids, trivially copyable. */
struct FastFrame
{
    std::uint32_t node;
    std::uint32_t ctx;
};

} // namespace

bool
DdgWalker::arithEdgeFeasible(const Ddg::Edge &edge) const
{
    if (edge.kind != DepKind::PtrArith)
        return true;
    // "Resolve the type of operands first and perform feasibility
    // checking" (Section 4.2.1). The points-to analysis is the
    // resolver of record for pointer-ness: an alias link through
    // add/sub must connect two pointers or two numerics - a
    // location-less operand feeding a location-bearing result is the
    // displacement, not the base (and vice versa for pointer
    // differences).
    const PointsTo &pts = ddg_.pts();
    const bool from_ptr = !pts.locs(edge.from).empty();
    const bool to_ptr = !pts.locs(edge.to).empty();
    if (from_ptr != to_ptr)
        return false;

    if (env_ == nullptr)
        return true;
    // Table 2 logic in traversal form: the numeric operand of a
    // pointer-producing add (or sub) is an offset, not an alias.
    const BoundPair rb = env_->boundsOf(TypeVar::of(edge.to));
    const BoundPair ob = env_->boundsOf(TypeVar::of(edge.from));
    auto definitely = [&](const BoundPair &bp, TypeKind kind) {
        return types_.kind(bp.upper) == kind && bp.upper == bp.lower;
    };
    auto definitely_num = [&](const BoundPair &bp) {
        return bp.upper == bp.lower && types_.isNumeric(bp.upper);
    };
    if (definitely(rb, TypeKind::Ptr) && definitely_num(ob))
        return false;
    if (definitely_num(rb) && definitely(ob, TypeKind::Ptr))
        return false;
    return true;
}

bool
DdgWalker::edgeFeasibleCached(std::uint32_t index, const Ddg::Edge &edge)
{
    if (edge.kind != DepKind::PtrArith)
        return true;
    if (edge_feasible_.empty())
        edge_feasible_.assign(ddg_.numEdges(), 0);
    std::uint8_t &slot = edge_feasible_[index];
    if (slot == 0)
        slot = arithEdgeFeasible(edge) ? 1 : 2;
    return slot == 1;
}

void
DdgWalker::beginQueryCapture()
{
    if (!capture_)
        return;
    query_funcs_seen_.newEpoch();
    query_funcs_.clear();
}

void
DdgWalker::mergeQueryIntoCandidate()
{
    if (!capture_)
        return;
    for (const std::uint32_t f : query_funcs_) {
        if (cand_funcs_seen_.mark(f))
            cand_funcs_.push_back(f);
    }
}

void
DdgWalker::replayTouched(
    const std::unordered_map<std::uint32_t, std::vector<std::uint32_t>>
        &funcs,
    std::uint32_t key)
{
    if (!capture_)
        return;
    const auto it = funcs.find(key);
    if (it == funcs.end()) {
        // Summary predates capture being enabled; its reads are
        // unaccounted for, so the candidate cannot be cached.
        cand_poisoned_ = true;
        return;
    }
    for (const std::uint32_t f : it->second) {
        if (cand_funcs_seen_.mark(f))
            cand_funcs_.push_back(f);
    }
}

void
DdgWalker::replayStored(const std::vector<std::uint32_t> &touched,
                        bool has_touched)
{
    if (!capture_)
        return;
    if (!has_touched) {
        // Entry was harvested from a walker without capture; its reads
        // are unaccounted for, so the candidate cannot be cached.
        cand_poisoned_ = true;
        return;
    }
    for (const std::uint32_t f : touched) {
        if (cand_funcs_seen_.mark(f))
            cand_funcs_.push_back(f);
    }
}

void
DdgWalker::harvestSummaries(FnSummaryStore::Delta &delta,
                            const ModularSchedule &sched)
{
    for (auto &[key, roots] : roots_memo_) {
        if (borrowed_roots_.count(key))
            continue;
        FnSummaryStore::RootsEntry entry;
        entry.roots = std::move(roots);
        const auto t = roots_funcs_.find(key);
        if (t != roots_funcs_.end()) {
            entry.touched = std::move(t->second);
            entry.hasTouched = true;
        }
        delta.roots.emplace_back(key, sched.ownerOf(key),
                                 std::move(entry));
    }
    for (auto &[key, types] : types_memo_) {
        if (borrowed_types_.count(key))
            continue;
        FnSummaryStore::TypesEntry entry;
        entry.types = std::move(types);
        const auto t = types_funcs_.find(key);
        if (t != types_funcs_.end()) {
            entry.touched = std::move(t->second);
            entry.hasTouched = true;
        }
        delta.types.emplace_back(key, sched.ownerOf(key),
                                 std::move(entry));
    }
    roots_memo_.clear();
    roots_funcs_.clear();
    types_memo_.clear();
    types_funcs_.clear();
    borrowed_roots_.clear();
    borrowed_types_.clear();
}

std::vector<ValueId>
DdgWalker::findRoots(ValueId v)
{
    ++stats_.queries;
    beginQueryCapture();
    std::vector<ValueId> roots = engine_ == WalkEngine::Fast
                                     ? findRootsFast(v)
                                     : findRootsRef(v);
    mergeQueryIntoCandidate();
    if (truncated_)
        ++stats_.truncated;
    return roots;
}

std::vector<ValueId>
DdgWalker::findRootsFast(ValueId v)
{
    truncated_ = false;
    visited_.ensure(v.raw() + 1);
    root_seen_.ensure(v.raw() + 1);
    visited_.newEpoch();
    root_seen_.newEpoch();

    std::vector<ValueId> roots;
    std::vector<FastFrame> work;
    work.push_back(FastFrame{v.raw(), CtxInterner::kEmpty});
    visited_.insert(v.raw(), CtxInterner::kNoSite);
    touchValue(v.raw());

    std::size_t steps = 0;
    while (!work.empty()) {
        if (++steps > budget_.maxVisited) {
            truncated_ = true;
            break;
        }
        const FastFrame frame = work.back();
        work.pop_back();

        bool expanded = false;
        const ValueId node(static_cast<ValueId::RawType>(frame.node));
        for (const auto idx : ddg_.inEdges(node)) {
            const Ddg::Edge &edge = ddg_.edge(idx);
            // Examined endpoints count as reads even when the edge is
            // skipped: pruning/kind/feasibility were consulted.
            touchValue(edge.from.raw());
            if (edge.pruned || !isAliasEdge(edge.kind) ||
                    !edgeFeasibleCached(idx, edge)) {
                continue;
            }
            std::uint32_t ctx = frame.ctx;
            if (edge.kind == DepKind::CallArg) {
                // formal -> actual: exiting the callee.
                if (ctx != CtxInterner::kEmpty) {
                    if (interner_.top(ctx) != edge.site.raw())
                        continue; // CFL-invalid
                    ctx = interner_.pop(ctx);
                }
            } else if (edge.kind == DepKind::CallRet) {
                // call result -> return operand: entering the callee.
                if (interner_.depth(ctx) >= budget_.maxStack)
                    continue;
                ctx = interner_.push(ctx, edge.site);
                if (interner_.depth(ctx) > stats_.peakCtxDepth)
                    stats_.peakCtxDepth = interner_.depth(ctx);
            }
            expanded = true;
            const std::uint32_t to = edge.from.raw();
            visited_.ensure(to + 1);
            if (visited_.insert(to, interner_.top(ctx)))
                work.push_back(FastFrame{to, ctx});
        }
        if (!expanded) {
            root_seen_.ensure(frame.node + 1);
            if (root_seen_.mark(frame.node))
                roots.push_back(node);
        }
    }
    stats_.steps += steps;
    if (roots.empty())
        roots.push_back(v); // Algorithm 1 lines 18-19
    return roots;
}

std::vector<ValueId>
DdgWalker::findRootsRef(ValueId v)
{
    truncated_ = false;
    std::vector<ValueId> roots;
    std::set<VisitKey> visited;
    std::unordered_set<std::uint32_t> root_set;
    std::vector<Frame> work;
    work.push_back(Frame{v, {}});
    visited.insert(keyOf(work.back()));

    std::size_t steps = 0;
    while (!work.empty()) {
        if (++steps > budget_.maxVisited) {
            truncated_ = true;
            break;
        }
        Frame frame = std::move(work.back());
        work.pop_back();

        bool expanded = false;
        for (const auto idx : ddg_.inEdges(frame.node)) {
            const Ddg::Edge &edge = ddg_.edge(idx);
            if (edge.pruned || !isAliasEdge(edge.kind) ||
                    !arithEdgeFeasible(edge)) {
                continue;
            }
            Frame next;
            next.node = edge.from;
            next.ctx = frame.ctx;
            if (edge.kind == DepKind::CallArg) {
                // formal -> actual: exiting the callee.
                if (!next.ctx.empty()) {
                    if (next.ctx.back() != edge.site)
                        continue; // CFL-invalid
                    next.ctx.pop_back();
                }
            } else if (edge.kind == DepKind::CallRet) {
                // call result -> return operand: entering the callee.
                if (next.ctx.size() >= budget_.maxStack)
                    continue;
                next.ctx.push_back(edge.site);
                if (next.ctx.size() > stats_.peakCtxDepth)
                    stats_.peakCtxDepth = next.ctx.size();
            }
            expanded = true;
            if (visited.insert(keyOf(next)).second)
                work.push_back(std::move(next));
        }
        if (!expanded && root_set.insert(frame.node.raw()).second)
            roots.push_back(frame.node);
    }
    stats_.steps += steps;
    if (roots.empty())
        roots.push_back(v); // Algorithm 1 lines 18-19
    return roots;
}

std::vector<TypeRef>
DdgWalker::collectTypes(ValueId root, const HintIndex &hints)
{
    ++stats_.queries;
    beginQueryCapture();
    std::vector<TypeRef> types = engine_ == WalkEngine::Fast
                                     ? collectTypesFast(root, hints)
                                     : collectTypesRef(root, hints);
    mergeQueryIntoCandidate();
    if (truncated_)
        ++stats_.truncated;
    return types;
}

std::vector<TypeRef>
DdgWalker::collectTypesFast(ValueId root, const HintIndex &hints)
{
    truncated_ = false;
    visited_.ensure(root.raw() + 1);
    visited_.newEpoch();

    std::vector<TypeRef> types;
    std::vector<FastFrame> work;
    work.push_back(FastFrame{root.raw(), CtxInterner::kEmpty});
    visited_.insert(root.raw(), CtxInterner::kNoSite);
    touchValue(root.raw());

    std::size_t steps = 0;
    while (!work.empty()) {
        if (++steps > budget_.maxVisited) {
            truncated_ = true;
            break;
        }
        const FastFrame frame = work.back();
        work.pop_back();

        const ValueId node(static_cast<ValueId::RawType>(frame.node));
        for (const TypeHint &hint : hints.of(node))
            types.push_back(hint.type);

        for (const auto idx : ddg_.outEdges(node)) {
            const Ddg::Edge &edge = ddg_.edge(idx);
            touchValue(edge.to.raw());
            if (edge.pruned || !isAliasEdge(edge.kind) ||
                    !edgeFeasibleCached(idx, edge)) {
                continue;
            }
            std::uint32_t ctx = frame.ctx;
            if (edge.kind == DepKind::CallArg) {
                // actual -> formal: entering the callee.
                if (interner_.depth(ctx) >= budget_.maxStack)
                    continue;
                ctx = interner_.push(ctx, edge.site);
                if (interner_.depth(ctx) > stats_.peakCtxDepth)
                    stats_.peakCtxDepth = interner_.depth(ctx);
            } else if (edge.kind == DepKind::CallRet) {
                // return operand -> call result: exiting the callee.
                if (ctx != CtxInterner::kEmpty) {
                    if (interner_.top(ctx) != edge.site.raw())
                        continue; // CFL-invalid
                    ctx = interner_.pop(ctx);
                }
            }
            const std::uint32_t to = edge.to.raw();
            visited_.ensure(to + 1);
            if (visited_.insert(to, interner_.top(ctx)))
                work.push_back(FastFrame{to, ctx});
        }
    }
    stats_.steps += steps;
    return types;
}

std::vector<TypeRef>
DdgWalker::collectTypesRef(ValueId root, const HintIndex &hints)
{
    truncated_ = false;
    std::vector<TypeRef> types;
    std::set<VisitKey> visited;
    std::vector<Frame> work;
    work.push_back(Frame{root, {}});
    visited.insert(keyOf(work.back()));

    std::size_t steps = 0;
    while (!work.empty()) {
        if (++steps > budget_.maxVisited) {
            truncated_ = true;
            break;
        }
        Frame frame = std::move(work.back());
        work.pop_back();

        for (const TypeHint &hint : hints.of(frame.node))
            types.push_back(hint.type);

        for (const auto idx : ddg_.outEdges(frame.node)) {
            const Ddg::Edge &edge = ddg_.edge(idx);
            if (edge.pruned || !isAliasEdge(edge.kind) ||
                    !arithEdgeFeasible(edge)) {
                continue;
            }
            Frame next;
            next.node = edge.to;
            next.ctx = frame.ctx;
            if (edge.kind == DepKind::CallArg) {
                // actual -> formal: entering the callee.
                if (next.ctx.size() >= budget_.maxStack)
                    continue;
                next.ctx.push_back(edge.site);
                if (next.ctx.size() > stats_.peakCtxDepth)
                    stats_.peakCtxDepth = next.ctx.size();
            } else if (edge.kind == DepKind::CallRet) {
                // return operand -> call result: exiting the callee.
                if (!next.ctx.empty()) {
                    if (next.ctx.back() != edge.site)
                        continue; // CFL-invalid
                    next.ctx.pop_back();
                }
            }
            if (visited.insert(keyOf(next)).second)
                work.push_back(std::move(next));
        }
    }
    stats_.steps += steps;
    return types;
}

const std::vector<ValueId> &
DdgWalker::rootsOf(ValueId v)
{
    const auto it = roots_memo_.find(v.raw());
    if (it != roots_memo_.end()) {
        ++stats_.queries;
        ++stats_.memoHits;
        truncated_ = false;
        replayTouched(roots_funcs_, v.raw());
        return it->second;
    }
    if (shared_ != nullptr) {
        if (const FnSummaryStore::RootsEntry *entry =
                shared_->findRoots(v.raw())) {
            ++stats_.queries;
            ++stats_.memoHits;
            ++stats_.summaryHits;
            truncated_ = false;
            replayStored(entry->touched, entry->hasTouched);
            // Localize the borrowed closure so repeated queries hit
            // the local memo; an entry without a touched list stays
            // out of roots_funcs_, which makes later local hits poison
            // the candidate exactly as the store hit just did.
            borrowed_roots_.insert(v.raw());
            if (capture_ && entry->hasTouched)
                roots_funcs_.emplace(v.raw(), entry->touched);
            return roots_memo_.emplace(v.raw(), entry->roots)
                .first->second;
        }
    }
    std::vector<ValueId> roots = findRoots(v);
    if (truncated_) {
        // A budget-limited closure is an artifact of the budget, not a
        // summary of the graph; never reuse it.
        scratch_roots_ = std::move(roots);
        return scratch_roots_;
    }
    if (capture_)
        roots_funcs_.emplace(v.raw(), query_funcs_);
    return roots_memo_.emplace(v.raw(), std::move(roots)).first->second;
}

const std::vector<TypeRef> &
DdgWalker::typesOf(ValueId root, const HintIndex &hints)
{
    if (engine_ == WalkEngine::Reference) {
        // The reference engine recomputes every COLLECT_TYPES query,
        // preserving the original walker's cost model for benchmarks.
        scratch_types_ = collectTypes(root, hints);
        return scratch_types_;
    }
    if (memo_hints_ != &hints) {
        types_memo_.clear();
        types_funcs_.clear();
        borrowed_types_.clear();
        memo_hints_ = &hints;
    }
    const auto it = types_memo_.find(root.raw());
    if (it != types_memo_.end()) {
        ++stats_.queries;
        ++stats_.memoHits;
        truncated_ = false;
        replayTouched(types_funcs_, root.raw());
        return it->second;
    }
    if (shared_ != nullptr) {
        if (const FnSummaryStore::TypesEntry *entry =
                shared_->findTypes(root.raw())) {
            ++stats_.queries;
            ++stats_.memoHits;
            ++stats_.summaryHits;
            truncated_ = false;
            replayStored(entry->touched, entry->hasTouched);
            borrowed_types_.insert(root.raw());
            if (capture_ && entry->hasTouched)
                types_funcs_.emplace(root.raw(), entry->touched);
            return types_memo_.emplace(root.raw(), entry->types)
                .first->second;
        }
    }
    std::vector<TypeRef> types = collectTypes(root, hints);
    if (truncated_) {
        scratch_types_ = std::move(types);
        return scratch_types_;
    }
    if (capture_)
        types_funcs_.emplace(root.raw(), query_funcs_);
    return types_memo_.emplace(root.raw(), std::move(types)).first->second;
}

} // namespace manta
