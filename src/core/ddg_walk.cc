#include "core/ddg_walk.h"

#include <set>
#include <unordered_set>

namespace manta {

namespace {

/** A traversal frame: node plus calling-context stack. */
struct Frame
{
    ValueId node;
    std::vector<InstId> ctx;
};

/** Visited key: node plus context top (finite approximation). */
struct VisitKey
{
    std::uint32_t node;
    std::uint32_t top;

    friend bool
    operator<(const VisitKey &a, const VisitKey &b)
    {
        if (a.node != b.node)
            return a.node < b.node;
        return a.top < b.top;
    }
};

VisitKey
keyOf(const Frame &f)
{
    return VisitKey{f.node.raw(),
                    f.ctx.empty() ? 0xffffffffu : f.ctx.back().raw()};
}

} // namespace

bool
DdgWalker::arithEdgeFeasible(const Ddg::Edge &edge) const
{
    if (edge.kind != DepKind::PtrArith)
        return true;
    // "Resolve the type of operands first and perform feasibility
    // checking" (Section 4.2.1). The points-to analysis is the
    // resolver of record for pointer-ness: an alias link through
    // add/sub must connect two pointers or two numerics - a
    // location-less operand feeding a location-bearing result is the
    // displacement, not the base (and vice versa for pointer
    // differences).
    const PointsTo &pts = ddg_.pts();
    const bool from_ptr = !pts.locs(edge.from).empty();
    const bool to_ptr = !pts.locs(edge.to).empty();
    if (from_ptr != to_ptr)
        return false;

    if (env_ == nullptr)
        return true;
    // Table 2 logic in traversal form: the numeric operand of a
    // pointer-producing add (or sub) is an offset, not an alias.
    const BoundPair rb = env_->boundsOf(TypeVar::of(edge.to));
    const BoundPair ob = env_->boundsOf(TypeVar::of(edge.from));
    auto definitely = [&](const BoundPair &bp, TypeKind kind) {
        return types_.kind(bp.upper) == kind && bp.upper == bp.lower;
    };
    auto definitely_num = [&](const BoundPair &bp) {
        return bp.upper == bp.lower && types_.isNumeric(bp.upper);
    };
    if (definitely(rb, TypeKind::Ptr) && definitely_num(ob))
        return false;
    if (definitely_num(rb) && definitely(ob, TypeKind::Ptr))
        return false;
    return true;
}

std::vector<ValueId>
DdgWalker::findRoots(ValueId v)
{
    truncated_ = false;
    std::vector<ValueId> roots;
    std::set<VisitKey> visited;
    std::unordered_set<std::uint32_t> root_set;
    std::vector<Frame> work;
    work.push_back(Frame{v, {}});
    visited.insert(keyOf(work.back()));

    std::size_t steps = 0;
    while (!work.empty()) {
        if (++steps > budget_.maxVisited) {
            truncated_ = true;
            break;
        }
        Frame frame = std::move(work.back());
        work.pop_back();

        bool expanded = false;
        for (const auto idx : ddg_.inEdges(frame.node)) {
            const Ddg::Edge &edge = ddg_.edge(idx);
            if (edge.pruned || !isAliasEdge(edge.kind) ||
                    !arithEdgeFeasible(edge)) {
                continue;
            }
            Frame next;
            next.node = edge.from;
            next.ctx = frame.ctx;
            if (edge.kind == DepKind::CallArg) {
                // formal -> actual: exiting the callee.
                if (!next.ctx.empty()) {
                    if (next.ctx.back() != edge.site)
                        continue; // CFL-invalid
                    next.ctx.pop_back();
                }
            } else if (edge.kind == DepKind::CallRet) {
                // call result -> return operand: entering the callee.
                if (next.ctx.size() >= budget_.maxStack)
                    continue;
                next.ctx.push_back(edge.site);
            }
            expanded = true;
            if (visited.insert(keyOf(next)).second)
                work.push_back(std::move(next));
        }
        if (!expanded && root_set.insert(frame.node.raw()).second)
            roots.push_back(frame.node);
    }
    if (roots.empty())
        roots.push_back(v); // Algorithm 1 lines 18-19
    return roots;
}

std::vector<TypeRef>
DdgWalker::collectTypes(ValueId root, const HintIndex &hints)
{
    truncated_ = false;
    std::vector<TypeRef> types;
    std::set<VisitKey> visited;
    std::vector<Frame> work;
    work.push_back(Frame{root, {}});
    visited.insert(keyOf(work.back()));

    std::size_t steps = 0;
    while (!work.empty()) {
        if (++steps > budget_.maxVisited) {
            truncated_ = true;
            break;
        }
        Frame frame = std::move(work.back());
        work.pop_back();

        for (const TypeHint &hint : hints.of(frame.node))
            types.push_back(hint.type);

        for (const auto idx : ddg_.outEdges(frame.node)) {
            const Ddg::Edge &edge = ddg_.edge(idx);
            if (edge.pruned || !isAliasEdge(edge.kind) ||
                    !arithEdgeFeasible(edge)) {
                continue;
            }
            Frame next;
            next.node = edge.to;
            next.ctx = frame.ctx;
            if (edge.kind == DepKind::CallArg) {
                // actual -> formal: entering the callee.
                if (next.ctx.size() >= budget_.maxStack)
                    continue;
                next.ctx.push_back(edge.site);
            } else if (edge.kind == DepKind::CallRet) {
                // return operand -> call result: exiting the callee.
                if (!next.ctx.empty()) {
                    if (next.ctx.back() != edge.site)
                        continue; // CFL-invalid
                    next.ctx.pop_back();
                }
            }
            if (visited.insert(keyOf(next)).second)
                work.push_back(std::move(next));
        }
    }
    return types;
}

} // namespace manta
