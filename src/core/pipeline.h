/**
 * @file
 * The hybrid-sensitive inference pipeline (paper Figure 1).
 *
 * Stages run in increasing precision: global flow-insensitive
 * unification first (capturing hints thoroughly), then context-
 * sensitive refinement on the over-approximated variables, then
 * flow-sensitive refinement on whatever remains over-approximated.
 * Each stage can be toggled, reproducing the paper's ablation groups
 * (Manta-FI, Manta-FS, Manta-FI+FS, Manta-FI+CS+FS).
 *
 * MantaAnalyzer is the library's main entry point: it owns the
 * analysis substrates (memory objects, points-to, DDG, hint index)
 * and produces an InferenceResult.
 */
#ifndef MANTA_CORE_PIPELINE_H
#define MANTA_CORE_PIPELINE_H

#include <memory>
#include <unordered_map>

#include "analysis/ddg.h"
#include "analysis/memobj.h"
#include "analysis/pointsto.h"
#include "core/hints.h"
#include "core/refine_ctx.h"
#include "core/refine_flow.h"
#include "core/unify.h"

namespace manta {

/** How the refinement walk phases are scheduled. */
enum class ScheduleMode : std::uint8_t {
    /**
     * Bottom-up over callgraph SCC waves with a shared per-function
     * summary store (core/modular.h). The default: bit-identical
     * bounds to WholeProgram, but cross-SCC closures are computed once
     * and instantiated at call sites instead of re-walked per worker.
     */
    ModularBottomUp,
    /** Flat fixed-size chunks over the worklist (the original path;
     *  kept as the bit-identity reference, MANTA_WP=1). */
    WholeProgram,
};

/** ModularBottomUp unless MANTA_WP=1 is set in the environment. */
ScheduleMode defaultScheduleMode();

/** Which flow-insensitive inference core populates the TypeEnv. */
enum class InferEngine : std::uint8_t {
    /** Unification over equivalence classes (core/unify.h, default). */
    Unify,
    /** Polymorphic subtyping with per-call-site summary instantiation
     *  (subtype/solver.h). Strictly-nested bounds: never wider than
     *  the unifier's, tighter on polymorphic call patterns. */
    Subtype,
};

/** Unify unless MANTA_INFER=subtype is set in the environment. */
InferEngine defaultInferEngine();

/** Stage toggles; defaults give the full pipeline (FI+CS+FS). */
struct HybridConfig
{
    bool flowInsensitive = true;
    bool contextSensitive = true;
    bool flowSensitive = true;
    /**
     * Run the flow-sensitive stage before the context-sensitive one
     * (the Section 6.4 "Type Refinement Order" ablation). The paper
     * places the more aggressive analysis last; flipping the order
     * lets the flow stage commit to one-sided types before context
     * refinement can disambiguate them.
     */
    bool fsBeforeCs = false;
    WalkBudget budget;

    /**
     * Which flow-insensitive core runs stage 1. Both cores commit the
     * same artifact (per-variable BoundPair sketches in the TypeEnv),
     * so the CS/FS refinement stages, modular scheduling and clients
     * work with either; the cross-run refinement memo only engages for
     * the default Unify core (its records key on unifier output).
     * Honors MANTA_INFER=subtype.
     */
    InferEngine inferEngine = defaultInferEngine();

    /**
     * Which DDG/CFG traversal engine the refinement stages use. The
     * default honors MANTA_WALK_REF=1 (reference engine); both engines
     * produce bit-identical bounds — the reference exists for
     * differential testing and as the benchmark baseline.
     */
    WalkEngine walkEngine = defaultWalkEngine();

    /**
     * Batch refinement traversals across the shared task pool (fast
     * engine only; the reference engine always runs sequentially).
     * Results are independent of MANTA_JOBS: the worklist is chunked
     * at a fixed size and all type-table mutation happens in a
     * sequential merge phase.
     */
    bool walkParallel = true;

    /**
     * Walk-phase scheduling. Modular bottom-up engages only with the
     * fast engine (the reference engine always runs the whole-program
     * path, preserving its cost model); either way the refined bounds
     * are bit-identical — only the traversal work differs.
     */
    ScheduleMode scheduleMode = defaultScheduleMode();

    static HybridConfig
    fiOnly()
    {
        HybridConfig config;
        config.contextSensitive = false;
        config.flowSensitive = false;
        return config;
    }
    static HybridConfig
    fsOnly()
    {
        HybridConfig config;
        config.flowInsensitive = false;
        config.contextSensitive = false;
        return config;
    }
    static HybridConfig
    fiFs()
    {
        HybridConfig config;
        config.contextSensitive = false;
        return config;
    }
    static HybridConfig
    full()
    {
        return HybridConfig{};
    }
    static HybridConfig
    fullFsFirst()
    {
        HybridConfig config;
        config.fsBeforeCs = true;
        return config;
    }

    /** A short label like "FI+CS+FS" for tables. */
    std::string label() const;
};

/** Stage-by-stage counters (drives Figures 2, 9 and 10). */
struct InferenceProfile
{
    StageStats afterFi;          ///< Classification after unification.
    std::size_t fiOver = 0;      ///< |V_O| handed to refinement.
    std::size_t csResolved = 0;  ///< Made precise by context refinement.
    std::size_t csStillOver = 0; ///< Passed on to flow refinement.
    std::size_t fsResolved = 0;  ///< Made precise by flow refinement.
    std::size_t fsLost = 0;      ///< Refined to unknown by flow stage.
    std::size_t csReused = 0;    ///< CS candidates answered from a memo.
    std::size_t fsReused = 0;    ///< FS candidates answered from a memo.
    std::size_t hintCount = 0;
    double seconds = 0.0;        ///< End-to-end wall clock of infer().

    /**
     * Traversal work counters of the refinement stages (queries, memo
     * hits, truncations, steps, peak calling-context depth), merged
     * across every walker the stage ran. Bounds are engine- and
     * job-count-independent; these counters are not (the reference
     * engine never hits a memo, and sequential runs share one memo
     * across the whole worklist where parallel runs share per-chunk).
     */
    WalkStats csWalk;  ///< Context-sensitive stage.
    WalkStats fsWalk;  ///< Flow-sensitive stage.

    /// @name Modular scheduling counters (zero in whole-program mode).
    /// @{
    std::size_t sccCount = 0;     ///< Callgraph SCCs.
    std::size_t sccWaves = 0;     ///< Bottom-up wave levels.
    std::size_t summaryRoots = 0; ///< FIND_ROOTS closures published.
    std::size_t summaryTypes = 0; ///< COLLECT_TYPES closures published.
    /** Wall clock building the callgraph condensation + value
     *  attribution (once per analyzer, billed to the run that built
     *  it; publication time is part of cs/fsSeconds). */
    double summarySeconds = 0.0;
    /// @}

    /**
     * Per-stage wall clock. Each infer() call runs on one thread, so
     * these are measured with thread-confined timers; when the
     * parallel harness runs many infer() calls at once, it aggregates
     * profiles AFTER the join (indexed result slots), which keeps the
     * sums exact under concurrency.
     */
    double fiSeconds = 0.0;  ///< Flow-insensitive unification.
    double csSeconds = 0.0;  ///< Context-sensitive refinement.
    double fsSeconds = 0.0;  ///< Flow-sensitive refinement.

    /**
     * Wall clock of the points-to substrate solve. The substrate is
     * built once per analyzer and shared by every infer() call, so
     * this repeats the same one-time cost in each profile rather than
     * attributing it to any single configuration's stages.
     */
    double ptsSeconds = 0.0;

    /**
     * Wall clock spent inside the lint framework (src/lint) when the
     * caller requested diagnostics for this result. Zero when lint
     * never ran. Like the stage timers, the parallel harness sums
     * these after the join.
     */
    double lintSeconds = 0.0;

    /// @name Taint engine counters (zero when taint never ran).
    /// @{
    /** Wall clock of src/taint fixpoints billed to this result. */
    double taintSeconds = 0.0;
    /** Reported source-to-sink flows. */
    std::size_t taintFlows = 0;
    /** Flows the type endpoint gate suppressed. */
    std::size_t taintSuppressed = 0;
    /// @}
};

/** The per-variable/per-site outcome of a pipeline run. */
class InferenceResult
{
  public:
    InferenceResult(Module &module, std::unique_ptr<TypeEnv> env)
        : module_(module), env_(std::move(env))
    {}

    /** Final bounds of a variable. */
    BoundPair valueBounds(ValueId v) const;

    /**
     * Bounds of v at statement s (flow-sensitive view). Falls back to
     * the variable-level bounds when no site refinement applies
     * (paper: F(v) = F(v@s) for precise/unknown variables).
     */
    BoundPair siteBounds(ValueId v, InstId s) const;

    /** Final classification of a variable. */
    TypeClass valueClass(ValueId v) const;

    /**
     * Bounds of one abstract-object field (the type system is
     * field-sensitive, Figure 6): what the flow-insensitive
     * unification concluded for (object, byte offset).
     */
    BoundPair fieldBounds(ObjectId obj, std::int32_t offset) const;

    const InferenceProfile &profile() const { return profile_; }

    /** Mutable profile access (lint billing, harness aggregation). */
    InferenceProfile &profile() { return profile_; }

    TypeTable &types() const { return module_.types(); }

    /** Classification counts over all Argument/InstResult values. */
    StageStats finalStats() const;

    /**
     * Raw refinement overlays (variable- and site-level), exposed so
     * differential harnesses (micro_refine, the walk_diff fuzz oracle)
     * can compare two results bound-for-bound without enumerating
     * every (value, site) pair.
     */
    const std::unordered_map<ValueId, BoundPair> &
    overlay() const
    {
        return overlay_;
    }
    const std::unordered_map<SiteVar, BoundPair> &
    siteOverlay() const
    {
        return site_overlay_;
    }

    /**
     * Build an oracle result from a ground-truth type map: every mapped
     * value gets a precise singleton, everything else is unknown. Used
     * as the "source-level analysis" reference in the evaluation.
     */
    static InferenceResult
    fromTypeMap(Module &module,
                const std::unordered_map<ValueId, TypeRef> &types);

  private:
    friend class MantaAnalyzer;

    Module &module_;
    std::unique_ptr<TypeEnv> env_;
    std::unordered_map<ValueId, BoundPair> overlay_;
    std::unordered_map<SiteVar, BoundPair> site_overlay_;
    InferenceProfile profile_;
};

/** Top-level analyzer: owns substrates, runs the staged pipeline. */
class MantaAnalyzer
{
  public:
    /**
     * @param module A module that has already been made acyclic
     *               (analysis/acyclic.h); points-to and DDG are built
     *               eagerly here.
     * @param config Stage configuration.
     */
    explicit MantaAnalyzer(Module &module,
                           HybridConfig config = HybridConfig::full());

    /** Run the configured pipeline. */
    InferenceResult infer();

    /** Run with an explicit configuration (substrates are shared). */
    InferenceResult infer(const HybridConfig &config);

    /**
     * Run with a cross-run refinement memo (serve/incremental mode).
     * The memo is consulted and populated by the CS/FS stages; it is
     * only engaged for the fast walk engine with the flow-insensitive
     * stage on (the memo keys candidates by post-FI content), and only
     * if `memo->beginRun(...)` accepts this module/configuration.
     */
    InferenceResult infer(const HybridConfig &config, RefineMemo *memo);

    const PointsTo &pts() const { return *pts_; }
    const MemObjects &memObjects() const { return *objects_; }
    Ddg &ddg() { return *ddg_; }
    const HintIndex &hints() const { return *hints_; }
    Module &module() { return module_; }

    /**
     * Callgraph + SCC condensation + value attribution for modular
     * scheduling, built lazily on the first modular infer() and cached
     * for the analyzer's lifetime (the module is frozen). The double
     * return lets the first build be billed to that run's
     * summarySeconds.
     */
    const ModularSchedule &schedule(double *build_seconds = nullptr);

  private:
    Module &module_;
    HybridConfig config_;
    std::unique_ptr<MemObjects> objects_;
    std::unique_ptr<PointsTo> pts_;
    std::unique_ptr<Ddg> ddg_;
    std::unique_ptr<HintIndex> hints_;
    std::unique_ptr<CallGraph> callgraph_;
    std::unique_ptr<ModularSchedule> schedule_;
};

} // namespace manta

#endif // MANTA_CORE_PIPELINE_H
