#include "core/fn_summary.h"

#include <utility>

namespace manta {

void
FnSummaryStore::publish(Delta &&delta)
{
    for (auto &[value_raw, func_raw, entry] : delta.roots) {
        const auto [it, inserted] =
            roots_.try_emplace(value_raw, std::move(entry));
        (void)it;
        if (inserted) {
            ++stats_.publishedRoots;
            ++per_func_[func_raw].rootEntries;
        } else {
            ++stats_.dropped;
        }
    }
    for (auto &[value_raw, func_raw, entry] : delta.types) {
        const auto [it, inserted] =
            types_.try_emplace(value_raw, std::move(entry));
        (void)it;
        if (inserted) {
            ++stats_.publishedTypes;
            ++per_func_[func_raw].typeEntries;
        } else {
            ++stats_.dropped;
        }
    }
}

} // namespace manta
