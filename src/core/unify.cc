#include "core/unify.h"

#include <limits>

#include "support/error.h"

namespace manta {

const std::unordered_set<std::int32_t> TypeEnv::no_fields_;

std::uint32_t
TypeEnv::indexOf(const TypeVar &var)
{
    const auto it = index_.find(var);
    if (it != index_.end())
        return it->second;
    const auto idx = static_cast<std::uint32_t>(parents_.size());
    index_.emplace(var, idx);
    parents_.push_back(idx);
    bounds_.push_back(BoundPair::unknown(types_));
    if (var.kind == TypeVar::Kind::Field)
        fields_[var.obj.raw()].insert(var.offset);
    return idx;
}

std::uint32_t
TypeEnv::tryIndexOf(const TypeVar &var) const
{
    const auto it = index_.find(var);
    return it == index_.end() ? std::numeric_limits<std::uint32_t>::max()
                              : it->second;
}

std::uint32_t
TypeEnv::find(std::uint32_t index)
{
    while (parents_[index] != index) {
        parents_[index] = parents_[parents_[index]]; // path halving
        index = parents_[index];
    }
    return index;
}

void
TypeEnv::unite(std::uint32_t a, std::uint32_t b)
{
    a = find(a);
    b = find(b);
    if (a == b)
        return;
    if (b < a)
        std::swap(a, b); // keep the smaller index as root (determinism)
    parents_[b] = a;
    bounds_[a].merge(types_, bounds_[b]);
}

void
TypeEnv::addHint(std::uint32_t index, TypeRef type)
{
    bounds_[find(index)].addHint(types_, type);
}

BoundPair
TypeEnv::boundsOf(const TypeVar &var)
{
    const auto idx = tryIndexOf(var);
    if (idx == std::numeric_limits<std::uint32_t>::max())
        return BoundPair::unknown(types_);
    return bounds_[find(idx)];
}

std::uint32_t
TypeEnv::find(std::uint32_t index) const
{
    while (parents_[index] != index)
        index = parents_[index];
    return index;
}

BoundPair
TypeEnv::boundsOf(const TypeVar &var) const
{
    const auto idx = tryIndexOf(var);
    if (idx == std::numeric_limits<std::uint32_t>::max())
        return BoundPair::unknown(types_);
    return bounds_[find(idx)];
}

TypeClass
TypeEnv::classifyOf(const TypeVar &var)
{
    return boundsOf(var).classify(types_);
}

bool
TypeEnv::sameClass(const TypeVar &a, const TypeVar &b)
{
    const auto ia = tryIndexOf(a);
    const auto ib = tryIndexOf(b);
    if (ia == std::numeric_limits<std::uint32_t>::max() ||
            ib == std::numeric_limits<std::uint32_t>::max()) {
        return false;
    }
    return find(ia) == find(ib);
}

const std::unordered_set<std::int32_t> &
TypeEnv::fieldsOf(ObjectId obj) const
{
    const auto it = fields_.find(obj.raw());
    return it == fields_.end() ? no_fields_ : it->second;
}

namespace {

/** Field variable for a points-to location. */
TypeVar
fieldVarOf(const Loc &loc)
{
    return TypeVar::field(loc.obj,
                          loc.collapsed() ? Loc::unknownOffset : loc.offset);
}

} // namespace

StageStats
FlowInsensitiveInference::run(TypeEnv &env)
{
    processUnifications(env);
    // Register string-literal content fields before collapsing so the
    // char hint reaches every accessed offset of the literal.
    for (std::size_t g = 0; g < module_.numGlobals(); ++g) {
        const GlobalId gid(static_cast<GlobalId::RawType>(g));
        if (!module_.global(gid).isStringLiteral)
            continue;
        const ObjectId obj = pts_.objects().objectOfGlobal(gid);
        if (obj.valid())
            env.indexOf(TypeVar::field(obj, Loc::unknownOffset));
    }
    collapseUnknownOffsets(env);
    applyHints(env);

    StageStats stats;
    for (std::size_t v = 0; v < module_.numValues(); ++v) {
        const ValueId vid(static_cast<ValueId::RawType>(v));
        switch (env.classifyOf(TypeVar::of(vid))) {
          case TypeClass::Precise: ++stats.precise; break;
          case TypeClass::Over: ++stats.over; break;
          case TypeClass::Unknown: ++stats.unknown; break;
        }
    }
    return stats;
}

void
FlowInsensitiveInference::unifyValueValue(TypeEnv &env, ValueId a, ValueId b)
{
    env.unite(env.indexOf(TypeVar::of(a)), env.indexOf(TypeVar::of(b)));
}

void
FlowInsensitiveInference::unifyObjTypes(TypeEnv &env, ValueId a, ValueId b)
{
    // UnifyObjType (Table 1, rule 1): for objects pointed to by either
    // side, unify field variables sharing the same offset.
    const LocSet &la = pts_.locs(a);
    const LocSet &lb = pts_.locs(b);
    if (la.empty() || lb.empty())
        return;
    if (la.size() > maxObjUnifySet || lb.size() > maxObjUnifySet)
        return;
    std::vector<ObjectId> objs;
    for (const Loc &loc : la)
        objs.push_back(loc.obj);
    for (const Loc &loc : lb)
        objs.push_back(loc.obj);
    for (std::size_t i = 0; i < objs.size(); ++i) {
        for (std::size_t j = i + 1; j < objs.size(); ++j) {
            if (objs[i] == objs[j])
                continue;
            for (const std::int32_t off : env.fieldsOf(objs[i])) {
                if (env.fieldsOf(objs[j]).count(off)) {
                    env.unite(
                        env.indexOf(TypeVar::field(objs[i], off)),
                        env.indexOf(TypeVar::field(objs[j], off)));
                }
            }
        }
    }
}

void
FlowInsensitiveInference::processUnifications(TypeEnv &env)
{
    // Pass 1: LOAD/STORE rules register field variables and unify them
    // with the moved values.
    for (std::size_t i = 0; i < module_.numInsts(); ++i) {
        const Instruction &inst =
            module_.inst(InstId(static_cast<InstId::RawType>(i)));
        if (inst.op == Opcode::Load) {
            for (const Loc &loc : pts_.locs(module_.operand(inst, 0))) {
                env.unite(env.indexOf(TypeVar::of(inst.result)),
                          env.indexOf(fieldVarOf(loc)));
            }
        } else if (inst.op == Opcode::Store) {
            for (const Loc &loc : pts_.locs(module_.operand(inst, 0))) {
                env.unite(env.indexOf(fieldVarOf(loc)),
                          env.indexOf(TypeVar::of(module_.operand(inst, 1))));
            }
        }
    }

    // Pass 2: COPY rules (copy, phi, call bindings) and the compare
    // same-type rule.
    for (std::size_t i = 0; i < module_.numInsts(); ++i) {
        const Instruction &inst =
            module_.inst(InstId(static_cast<InstId::RawType>(i)));
        switch (inst.op) {
          case Opcode::Copy:
            unifyValueValue(env, inst.result, module_.operand(inst, 0));
            unifyObjTypes(env, inst.result, module_.operand(inst, 0));
            break;
          case Opcode::Phi:
            for (const ValueId op : module_.operands(inst)) {
                unifyValueValue(env, inst.result, op);
                unifyObjTypes(env, inst.result, op);
            }
            break;
          case Opcode::ICmp:
            // Two compared values share a type (Section 6.4 notes this
            // rule's pointer-vs-error-constant noise).
            unifyValueValue(env, module_.operand(inst, 0), module_.operand(inst, 1));
            break;
          case Opcode::Call: {
            if (!inst.callee.valid())
                break;
            const Function &callee = module_.func(inst.callee);
            const std::size_t n =
                std::min(callee.params.size(), inst.numOperands());
            for (std::size_t k = 0; k < n; ++k) {
                unifyValueValue(env, module_.operand(inst, k), callee.params[k]);
                unifyObjTypes(env, module_.operand(inst, k), callee.params[k]);
            }
            if (inst.result.valid()) {
                for (const BlockId bid : callee.blocks) {
                    const BasicBlock &bb = module_.block(bid);
                    if (bb.insts.empty())
                        continue;
                    const Instruction &term = module_.inst(bb.insts.back());
                    if (term.op == Opcode::Ret && term.numOperands() != 0) {
                        unifyValueValue(env, inst.result, module_.operand(term, 0));
                        unifyObjTypes(env, inst.result, module_.operand(term, 0));
                    }
                }
            }
            break;
          }
          default:
            break;
        }
    }
}

void
FlowInsensitiveInference::collapseUnknownOffsets(TypeEnv &env)
{
    // A field variable at the unknown offset aliases every field of its
    // object (the array-collapse choice of Section 3).
    for (const ObjectId obj : pts_.objects().allObjects()) {
        const auto &offsets = env.fieldsOf(obj);
        if (!offsets.count(Loc::unknownOffset))
            continue;
        const auto unknown_idx =
            env.indexOf(TypeVar::field(obj, Loc::unknownOffset));
        // Copy: unite() mutates the registry indirectly via indexOf.
        const std::vector<std::int32_t> offs(offsets.begin(), offsets.end());
        for (const std::int32_t off : offs) {
            if (off != Loc::unknownOffset)
                env.unite(unknown_idx, env.indexOf(TypeVar::field(obj, off)));
        }
    }
}

void
FlowInsensitiveInference::applyHints(TypeEnv &env)
{
    TypeTable &tt = module_.types();
    for (std::size_t v = 0; v < module_.numValues(); ++v) {
        const ValueId vid(static_cast<ValueId::RawType>(v));
        for (const TypeHint &hint : hints_.of(vid))
            env.addHint(env.indexOf(TypeVar::of(vid)), hint.type);
    }
    // String-literal contents are char.
    for (std::size_t g = 0; g < module_.numGlobals(); ++g) {
        const GlobalId gid(static_cast<GlobalId::RawType>(g));
        if (!module_.global(gid).isStringLiteral)
            continue;
        const ObjectId obj = pts_.objects().objectOfGlobal(gid);
        if (!obj.valid())
            continue;
        env.addHint(env.indexOf(TypeVar::field(obj, Loc::unknownOffset)),
                    tt.intTy(8));
    }
}

} // namespace manta
