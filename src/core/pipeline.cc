#include "core/pipeline.h"

#include <cstdlib>

#include "subtype/solver.h"
#include "support/env.h"
#include "support/timer.h"

namespace manta {

ScheduleMode
defaultScheduleMode()
{
    static const ScheduleMode mode =
        envFlagTruthy(std::getenv("MANTA_WP")) ? ScheduleMode::WholeProgram
                                               : ScheduleMode::ModularBottomUp;
    return mode;
}

InferEngine
defaultInferEngine()
{
    static const InferEngine engine = []() {
        static const char *const choices[] = {"unify", "subtype"};
        const std::size_t pick = parseEnvChoice(
            "MANTA_INFER", std::getenv("MANTA_INFER"), choices, 2, 0);
        return pick == 1 ? InferEngine::Subtype : InferEngine::Unify;
    }();
    return engine;
}

std::string
HybridConfig::label() const
{
    std::string out;
    if (flowInsensitive)
        out = "FI";
    if (contextSensitive)
        out += out.empty() ? "CS" : "+CS";
    if (flowSensitive)
        out += out.empty() ? "FS" : "+FS";
    return out.empty() ? "none" : out;
}

BoundPair
InferenceResult::valueBounds(ValueId v) const
{
    const auto it = overlay_.find(v);
    if (it != overlay_.end())
        return it->second;
    const BoundPair bp = env_->boundsOf(TypeVar::of(v));
    if (bp.classify(module_.types()) == TypeClass::Unknown)
        return BoundPair::anyType(module_.types());
    return bp;
}

BoundPair
InferenceResult::siteBounds(ValueId v, InstId s) const
{
    const auto it = site_overlay_.find(SiteVar{v, s});
    if (it != site_overlay_.end())
        return it->second;
    return valueBounds(v);
}

TypeClass
InferenceResult::valueClass(ValueId v) const
{
    return valueBounds(v).classify(module_.types());
}

BoundPair
InferenceResult::fieldBounds(ObjectId obj, std::int32_t offset) const
{
    return env_->boundsOf(TypeVar::field(obj, offset));
}

StageStats
InferenceResult::finalStats() const
{
    StageStats stats;
    for (std::size_t i = 0; i < module_.numValues(); ++i) {
        const ValueId vid(static_cast<ValueId::RawType>(i));
        const ValueKind kind = module_.value(vid).kind;
        if (kind != ValueKind::Argument && kind != ValueKind::InstResult)
            continue;
        switch (valueClass(vid)) {
          case TypeClass::Precise: ++stats.precise; break;
          case TypeClass::Over: ++stats.over; break;
          case TypeClass::Unknown: ++stats.unknown; break;
        }
    }
    return stats;
}

InferenceResult
InferenceResult::fromTypeMap(
    Module &module, const std::unordered_map<ValueId, TypeRef> &types)
{
    InferenceResult result(module,
                           std::make_unique<TypeEnv>(module.types()));
    for (const auto &[v, t] : types) {
        if (t.valid())
            result.overlay_.emplace(v, BoundPair::precise(t));
    }
    return result;
}

MantaAnalyzer::MantaAnalyzer(Module &module, HybridConfig config)
    : module_(module), config_(config)
{
    objects_ = std::make_unique<MemObjects>(module_);
    pts_ = std::make_unique<PointsTo>(module_, *objects_);
    pts_->run();
    ddg_ = std::make_unique<Ddg>(module_, *pts_);
    hints_ = std::make_unique<HintIndex>(module_, pts_.get());
}

const ModularSchedule &
MantaAnalyzer::schedule(double *build_seconds)
{
    if (!schedule_) {
        Timer timer;
        callgraph_ = std::make_unique<CallGraph>(module_);
        schedule_ = std::make_unique<ModularSchedule>(module_, *callgraph_);
        if (build_seconds != nullptr)
            *build_seconds += timer.seconds();
    }
    return *schedule_;
}

InferenceResult
MantaAnalyzer::infer()
{
    return infer(config_);
}

InferenceResult
MantaAnalyzer::infer(const HybridConfig &config)
{
    return infer(config, nullptr);
}

InferenceResult
MantaAnalyzer::infer(const HybridConfig &config, RefineMemo *memo)
{
    const HybridConfig saved = config_;
    config_ = config;
    Timer timer;
    auto env = std::make_unique<TypeEnv>(module_.types());
    TypeEnv &env_ref = *env;
    InferenceResult result(module_, std::move(env));
    result.profile_.hintCount = hints_->numHints();
    result.profile_.ptsSeconds = pts_->stats().seconds;

    // Stage 1: global flow-insensitive unification.
    std::vector<ValueId> over_approx;
    if (config_.flowInsensitive) {
        const ScopedSeconds fi_clock(result.profile_.fiSeconds);
        if (config_.inferEngine == InferEngine::Subtype) {
            subtype::SubtypeInference fi(module_, *pts_, *hints_);
            result.profile_.afterFi = fi.run(env_ref);
        } else {
            FlowInsensitiveInference fi(module_, *pts_, *hints_);
            result.profile_.afterFi = fi.run(env_ref);
        }
        for (std::size_t i = 0; i < module_.numValues(); ++i) {
            const ValueId vid(static_cast<ValueId::RawType>(i));
            const ValueKind kind = module_.value(vid).kind;
            if (kind != ValueKind::Argument && kind != ValueKind::InstResult)
                continue;
            if (env_ref.classifyOf(TypeVar::of(vid)) == TypeClass::Over)
                over_approx.push_back(vid);
        }
        result.profile_.fiOver = over_approx.size();
    } else if (config_.flowSensitive) {
        // Standalone flow-sensitive analysis: every variable is a
        // candidate; no pre-analysis evidence exists.
        for (std::size_t i = 0; i < module_.numValues(); ++i) {
            const ValueId vid(static_cast<ValueId::RawType>(i));
            const ValueKind kind = module_.value(vid).kind;
            if (kind == ValueKind::Argument || kind == ValueKind::InstResult)
                over_approx.push_back(vid);
        }
    }

    // The memo keys candidate records by post-FI content, so it only
    // engages when the FI stage ran and the fast engine answers the
    // walks; beginRun lets the memo itself veto (e.g. on a budget or
    // configuration mismatch with its stored records).
    if (memo != nullptr) {
        if (!config_.flowInsensitive ||
                config_.inferEngine != InferEngine::Unify ||
                config_.walkEngine != WalkEngine::Fast ||
                !memo->beginRun(module_, *ddg_, *hints_, *pts_, env_ref,
                                config_.budget))
            memo = nullptr;
    }

    // Modular bottom-up scheduling: one shared summary store for the
    // whole run (CS then FS walk over the same frozen environment and
    // hint index, so FS instantiates the closures CS published).
    const ModularSchedule *sched = nullptr;
    FnSummaryStore store;
    FnSummaryStore *store_ptr = nullptr;
    if (config_.scheduleMode == ScheduleMode::ModularBottomUp &&
            config_.walkEngine == WalkEngine::Fast &&
            (config_.contextSensitive || config_.flowSensitive)) {
        sched = &schedule(&result.profile_.summarySeconds);
        store_ptr = &store;
        result.profile_.sccCount = sched->sccs().numSccs();
        result.profile_.sccWaves = sched->sccs().numWaves();
    }

    auto run_cs = [&](const std::vector<ValueId> &candidates) {
        const ScopedSeconds cs_clock(result.profile_.csSeconds);
        CtxRefinement cs(module_, *ddg_, *hints_, env_ref, config_.budget,
                         config_.walkEngine, config_.walkParallel, memo,
                         sched, store_ptr);
        CtxRefineResult cs_result = cs.run(candidates);
        result.profile_.csResolved = cs_result.resolved;
        result.profile_.csStillOver = cs_result.stillOver.size();
        result.profile_.csWalk = cs_result.walk;
        result.profile_.csReused = cs_result.reused;
        for (const auto &[v, bp] : cs_result.refined)
            result.overlay_[v] = bp;
        return std::move(cs_result.stillOver);
    };
    auto run_fs = [&](const std::vector<ValueId> &candidates) {
        const ScopedSeconds fs_clock(result.profile_.fsSeconds);
        FlowRefinement fs(module_, *ddg_, *hints_, env_ref, config_.budget,
                          config_.walkEngine, config_.walkParallel, memo,
                          sched, store_ptr);
        FlowRefineResult fs_result = fs.run(candidates);
        result.profile_.fsResolved = fs_result.resolved;
        result.profile_.fsLost = fs_result.lost;
        result.profile_.fsWalk = fs_result.walk;
        result.profile_.fsReused = fs_result.reused;
        std::vector<ValueId> still_over;
        for (const auto &[v, bp] : fs_result.refined) {
            result.overlay_[v] = bp;
        }
        for (const ValueId v : candidates) {
            const auto it = fs_result.refined.find(v);
            const BoundPair bp = it != fs_result.refined.end()
                                     ? it->second
                                     : env_ref.boundsOf(TypeVar::of(v));
            if (bp.classify(module_.types()) != TypeClass::Precise)
                still_over.push_back(v);
        }
        for (auto &[sv, bp] : fs_result.siteBounds)
            result.site_overlay_[sv] = bp;
        return still_over;
    };

    if (config_.fsBeforeCs && config_.flowInsensitive &&
            config_.flowSensitive && config_.contextSensitive) {
        // Ablation order (Section 6.4): aggressive stage first.
        const auto still_over = run_fs(over_approx);
        run_cs(still_over);
    } else {
        // Paper order: context-sensitive refinement on V_O first...
        std::vector<ValueId> fs_candidates = over_approx;
        if (config_.contextSensitive && config_.flowInsensitive)
            fs_candidates = run_cs(over_approx);
        // ...then flow-sensitive refinement on the remainder.
        if (config_.flowSensitive)
            run_fs(fs_candidates);
    }

    result.profile_.summaryRoots = store.numRootEntries();
    result.profile_.summaryTypes = store.numTypeEntries();
    result.profile_.seconds = timer.seconds();
    config_ = saved;
    return result;
}

} // namespace manta
