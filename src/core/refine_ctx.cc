#include "core/refine_ctx.h"

#include <algorithm>
#include <unordered_set>

#include "support/task_pool.h"

namespace manta {

void
CtxRefinement::collectFor(DdgWalker &walker, ValueId v,
                          std::vector<TypeRef> &out) const
{
    if (walker.engine() == WalkEngine::Fast) {
        for (const ValueId root : walker.rootsOf(v)) {
            const auto &collected = walker.typesOf(root, hints_);
            out.insert(out.end(), collected.begin(), collected.end());
        }
    } else {
        // The reference engine recomputes every query, preserving the
        // original walker's cost model.
        for (const ValueId root : walker.findRoots(v)) {
            const auto collected = walker.collectTypes(root, hints_);
            out.insert(out.end(), collected.begin(), collected.end());
        }
    }
}

CtxRefineResult
CtxRefinement::run(const std::vector<ValueId> &over_approx)
{
    CtxRefineResult result;
    TypeTable &tt = module_.types();
    const std::size_t n = over_approx.size();
    std::vector<std::vector<TypeRef>> collected(n);

    // Phase 1: traversal. Reads only frozen state (graph, environment,
    // hints, interned types), so chunks can run on the shared pool.
    if (parallel_ && engine_ == WalkEngine::Fast && n > 1) {
        const std::size_t chunks = (n + kChunk - 1) / kChunk;
        std::vector<WalkStats> stats(chunks);
        sharedPool().parallelFor(chunks, [&](std::size_t c) {
            DdgWalker walker(ddg_, &env_, tt, budget_, engine_);
            const std::size_t lo = c * kChunk;
            const std::size_t hi = std::min(n, lo + kChunk);
            for (std::size_t i = lo; i < hi; ++i)
                collectFor(walker, over_approx[i], collected[i]);
            stats[c] = walker.stats();
        });
        for (const WalkStats &s : stats)
            result.walk.merge(s);
    } else {
        DdgWalker walker(ddg_, &env_, tt, budget_, engine_);
        for (std::size_t i = 0; i < n; ++i)
            collectFor(walker, over_approx[i], collected[i]);
        result.walk = walker.stats();
    }

    // Phase 2: merge, sequentially in worklist order (join/meet intern
    // new type nodes; the interning order defines TypeRef ids).
    std::vector<TypeRef> uniq;
    std::unordered_set<std::uint32_t> seen;
    for (std::size_t i = 0; i < n; ++i) {
        const ValueId v = over_approx[i];
        // Overlapping root closures surface the same annotation many
        // times; joining a duplicate is not always a no-op once joins
        // have widened past it, so dedup (keeping first occurrence)
        // before folding.
        uniq.clear();
        seen.clear();
        for (const TypeRef t : collected[i]) {
            if (seen.insert(t.raw()).second)
                uniq.push_back(t);
        }
        if (uniq.empty()) {
            result.stillOver.push_back(v);
            continue;
        }
        BoundPair refined(tt.joinAll(uniq), tt.meetAll(uniq));
        refined = BoundPair::refineWithin(tt, refined,
                                          env_.boundsOf(TypeVar::of(v)));
        const TypeClass cls = refined.classify(tt);
        result.refined.emplace(v, refined);
        if (cls == TypeClass::Precise) {
            ++result.resolved;
        } else {
            result.stillOver.push_back(v);
        }
    }
    return result;
}

} // namespace manta
