#include "core/refine_ctx.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <unordered_set>

#include "support/task_pool.h"

namespace manta {

void
CtxRefinement::collectFor(DdgWalker &walker, ValueId v,
                          std::vector<TypeRef> &out) const
{
    if (walker.engine() == WalkEngine::Fast) {
        for (const ValueId root : walker.rootsOf(v)) {
            const auto &collected = walker.typesOf(root, hints_);
            out.insert(out.end(), collected.begin(), collected.end());
        }
    } else {
        // The reference engine recomputes every query, preserving the
        // original walker's cost model.
        for (const ValueId root : walker.findRoots(v)) {
            const auto collected = walker.collectTypes(root, hints_);
            out.insert(out.end(), collected.begin(), collected.end());
        }
    }
}

CtxRefineResult
CtxRefinement::run(const std::vector<ValueId> &over_approx)
{
    CtxRefineResult result;
    TypeTable &tt = module_.types();
    const std::size_t n = over_approx.size();

    // Phase 0: memo consult. Each lookup is a hash-compare over the
    // candidate's recorded touched-set; hits skip the walk phase
    // entirely (their stored bounds are applied in the merge phase).
    const bool use_memo = memo_ != nullptr && engine_ == WalkEngine::Fast;
    std::vector<CtxCached> cached(use_memo ? n : 0);
    std::vector<char> hit(n, 0);
    std::vector<std::size_t> misses;
    misses.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (use_memo && memo_->lookupCtx(over_approx[i], cached[i]))
            hit[i] = 1;
        else
            misses.push_back(i);
    }
    const std::size_t m = misses.size();

    const std::uint32_t *owners = nullptr;
    std::size_t owners_count = 0;
    if (use_memo)
        owners = memo_->valueOwners(&owners_count);

    std::vector<std::vector<TypeRef>> collected(m);
    std::vector<std::vector<std::uint32_t>> touched(use_memo ? m : 0);
    std::vector<char> poisoned(m, 0);

    auto walkOne = [&](DdgWalker &walker, std::size_t k) {
        if (use_memo)
            walker.beginCandidate();
        collectFor(walker, over_approx[misses[k]], collected[k]);
        if (use_memo) {
            touched[k] = walker.candidateTouched();
            poisoned[k] = walker.candidatePoisoned() ? 1 : 0;
        }
    };

    // Phase 1: traversal. Reads only frozen state (graph, environment,
    // hints, interned types), so packs/chunks can run on the shared
    // pool.
    const bool modular = schedule_ != nullptr && summaries_ != nullptr &&
                         engine_ == WalkEngine::Fast;
    if (modular && m > 0) {
        // Bottom-up SCC waves: callee-wave closures are published into
        // the shared store before caller waves walk, so cross-SCC
        // traversals instantiate summaries instead of re-walking.
        const auto waves = schedule_->plan(over_approx, misses, kChunk);
        // Walker construction allocates module-sized scratch, so a
        // freelist recycles walkers across packs and waves (thousands
        // of packs on the xxl rungs). Reuse is invisible to results:
        // harvest drains the memo, scratch is epoch-stamped, and
        // visited keys are instruction ids, never interner ids.
        std::vector<std::unique_ptr<DdgWalker>> pool_store;
        std::vector<DdgWalker *> idle;
        std::mutex pool_mu;
        auto acquire = [&]() -> DdgWalker * {
            std::lock_guard<std::mutex> lock(pool_mu);
            if (!idle.empty()) {
                DdgWalker *w = idle.back();
                idle.pop_back();
                return w;
            }
            pool_store.push_back(std::make_unique<DdgWalker>(
                ddg_, &env_, tt, budget_, engine_));
            DdgWalker *w = pool_store.back().get();
            w->attachSharedSummaries(summaries_);
            if (use_memo)
                w->enableTouchCapture(owners, owners_count);
            return w;
        };
        auto release = [&](DdgWalker *w) {
            std::lock_guard<std::mutex> lock(pool_mu);
            idle.push_back(w);
        };
        for (const auto &wave : waves) {
            const std::size_t np = wave.packs.size();
            std::vector<WalkStats> stats(np);
            std::vector<FnSummaryStore::Delta> deltas(np);
            auto runPack = [&](std::size_t p) {
                DdgWalker *walker = acquire();
                walker->resetStats();
                for (const std::size_t k : wave.packs[p].ks)
                    walkOne(*walker, k);
                stats[p] = walker->stats();
                walker->harvestSummaries(deltas[p], *schedule_);
                release(walker);
            };
            if (parallel_ && np > 1) {
                sharedPool().parallelFor(np, runPack);
            } else {
                for (std::size_t p = 0; p < np; ++p)
                    runPack(p);
            }
            // Sequential publication in pack order keeps the store
            // contents (and thus every later wave's summary hits)
            // independent of MANTA_JOBS.
            for (std::size_t p = 0; p < np; ++p) {
                result.walk.merge(stats[p]);
                summaries_->publish(std::move(deltas[p]));
            }
        }
    } else if (parallel_ && engine_ == WalkEngine::Fast && m > 1) {
        const std::size_t chunks = (m + kChunk - 1) / kChunk;
        std::vector<WalkStats> stats(chunks);
        sharedPool().parallelFor(chunks, [&](std::size_t c) {
            DdgWalker walker(ddg_, &env_, tt, budget_, engine_);
            if (use_memo)
                walker.enableTouchCapture(owners, owners_count);
            const std::size_t hi = std::min(m, (c + 1) * kChunk);
            for (std::size_t k = c * kChunk; k < hi; ++k)
                walkOne(walker, k);
            stats[c] = walker.stats();
        });
        for (const WalkStats &s : stats)
            result.walk.merge(s);
    } else if (m > 0) {
        DdgWalker walker(ddg_, &env_, tt, budget_, engine_);
        if (use_memo)
            walker.enableTouchCapture(owners, owners_count);
        for (std::size_t k = 0; k < m; ++k)
            walkOne(walker, k);
        result.walk = walker.stats();
    }

    // Phase 2: merge, sequentially in worklist order (join/meet intern
    // new type nodes; the interning order defines TypeRef ids).
    std::vector<TypeRef> uniq;
    std::unordered_set<std::uint32_t> seen;
    std::size_t mi = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const ValueId v = over_approx[i];
        if (hit[i]) {
            ++result.reused;
            if (!cached[i].hasBound) {
                result.stillOver.push_back(v);
                continue;
            }
            const BoundPair refined = cached[i].bound;
            result.refined.emplace(v, refined);
            if (refined.classify(tt) == TypeClass::Precise)
                ++result.resolved;
            else
                result.stillOver.push_back(v);
            continue;
        }
        const std::size_t k = mi++;
        // Overlapping root closures surface the same annotation many
        // times; joining a duplicate is not always a no-op once joins
        // have widened past it, so dedup (keeping first occurrence)
        // before folding.
        uniq.clear();
        seen.clear();
        for (const TypeRef t : collected[k]) {
            if (seen.insert(t.raw()).second)
                uniq.push_back(t);
        }
        if (uniq.empty()) {
            result.stillOver.push_back(v);
            if (use_memo && !poisoned[k])
                memo_->storeCtx(v, CtxCached{}, touched[k]);
            continue;
        }
        BoundPair refined(tt.joinAll(uniq), tt.meetAll(uniq));
        refined = BoundPair::refineWithin(tt, refined,
                                          env_.boundsOf(TypeVar::of(v)));
        const TypeClass cls = refined.classify(tt);
        result.refined.emplace(v, refined);
        if (cls == TypeClass::Precise) {
            ++result.resolved;
        } else {
            result.stillOver.push_back(v);
        }
        if (use_memo && !poisoned[k])
            memo_->storeCtx(v, CtxCached{true, refined}, touched[k]);
    }
    return result;
}

} // namespace manta
