#include "core/refine_ctx.h"

namespace manta {

CtxRefineResult
CtxRefinement::run(const std::vector<ValueId> &over_approx)
{
    CtxRefineResult result;
    TypeTable &tt = module_.types();
    DdgWalker walker(ddg_, &env_, tt, budget_);

    for (const ValueId v : over_approx) {
        std::vector<TypeRef> types;
        for (const ValueId root : walker.findRoots(v)) {
            const auto collected = walker.collectTypes(root, hints_);
            types.insert(types.end(), collected.begin(), collected.end());
        }
        if (types.empty()) {
            result.stillOver.push_back(v);
            continue;
        }
        BoundPair refined(tt.joinAll(types), tt.meetAll(types));
        refined = BoundPair::refineWithin(tt, refined,
                                          env_.boundsOf(TypeVar::of(v)));
        const TypeClass cls = refined.classify(tt);
        result.refined.emplace(v, refined);
        if (cls == TypeClass::Precise) {
            ++result.resolved;
        } else {
            result.stillOver.push_back(v);
        }
    }
    return result;
}

} // namespace manta
