/**
 * @file
 * Type variables: the keys type inference assigns bounds to.
 *
 * A type variable is either an SSA value or an abstract-object field
 * (object + byte offset, with the unknown-offset sentinel for collapsed
 * arrays), mirroring the domain V union O of paper Figure 5.
 */
#ifndef MANTA_CORE_TYPEVAR_H
#define MANTA_CORE_TYPEVAR_H

#include <cstdint>
#include <functional>

#include "analysis/memobj.h"
#include "mir/mir.h"

namespace manta {

/** A unification key: SSA value or object field. */
struct TypeVar
{
    enum class Kind : std::uint8_t { Value, Field };

    Kind kind = Kind::Value;
    ValueId value;
    ObjectId obj;
    std::int32_t offset = 0;

    static TypeVar
    of(ValueId v)
    {
        TypeVar tv;
        tv.kind = Kind::Value;
        tv.value = v;
        return tv;
    }

    static TypeVar
    field(ObjectId o, std::int32_t off)
    {
        TypeVar tv;
        tv.kind = Kind::Field;
        tv.obj = o;
        tv.offset = off;
        return tv;
    }

    friend bool
    operator==(const TypeVar &a, const TypeVar &b)
    {
        if (a.kind != b.kind)
            return false;
        if (a.kind == Kind::Value)
            return a.value == b.value;
        return a.obj == b.obj && a.offset == b.offset;
    }
};

} // namespace manta

namespace std {

template <>
struct hash<manta::TypeVar>
{
    size_t
    operator()(const manta::TypeVar &tv) const noexcept
    {
        const size_t h1 = tv.kind == manta::TypeVar::Kind::Value
                              ? hash<manta::ValueId>()(tv.value)
                              : hash<manta::ObjectId>()(tv.obj) * 131 +
                                    static_cast<size_t>(tv.offset + 7);
        return h1 * 2 + static_cast<size_t>(tv.kind);
    }
};

} // namespace std

#endif // MANTA_CORE_TYPEVAR_H
