/**
 * @file
 * Type-revealing sites (Table 1, rule 4).
 *
 * A hint attaches a concrete type to a value at an instruction:
 * external-call signatures, loads/stores (the address is a pointer to a
 * register-width cell), floating arithmetic, integer-only arithmetic,
 * width casts, and non-zero constants used in comparisons (the
 * pointer-vs-error-code idiom the paper names as a soundness gap).
 */
#ifndef MANTA_CORE_HINTS_H
#define MANTA_CORE_HINTS_H

#include <vector>

#include "analysis/pointsto.h"
#include "mir/mir.h"
#include "types/type.h"

namespace manta {

/** One type hint: `value` reveals as `type` at `site`. */
struct TypeHint
{
    ValueId value;
    TypeRef type;
    InstId site;
};

/**
 * Index of every type-revealing annotation in a module, queryable per
 * instruction (flow-sensitive refinement) and per value (context
 * traversal and flow-insensitive unification).
 */
class HintIndex
{
  public:
    /**
     * Build the index. When `pts` is given, pointer arithmetic whose
     * operands have points-to locations also reveals pointers ("
     * arithmetic calculations" in Table 1 rule 4).
     */
    explicit HintIndex(Module &module, const PointsTo *pts = nullptr);

    /** Hints revealed at one instruction. */
    const std::vector<TypeHint> &at(InstId inst) const;

    /** All hints attached to a value anywhere in the module. */
    const std::vector<TypeHint> &of(ValueId value) const;

    /** Total number of hints (stats). */
    std::size_t numHints() const { return total_; }

  private:
    void addHint(ValueId value, TypeRef type, InstId site);
    void scanInst(Module &module, InstId iid, const PointsTo *pts);

    std::vector<std::vector<TypeHint>> by_inst_;
    std::vector<std::vector<TypeHint>> by_value_;
    std::size_t total_ = 0;
    static const std::vector<TypeHint> none_;
};

} // namespace manta

#endif // MANTA_CORE_HINTS_H
