#include "core/hints.h"

namespace manta {

const std::vector<TypeHint> HintIndex::none_;

HintIndex::HintIndex(Module &module, const PointsTo *pts)
{
    by_inst_.assign(module.numInsts(), {});
    by_value_.assign(module.numValues(), {});
    for (std::size_t i = 0; i < module.numInsts(); ++i)
        scanInst(module, InstId(static_cast<InstId::RawType>(i)), pts);

    // Address-of values are pointers by construction.
    TypeTable &tt = module.types();
    for (std::size_t v = 0; v < module.numValues(); ++v) {
        const ValueId vid(static_cast<ValueId::RawType>(v));
        const Value &value = module.value(vid);
        if (value.kind == ValueKind::GlobalAddr) {
            const Global &g = module.global(value.global);
            // A string literal's address reveals as char*.
            const TypeRef ty = g.isStringLiteral ? tt.ptr(tt.intTy(8))
                                                 : tt.ptrAny();
            addHint(vid, ty, InstId::invalid());
        }
    }
}

void
HintIndex::addHint(ValueId value, TypeRef type, InstId site)
{
    if (!value.valid() || !type.valid())
        return;
    by_value_[value.index()].push_back(TypeHint{value, type, site});
    if (site.valid())
        by_inst_[site.index()].push_back(TypeHint{value, type, site});
    ++total_;
}

void
HintIndex::scanInst(Module &module, InstId iid, const PointsTo *pts)
{
    const Instruction &inst = module.inst(iid);
    TypeTable &tt = module.types();

    if (pts && (inst.op == Opcode::Add || inst.op == Opcode::Sub) &&
            inst.result.valid()) {
        // Pointer arithmetic: a base pointer displaced by a constant
        // reveals both base and result as pointers.
        const ValueId a = module.operand(inst, 0);
        const ValueId b = module.operand(inst, 1);
        const bool b_const = module.value(b).kind == ValueKind::Constant;
        if (b_const && !pts->locs(a).empty() &&
                !pts->locs(inst.result).empty()) {
            addHint(a, tt.ptrAny(), iid);
            addHint(inst.result, tt.ptrAny(), iid);
        }
    }

    auto float_of_width = [&](int width) {
        return width == 32 ? tt.floatTy() : tt.doubleTy();
    };

    switch (inst.op) {
      case Opcode::Load: {
        // Dereference reveals the address as a pointer to a register
        // cell of the loaded width (ptr vs num of the cell stays open).
        const int width = module.value(inst.result).width;
        addHint(module.operand(inst, 0), tt.ptr(tt.reg(width)), iid);
        break;
      }
      case Opcode::Store: {
        const int width = module.value(module.operand(inst, 1)).width;
        addHint(module.operand(inst, 0), tt.ptr(tt.reg(width)), iid);
        break;
      }
      case Opcode::Alloca:
        addHint(inst.result, tt.ptrAny(), iid);
        break;
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv: {
        const int width = module.value(inst.result).width;
        addHint(inst.result, float_of_width(width), iid);
        for (const ValueId op : module.operands(inst))
            addHint(op, float_of_width(module.value(op).width), iid);
        break;
      }
      case Opcode::FCmp:
        for (const ValueId op : module.operands(inst))
            addHint(op, float_of_width(module.value(op).width), iid);
        break;
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Xor: {
        // Multiplicative/shift arithmetic is integer-only in compiled
        // code (pointer scaling happens before the add).
        const int width = module.value(inst.result).width;
        addHint(inst.result, tt.intTy(width), iid);
        for (const ValueId op : module.operands(inst))
            addHint(op, tt.intTy(module.value(op).width), iid);
        break;
      }
      case Opcode::Trunc:
      case Opcode::ZExt:
      case Opcode::SExt: {
        // Width conversions act on integers.
        addHint(inst.result, tt.intTy(module.value(inst.result).width), iid);
        addHint(module.operand(inst, 0),
                tt.intTy(module.value(module.operand(inst, 0)).width), iid);
        break;
      }
      case Opcode::ICmp: {
        // Comparing against a non-zero literal reveals the literal as
        // an integer (zero stays ambiguous: it may be NULL). Combined
        // with the cmp unification rule this reproduces the paper's
        // pointer-vs-(-1) soundness gap.
        for (const ValueId op : module.operands(inst)) {
            const Value &v = module.value(op);
            if (v.kind == ValueKind::Constant && v.constValue != 0)
                addHint(op, tt.intTy(v.width), iid);
        }
        break;
      }
      case Opcode::Call: {
        if (!inst.external.valid())
            break;
        const External &ext = module.external(inst.external);
        const std::size_t n =
            std::min(ext.paramTypes.size(), inst.numOperands());
        for (std::size_t k = 0; k < n; ++k)
            addHint(module.operand(inst, k), ext.paramTypes[k], iid);
        if (inst.result.valid() && ext.retType.valid())
            addHint(inst.result, ext.retType, iid);
        break;
      }
      default:
        break;
    }
}

const std::vector<TypeHint> &
HintIndex::at(InstId inst) const
{
    if (!inst.valid() || inst.index() >= by_inst_.size())
        return none_;
    return by_inst_[inst.index()];
}

const std::vector<TypeHint> &
HintIndex::of(ValueId value) const
{
    if (!value.valid() || value.index() >= by_value_.size())
        return none_;
    return by_value_[value.index()];
}

} // namespace manta
