/**
 * @file
 * Shared plumbing for the benchmark binaries: prepare a project
 * (generate, preprocess, build substrates), run the Manta ablations
 * and the baselines on it, produce oracle references, and run the bug
 * detector with a given type source.
 */
#ifndef MANTA_EVAL_HARNESS_H
#define MANTA_EVAL_HARNESS_H

#include <memory>
#include <string>

#include "baselines/bugtools.h"
#include "baselines/learned.h"
#include "baselines/typetools.h"
#include "clients/ddg_prune.h"
#include "eval/metrics.h"
#include "frontend/corpus.h"
#include "frontend/firmware.h"

namespace manta {

/** A generated, preprocessed project with live substrates. */
struct PreparedProject
{
    std::string name;
    int kloc = 0;
    GeneratedProgram prog;
    std::unique_ptr<MantaAnalyzer> analyzer;

    Module &module() { return *prog.module; }
    const GroundTruth &truth() const { return prog.truth; }
    /** Wall clock of the points-to substrate solve (built once here). */
    double ptsSeconds() const { return analyzer->pts().stats().seconds; }
};

/** Generate + makeAcyclic + build substrates. */
PreparedProject prepareProject(const ProjectProfile &profile);

/** Same, for a firmware image. */
PreparedProject prepareFirmware(const FirmwareProfile &profile);

/** The oracle ("source-level") inference from ground truth. */
InferenceResult oracleInference(PreparedProject &project);

/**
 * Train the DIRTY surrogate on a held-out generated corpus (seeds
 * disjoint from every evaluation profile).
 */
DirtyModel trainDirtyModel(int training_programs = 12);

/**
 * Run the bug detector with the given type source.
 * Prunes the DDG before detection and restores it afterwards.
 *
 * @param inference Type source; null = Manta-NoType mode.
 */
std::vector<BugReport> detectBugs(PreparedProject &project,
                                  const InferenceResult *inference);

/** Geometric mean of a positive series. */
double geomean(const std::vector<double> &values);

} // namespace manta

#endif // MANTA_EVAL_HARNESS_H
