/**
 * @file
 * Parallel evaluation harness: fans project/firmware preparation and
 * per-project analysis out across a work-stealing TaskPool while
 * keeping every reported number bit-identical to a sequential run.
 *
 * Determinism contract (relied on by the bench binaries and tested in
 * tests/test_parallel_harness.cc):
 *
 *  1. Every result lands in a pre-sized, index-addressed slot: slot i
 *     always holds the outcome for profile i, regardless of which
 *     worker computed it or in what order tasks finished.
 *  2. Workload generation draws only from the profile's own RNG seed
 *     (GenConfig::seed), never from shared generator state, so a
 *     project's module is a pure function of its profile.
 *  3. All order-sensitive reduction (accumulating totals, geomeans,
 *     table rows) happens AFTER the join, over the slots in index
 *     order — identical floating-point summation order to the
 *     sequential loop it replaced.
 *
 * What may legitimately differ between runs: wall-clock readings and
 * the interleaving of per-project progress lines on stdout.
 *
 * Threading model: each task owns its PreparedProject (module,
 * analyzer, substrates) outright; the only shared objects are
 * immutable ones (profiles, a trained DirtyModel used via const
 * predict()) plus the thread-safe StageLedger.
 */
#ifndef MANTA_EVAL_PARALLEL_H
#define MANTA_EVAL_PARALLEL_H

#include <cstdio>
#include <type_traits>
#include <vector>

#include "eval/harness.h"
#include "support/task_pool.h"
#include "support/timer.h"

namespace manta {

/** Fans harness work across a TaskPool with indexed result slots. */
class ParallelHarness
{
  public:
    /** 0 workers means defaultJobs() (MANTA_JOBS or hardware). */
    explicit ParallelHarness(std::size_t jobs = 0);

    /** Number of pool workers. */
    std::size_t jobs() const { return pool_.jobs(); }

    /** Per-stage wall-clock ledger shared by all tasks. */
    StageLedger &ledger() { return ledger_; }

    /**
     * Run fn(i) for i in [0, count) on the pool and return the
     * results in index order. R must be default-constructible. An
     * exception from any iteration is rethrown after all iterations
     * finish.
     */
    template <typename Fn>
    auto
    map(std::size_t count, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
    {
        using R = std::invoke_result_t<Fn &, std::size_t>;
        static_assert(std::is_default_constructible_v<R>,
                      "map slots are pre-sized");
        std::vector<R> results(count);
        pool_.parallelFor(count, [&](std::size_t i) {
            results[i] = fn(i);
        });
        return results;
    }

    /**
     * Prepare each project (generate, makeAcyclic, build substrates)
     * and apply fn(project, i); results are returned in profile
     * order. Preparation time is billed to the "prepare" stage of the
     * ledger, fn to "analyze".
     */
    template <typename Fn>
    auto
    mapProjects(const std::vector<ProjectProfile> &profiles, Fn &&fn)
        -> std::vector<
            std::invoke_result_t<Fn &, PreparedProject &, std::size_t>>
    {
        return map(profiles.size(), [&](std::size_t i) {
            PreparedProject project = [&]() {
                const StageLedger::Scope clock(ledger_, "prepare");
                return prepareProject(profiles[i]);
            }();
            const StageLedger::Scope clock(ledger_, "analyze");
            return fn(project, i);
        });
    }

    /** Firmware-fleet counterpart of mapProjects. */
    template <typename Fn>
    auto
    mapFirmware(const std::vector<FirmwareProfile> &profiles, Fn &&fn)
        -> std::vector<
            std::invoke_result_t<Fn &, PreparedProject &, std::size_t>>
    {
        return map(profiles.size(), [&](std::size_t i) {
            PreparedProject project = [&]() {
                const StageLedger::Scope clock(ledger_, "prepare");
                return prepareFirmware(profiles[i]);
            }();
            const StageLedger::Scope clock(ledger_, "analyze");
            return fn(project, i);
        });
    }

    /**
     * Thread-safe progress line ("  analyzed <name>"). Lines from
     * concurrent tasks may interleave in completion order; the tables
     * printed after the join are unaffected.
     */
    static void announce(const std::string &name);

  private:
    TaskPool pool_;
    StageLedger ledger_;
};

} // namespace manta

#endif // MANTA_EVAL_PARALLEL_H
