#include "eval/harness.h"

#include <cmath>

#include "analysis/acyclic.h"

namespace manta {

namespace {

PreparedProject
prepare(std::string name, int kloc, GeneratedProgram prog)
{
    PreparedProject project;
    project.name = std::move(name);
    project.kloc = kloc;
    project.prog = std::move(prog);
    makeAcyclic(*project.prog.module);
    project.analyzer = std::make_unique<MantaAnalyzer>(
        *project.prog.module, HybridConfig::full());
    return project;
}

} // namespace

PreparedProject
prepareProject(const ProjectProfile &profile)
{
    return prepare(profile.name, profile.kloc, buildProject(profile));
}

PreparedProject
prepareFirmware(const FirmwareProfile &profile)
{
    return prepare(profile.name, 0, buildFirmware(profile));
}

InferenceResult
oracleInference(PreparedProject &project)
{
    return InferenceResult::fromTypeMap(project.module(),
                                        project.truth().valueTypes);
}

DirtyModel
trainDirtyModel(int training_programs)
{
    DirtyModel model;
    for (int i = 0; i < training_programs; ++i) {
        GenConfig cfg;
        cfg.seed = 777000 + i;   // disjoint from all evaluation seeds
        cfg.numFunctions = 40;
        cfg.realBugRate = 0.02;
        cfg.decoyRate = 0.03;
        GeneratedProgram prog = generateProgram(cfg);
        makeAcyclic(*prog.module);
        model.train(*prog.module, prog.truth);
    }
    return model;
}

std::vector<BugReport>
detectBugs(PreparedProject &project, const InferenceResult *inference)
{
    DetectorOptions opts;
    opts.useTypes = inference != nullptr;
    if (inference)
        pruneInfeasibleDeps(project.analyzer->ddg(), *inference);
    const BugDetector detector(*project.analyzer, inference, opts);
    auto reports = detector.runAll();
    project.analyzer->ddg().resetPruning();
    return reports;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const double v : values)
        log_sum += std::log(std::max(v, 1e-9));
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace manta
