/**
 * @file
 * Evaluation metrics matching the paper's Section 6 definitions.
 *
 * Type inference (Table 3): over ground-truth-typed function
 * parameters, first-layer granularity.
 *   precision = precisely-and-correctly typed / total
 *   recall    = (precise-correct + interval-contains-truth + unknown)
 *               / total
 * (an unknown result is "any type" and thus always contains the truth;
 * a singleton supertype of the truth earns recall but not precision.)
 *
 * Indirect calls (Table 4 / Figure 11): ground truth is the
 * source-level type-based analysis (the oracle inference).
 *   precision = pruned infeasible targets / all infeasible targets
 *   recall    = kept feasible targets / all feasible targets
 *
 * Slicing (Figure 12): F1 between a tool's source-sink pair set and
 * the source-level reference pair set.
 *
 * Bug detection (Table 5): FP = reports whose sink tag is not a real
 * injected bug; FPR = FP / #reports.
 */
#ifndef MANTA_EVAL_METRICS_H
#define MANTA_EVAL_METRICS_H

#include <unordered_map>

#include "clients/checkers.h"
#include "clients/icall.h"
#include "core/pipeline.h"
#include "frontend/groundtruth.h"

namespace manta {

/** Per-variable type-inference outcome counts. */
struct TypeEval
{
    std::size_t total = 0;
    std::size_t preciseCorrect = 0;  ///< First-layer-precise and right.
    std::size_t captured = 0;        ///< Interval/supertype contains truth.
    std::size_t unknown = 0;         ///< No commitment (any type).
    std::size_t incorrect = 0;       ///< Committed and wrong.

    double
    precision() const
    {
        return total == 0 ? 0.0
                          : static_cast<double>(preciseCorrect) /
                                static_cast<double>(total);
    }

    double
    recall() const
    {
        return total == 0
                   ? 0.0
                   : static_cast<double>(preciseCorrect + captured +
                                         unknown) /
                         static_cast<double>(total);
    }
};

/** Parameters with ground truth, the Table 3 evaluation set. */
std::vector<ValueId> evaluatedParams(const Module &module,
                                     const GroundTruth &truth);

/** Score a hybrid inference result against ground truth. */
TypeEval evalInference(Module &module, const GroundTruth &truth,
                       const InferenceResult &result);

/**
 * Score a baseline's singleton predictions (absent entry = unknown)
 * against ground truth.
 */
TypeEval evalTypeMap(Module &module, const GroundTruth &truth,
                     const std::unordered_map<ValueId, TypeRef> &types);

/** Indirect-call pruning quality against a reference target set. */
struct IcallEval
{
    double aict = 0.0;           ///< Average targets kept by the tool.
    double referenceAict = 0.0;  ///< Average targets in the reference.
    double precision = 0.0;      ///< Infeasible pruned / infeasible.
    double recall = 0.0;         ///< Feasible kept / feasible.
};

IcallEval evalIcall(Module &module, const IcallResult &tool,
                    const IcallResult &reference);

/** F1 between two source-sink pair sets (Figure 12). */
struct SliceEval
{
    std::size_t toolPairs = 0;
    std::size_t referencePairs = 0;
    std::size_t matched = 0;

    double
    precision() const
    {
        return toolPairs == 0 ? 0.0
                              : static_cast<double>(matched) / toolPairs;
    }
    double
    recall() const
    {
        return referencePairs == 0
                   ? 0.0
                   : static_cast<double>(matched) / referencePairs;
    }
    double
    f1() const
    {
        const double p = precision(), r = recall();
        return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
    }
};

SliceEval evalSlices(const std::vector<BugReport> &tool,
                     const std::vector<BugReport> &reference);

/** Bug-report accounting against injected seeds (Table 5). */
struct BugEval
{
    std::size_t reports = 0;
    std::size_t falsePositives = 0;
    std::size_t realBugsFound = 0;
    std::size_t realBugsInjected = 0;

    double
    fpr() const
    {
        return reports == 0 ? 0.0
                            : static_cast<double>(falsePositives) /
                                  static_cast<double>(reports);
    }
};

BugEval evalBugs(const std::vector<BugReport> &reports,
                 const GroundTruth &truth);

} // namespace manta

#endif // MANTA_EVAL_METRICS_H
