#include "eval/metrics.h"

#include <set>

namespace manta {

std::vector<ValueId>
evaluatedParams(const Module &module, const GroundTruth &truth)
{
    std::vector<ValueId> params;
    for (std::size_t f = 0; f < module.numFuncs(); ++f) {
        const Function &fn = module.func(FuncId(FuncId::RawType(f)));
        if (module.str(fn.name) == "main")
            continue;
        for (const ValueId p : fn.params) {
            if (truth.typeOf(p).valid())
                params.push_back(p);
        }
    }
    return params;
}

namespace {

/** Is a bound pair committed to one first-layer constructor? */
bool
firstLayerResolved(TypeTable &tt, const BoundPair &bp)
{
    if (bp.upper == tt.top() || bp.lower == tt.bottom())
        return bp.upper == bp.lower; // only full singletons qualify
    return tt.firstLayerEqual(bp.upper, bp.lower);
}

void
scoreBounds(TypeTable &tt, const BoundPair &bp, TypeRef truth_ty,
            TypeEval &eval)
{
    ++eval.total;
    const TypeClass cls = bp.classify(tt);
    if (cls == TypeClass::Unknown) {
        ++eval.unknown;
        return;
    }
    if (firstLayerResolved(tt, bp) && bp.upper != tt.top()) {
        if (tt.firstLayerEqual(bp.upper, truth_ty)) {
            ++eval.preciseCorrect;
        } else if (tt.contains(bp.lower, bp.upper, truth_ty)) {
            ++eval.captured;
        } else {
            ++eval.incorrect;
        }
        return;
    }
    if (tt.contains(bp.lower, bp.upper, truth_ty)) {
        ++eval.captured;
    } else {
        ++eval.incorrect;
    }
}

} // namespace

TypeEval
evalInference(Module &module, const GroundTruth &truth,
              const InferenceResult &result)
{
    TypeEval eval;
    TypeTable &tt = module.types();
    for (const ValueId p : evaluatedParams(module, truth))
        scoreBounds(tt, result.valueBounds(p), truth.typeOf(p), eval);
    return eval;
}

TypeEval
evalTypeMap(Module &module, const GroundTruth &truth,
            const std::unordered_map<ValueId, TypeRef> &types)
{
    TypeEval eval;
    TypeTable &tt = module.types();
    for (const ValueId p : evaluatedParams(module, truth)) {
        ++eval.total;
        const TypeRef truth_ty = truth.typeOf(p);
        const auto it = types.find(p);
        if (it == types.end() || !it->second.valid()) {
            ++eval.unknown;
            continue;
        }
        const TypeRef pred = it->second;
        if (pred == tt.top()) {
            ++eval.unknown;
        } else if (tt.firstLayerEqual(pred, truth_ty)) {
            ++eval.preciseCorrect;
        } else if (tt.isSubtype(truth_ty, pred)) {
            // A supertype prediction still captures the truth.
            ++eval.captured;
        } else {
            ++eval.incorrect;
        }
    }
    return eval;
}

IcallEval
evalIcall(Module &module, const IcallResult &tool,
          const IcallResult &reference)
{
    IcallEval eval;
    eval.aict = tool.aict();
    eval.referenceAict = reference.aict();

    const auto candidates = module.addressTakenFuncs();
    double pruned_infeasible = 0, total_infeasible = 0;
    double kept_feasible = 0, total_feasible = 0;

    for (const auto &[site, ref_targets] : reference.targets) {
        const auto it = tool.targets.find(site);
        if (it == tool.targets.end())
            continue;
        const std::set<FuncId> ref_set(ref_targets.begin(),
                                       ref_targets.end());
        const std::set<FuncId> tool_set(it->second.begin(),
                                        it->second.end());
        for (const FuncId cand : candidates) {
            const bool feasible = ref_set.count(cand) > 0;
            const bool kept = tool_set.count(cand) > 0;
            if (feasible) {
                ++total_feasible;
                kept_feasible += kept;
            } else {
                ++total_infeasible;
                pruned_infeasible += !kept;
            }
        }
    }
    eval.precision =
        total_infeasible == 0 ? 1.0 : pruned_infeasible / total_infeasible;
    eval.recall = total_feasible == 0 ? 1.0 : kept_feasible / total_feasible;
    return eval;
}

SliceEval
evalSlices(const std::vector<BugReport> &tool,
           const std::vector<BugReport> &reference)
{
    auto key = [](const BugReport &r) {
        return std::tuple<int, std::uint32_t, std::uint32_t>(
            static_cast<int>(r.kind), r.sourceSite.raw(), r.sinkSite.raw());
    };
    std::set<std::tuple<int, std::uint32_t, std::uint32_t>> tool_set,
        ref_set;
    for (const BugReport &r : tool)
        tool_set.insert(key(r));
    for (const BugReport &r : reference)
        ref_set.insert(key(r));

    SliceEval eval;
    eval.toolPairs = tool_set.size();
    eval.referencePairs = ref_set.size();
    for (const auto &k : tool_set)
        eval.matched += ref_set.count(k);
    return eval;
}

BugEval
evalBugs(const std::vector<BugReport> &reports, const GroundTruth &truth)
{
    BugEval eval;
    eval.reports = reports.size();
    std::set<std::uint32_t> found_real;
    for (const BugReport &r : reports) {
        if (r.sinkTag != 0 && truth.isRealBugTag(r.sinkTag)) {
            found_real.insert(r.sinkTag);
        } else {
            ++eval.falsePositives;
        }
    }
    eval.realBugsFound = found_real.size();
    for (const BugSeed &seed : truth.seeds)
        eval.realBugsInjected += seed.real;
    return eval;
}

} // namespace manta
