#include "eval/parallel.h"

namespace manta {

ParallelHarness::ParallelHarness(std::size_t jobs) : pool_(jobs) {}

void
ParallelHarness::announce(const std::string &name)
{
    // A single printf call is atomic enough for line-granular output;
    // flush so progress is visible while later projects still run.
    std::printf("  analyzed %s\n", name.c_str());
    std::fflush(stdout);
}

} // namespace manta
