/**
 * @file
 * Structured diagnostics for the lint framework (docs/LINT.md).
 *
 * A Diagnostic is what a checker produces: which checker fired, how
 * severe the finding is, the primary instruction it anchors to plus
 * any related instructions (each with the owning function's name and
 * a role label such as "source" or "sink"), a fix-it-style message,
 * and the type evidence that made the checker fire. MIR has no file
 * or line coordinates, so locations are instruction ids; serializers
 * map them to pseudo-lines (SARIF) or `@func/inst<N>` spans (text).
 */
#ifndef MANTA_LINT_DIAGNOSTIC_H
#define MANTA_LINT_DIAGNOSTIC_H

#include <string>
#include <vector>

#include "mir/mir.h"

namespace manta {
namespace lint {

/** Diagnostic severity, in increasing order. */
enum class Severity : std::uint8_t {
    Note,
    Warning,
    Error,
};

/** Printable severity name ("note" / "warning" / "error"). */
const char *severityName(Severity severity);

/** SARIF result level for a severity (same spelling, by design). */
const char *severityLevel(Severity severity);

/** One instruction location a diagnostic points at. */
struct DiagLocation
{
    InstId inst;          ///< The instruction (invalid = whole module).
    std::string func;     ///< Name of the owning function.
    std::string role;     ///< "sink", "source", "cast", ... (free-form).
};

/** One lint finding. */
struct Diagnostic
{
    std::string checker;              ///< Checker id, e.g. "width-trunc".
    Severity severity = Severity::Warning;
    DiagLocation primary;             ///< Where the problem manifests.
    std::vector<DiagLocation> related;///< Supporting locations, in order.
    std::string message;              ///< Fix-it-style, human readable.
    std::string evidence;             ///< Type facts that fired the checker.
    /**
     * Frontend origin tag of the primary instruction (0 = untagged);
     * lets the evaluation match diagnostics against injected ground
     * truth exactly like BugReport::sinkTag.
     */
    std::uint32_t srcTag = 0;
    /**
     * Stable suppression fingerprint (`checker@func#block:pos`),
     * filled by the framework before the diagnostic reaches the
     * engine; baseline files store these strings.
     */
    std::string fingerprint;
};

/**
 * The framework's deterministic order: (checker, primary, message,
 * related). Independent of discovery order and job count.
 */
bool diagnosticLess(const Diagnostic &a, const Diagnostic &b);

} // namespace lint
} // namespace manta

#endif // MANTA_LINT_DIAGNOSTIC_H
