/**
 * @file
 * The checker interface and registry of the lint framework.
 *
 * A checker is a stateless class that inspects a read-only
 * LintContext and returns structured Diagnostics. Checkers register
 * through explicit factory functions (registerBuiltinCheckers) rather
 * than static self-registration, so a static-library build cannot
 * silently drop a checker's object file. See docs/LINT.md for the
 * catalog and a worked "write a checker in 50 lines" example.
 */
#ifndef MANTA_LINT_CHECKER_H
#define MANTA_LINT_CHECKER_H

#include <memory>
#include <vector>

#include "lint/diagnostic.h"

namespace manta {
namespace lint {

class LintContext;

/** One static checker. Implementations must be const-safe. */
class Checker
{
  public:
    virtual ~Checker() = default;

    /** Stable kebab-case id ("npd", "width-trunc", ...). */
    virtual const char *id() const = 0;

    /** Default severity of this checker's findings. */
    virtual Severity severity() const = 0;

    /** One-line description (SARIF rule metadata, docs). */
    virtual const char *description() const = 0;

    /** Inspect the module; return findings in any order. */
    virtual std::vector<Diagnostic> run(const LintContext &ctx) const = 0;
};

using CheckerFactory = std::unique_ptr<Checker> (*)();

/**
 * The process-wide checker registry. Factories are registered once
 * (idempotently) by registerBuiltinCheckers(); createAll() builds a
 * fresh instance of every registered checker sorted by id, which is
 * the deterministic execution order of runLint().
 */
class CheckerRegistry
{
  public:
    static CheckerRegistry &instance();

    /** Register a factory; duplicate ids are rejected (first wins). */
    void add(CheckerFactory factory);

    /** Fresh instances of every registered checker, sorted by id. */
    std::vector<std::unique_ptr<Checker>> createAll() const;

    std::size_t size() const { return factories_.size(); }

  private:
    std::vector<CheckerFactory> factories_;
};

/**
 * Register the thirteen built-in checkers (five paper adapters + five
 * type-assisted additions + the three-checker taint family). Safe to
 * call more than once.
 */
void registerBuiltinCheckers();

/// @name Built-in checker factories.
/// @{
std::unique_ptr<Checker> makeNpdChecker();
std::unique_ptr<Checker> makeRsaChecker();
std::unique_ptr<Checker> makeUafChecker();
std::unique_ptr<Checker> makeCmiChecker();
std::unique_ptr<Checker> makeBofChecker();
std::unique_ptr<Checker> makeWidthTruncChecker();
std::unique_ptr<Checker> makeSignConfusionChecker();
std::unique_ptr<Checker> makeUninitStackChecker();
std::unique_ptr<Checker> makeDoubleFreeChecker();
std::unique_ptr<Checker> makeIcallMismatchChecker();
std::unique_ptr<Checker> makeAddrLeakChecker();
std::unique_ptr<Checker> makeTaintDerefChecker();
std::unique_ptr<Checker> makeFormatStringChecker();
/// @}

} // namespace lint
} // namespace manta

#endif // MANTA_LINT_CHECKER_H
