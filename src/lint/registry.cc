#include "lint/checker.h"

#include <algorithm>
#include <cstring>

namespace manta {
namespace lint {

CheckerRegistry &
CheckerRegistry::instance()
{
    static CheckerRegistry registry;
    return registry;
}

void
CheckerRegistry::add(CheckerFactory factory)
{
    // Reject duplicate ids so re-registration stays idempotent.
    const std::unique_ptr<Checker> probe = factory();
    for (const CheckerFactory existing : factories_) {
        const std::unique_ptr<Checker> present = existing();
        if (std::strcmp(present->id(), probe->id()) == 0)
            return;
    }
    factories_.push_back(factory);
}

std::vector<std::unique_ptr<Checker>>
CheckerRegistry::createAll() const
{
    std::vector<std::unique_ptr<Checker>> checkers;
    checkers.reserve(factories_.size());
    for (const CheckerFactory factory : factories_)
        checkers.push_back(factory());
    std::sort(checkers.begin(), checkers.end(),
              [](const std::unique_ptr<Checker> &a,
                 const std::unique_ptr<Checker> &b) {
                  return std::strcmp(a->id(), b->id()) < 0;
              });
    return checkers;
}

void
registerBuiltinCheckers()
{
    CheckerRegistry &registry = CheckerRegistry::instance();
    // Explicit factory references (no static self-registration): a
    // static-library link cannot drop a checker's object file without
    // breaking this translation unit.
    registry.add(&makeNpdChecker);
    registry.add(&makeRsaChecker);
    registry.add(&makeUafChecker);
    registry.add(&makeCmiChecker);
    registry.add(&makeBofChecker);
    registry.add(&makeWidthTruncChecker);
    registry.add(&makeSignConfusionChecker);
    registry.add(&makeUninitStackChecker);
    registry.add(&makeDoubleFreeChecker);
    registry.add(&makeIcallMismatchChecker);
    registry.add(&makeAddrLeakChecker);
    registry.add(&makeTaintDerefChecker);
    registry.add(&makeFormatStringChecker);
}

} // namespace lint
} // namespace manta
