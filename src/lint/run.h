/**
 * @file
 * runLint: the one-call entry point of the lint framework.
 *
 * Registers the built-in checkers, prunes the DDG exactly like the
 * evaluation harness's detectBugs (when a type source is given),
 * builds a LintContext, runs every enabled checker in id order with
 * per-checker wall-clock accounting, routes findings through the
 * DiagnosticEngine (dedup, enable/disable, baseline suppression) and
 * returns the deterministically sorted result. The DDG pruning is
 * restored before returning.
 */
#ifndef MANTA_LINT_RUN_H
#define MANTA_LINT_RUN_H

#include "lint/context.h"
#include "lint/engine.h"
#include "lint/sarif.h"

namespace manta {
namespace lint {

/** Knobs of one runLint invocation. */
struct LintOptions
{
    /** Slice budget per source (DetectorOptions::maxVisited). */
    std::size_t maxVisited = 100000;
    /** Keep only these checker ids (empty = all). */
    std::vector<std::string> enabled;
    /** Drop these checker ids. */
    std::vector<std::string> disabled;
    /** Baseline-suppression file contents ("" = none). */
    std::string baselineText;
    /**
     * Taint-ablation override: -1 honors MANTA_TAINT_NOTYPE, 0 forces
     * the type gate on, 1 forces it off. The campaign pins its
     * oracle-typed reference run to 0 so the ablation's extra flows
     * surface as precision loss instead of shifting the reference.
     */
    int taintNoTypeOverride = -1;
};

/** Per-checker outcome of one run. */
struct CheckerStats
{
    std::string id;
    std::size_t diagnostics = 0;         ///< Findings that survived.
    std::size_t baselineSuppressed = 0;  ///< Dropped by the baseline.
    double seconds = 0.0;                ///< Wall-clock in run().
};

/** Everything one runLint invocation produced. */
struct LintResult
{
    std::vector<Diagnostic> diagnostics;   ///< Sorted (diagnosticLess).
    std::vector<CheckerStats> perChecker;  ///< In checker-id order.
    double seconds = 0.0;                  ///< Total lint wall-clock.

    /** Rule metadata for every registered checker (SARIF driver.rules). */
    std::vector<SarifRule> rules;
};

/**
 * Run every enabled checker over one analyzed module.
 *
 * @param analyzer  Analyzer for the module (DDG unpruned on entry).
 * @param inference Type source; null = no-type mode (the ablation).
 * @param truth     Frontend ground truth; null for stripped input.
 *
 * When @p inference is non-null its profile().lintSeconds is credited
 * with the total lint wall-clock.
 */
LintResult runLint(MantaAnalyzer &analyzer,
                   const InferenceResult *inference,
                   const GroundTruth *truth, const LintOptions &options);

} // namespace lint
} // namespace manta

#endif // MANTA_LINT_RUN_H
