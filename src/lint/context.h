/**
 * @file
 * LintContext: the shared read-only world every checker runs over.
 *
 * One context wraps one analyzed module: the MIR itself, the
 * (optional) inference result, the points-to/DDG/CFG substrates, the
 * indirect-call target sets (bound into a shared DataSlicer), and the
 * optional frontend ground truth (origin tags, slot-recycling map).
 * Per-function CFGs and dominator trees are built lazily and cached.
 *
 * Threading: a LintContext is NOT thread-safe (the lazy caches are
 * unsynchronized). The parallel lint driver builds one context per
 * project inside each worker, which is also what keeps runs
 * deterministic under MANTA_JOBS (see docs/LINT.md).
 */
#ifndef MANTA_LINT_CONTEXT_H
#define MANTA_LINT_CONTEXT_H

#include <memory>
#include <unordered_map>

#include "analysis/dominators.h"
#include "clients/checkers.h"
#include "frontend/groundtruth.h"
#include "lint/diagnostic.h"
#include "taint/taint.h"

namespace manta {
namespace lint {

/** Context-level knobs (mirrors DetectorOptions). */
struct ContextOptions
{
    /** Type assistance: pruning, icall filtering, numeric barriers. */
    bool useTypes = true;
    /** Slice budget per source (DataSlicer::Options::maxVisited). */
    std::size_t maxVisited = 100000;
    /**
     * Ablation flip for the taint family (MANTA_TAINT_NOTYPE=1): the
     * taint engine still propagates, but runs without the numeric
     * barrier and endpoint gate, so addr-leak / taint-deref /
     * format-string lose their type-based FP suppression while every
     * other checker keeps useTypes.
     */
    bool taintNoType = taint::defaultTaintNoType();
};

/** The read-only world a checker inspects. */
class LintContext
{
  public:
    /**
     * @param analyzer  Analyzer whose DDG has (optionally) been
     *                  pruned, exactly as for BugDetector.
     * @param inference Type source; may be null only when
     *                  options.useTypes is false.
     * @param truth     Frontend ground truth; null for stripped input.
     */
    LintContext(MantaAnalyzer &analyzer, const InferenceResult *inference,
                const GroundTruth *truth, ContextOptions options = {});

    LintContext(const LintContext &) = delete;
    LintContext &operator=(const LintContext &) = delete;

    /// @name The analyzed world.
    /// @{
    Module &module() const { return module_; }
    MantaAnalyzer &analyzer() const { return analyzer_; }
    const InferenceResult *inference() const { return inference_; }
    const GroundTruth *truth() const { return truth_; }
    bool useTypes() const { return options_.useTypes; }
    const ContextOptions &options() const { return options_; }
    const PointsTo &pts() const { return analyzer_.pts(); }
    const MemObjects &memObjects() const { return analyzer_.memObjects(); }
    const Ddg &ddg() const { return analyzer_.ddg(); }
    /// @}

    /// @name Shared traversal machinery.
    /// @{
    /** Slicer with indirect-call edges already bound. */
    const DataSlicer &slicer() const { return slicer_; }
    const OrderOracle &order() const { return order_; }
    const InstIndex &instIndex() const { return instIndex_; }
    /** Feasible icall targets (FullTypes with types, ArgCount without). */
    const IcallResult &icallTargets() const { return icallTargets_; }
    /** Per-function CFG (lazy, cached). */
    const Cfg &cfg(FuncId func) const;
    /** Per-function dominator tree (lazy, cached). */
    const Dominators &dominators(FuncId func) const;
    /**
     * The paper's BugDetector over this context's analyzer, with
     * matching options (lazy). The five paper adapters call through
     * it, which is what keeps Table 5 output bit-identical.
     */
    const BugDetector &paperDetector() const;
    /**
     * The interprocedural taint fixpoint over this context's analyzer
     * (lazy; shared by the addr-leak / taint-deref / format-string
     * checkers). Runs with the endpoint gate + barrier unless
     * useTypes is off or options().taintNoType flips the ablation.
     * The run's wall clock and flow counters are credited to the
     * inference profile (taintSeconds / taintFlows / taintSuppressed).
     */
    const taint::TaintResult &taint() const;
    /// @}

    /// @name Checker helpers.
    /// @{
    /** Slice options mirroring BugDetector::sliceOptions. */
    DataSlicer::Options sliceOptions(bool with_barrier) const;
    /** Inference commits to "numeric" for v (barrier predicate). */
    bool preciselyNumeric(ValueId v) const;
    /** Inference commits to "pointer" for v. */
    bool definitelyPtr(ValueId v) const;
    /** Function owning an instruction. */
    FuncId funcOf(InstId inst) const;
    /** Name of the function owning an instruction. */
    std::string funcNameOf(InstId inst) const;
    /** Build a diagnostic location for an instruction. */
    DiagLocation loc(InstId inst, std::string role) const;
    /** Call sites of externals with the given role, in id order. */
    std::vector<InstId> externalCallsWithRole(ExternRole role) const;
    /**
     * Does instruction `a` dominate instruction `b`? False when they
     * live in different functions. Same-block: position order.
     */
    bool dominatesInst(InstId a, InstId b) const;
    /**
     * Stable suppression fingerprint `checker@func#block:pos` for a
     * diagnostic anchored at `primary` (baseline files store these).
     * The block index is function-local, so fingerprints survive
     * re-analysis and unrelated module growth.
     */
    std::string fingerprint(const std::string &checker,
                            InstId primary) const;
    /// @}

  private:
    MantaAnalyzer &analyzer_;
    Module &module_;
    const InferenceResult *inference_;
    const GroundTruth *truth_;
    ContextOptions options_;
    DataSlicer slicer_;
    OrderOracle order_;
    InstIndex instIndex_;
    IcallResult icallTargets_;
    // Lazy, unsynchronized caches (single-threaded use; see header).
    mutable std::unordered_map<std::uint32_t, std::unique_ptr<Cfg>> cfgs_;
    mutable std::unordered_map<std::uint32_t, std::unique_ptr<Dominators>>
        doms_;
    mutable std::unique_ptr<BugDetector> detector_;
    mutable std::unique_ptr<taint::TaintResult> taint_;
};

} // namespace lint
} // namespace manta

#endif // MANTA_LINT_CONTEXT_H
