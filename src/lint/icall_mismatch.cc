/**
 * @file
 * icall-mismatch: an indirect call no address-taken function can
 * satisfy.
 *
 * With type assistance the checker reads the context's FullTypes
 * target sets (the paper's icall pruning, Section 5.2): an empty set
 * means every candidate was contradicted by arity, width, or subtype
 * compatibility - the call either crashes or was mis-lifted. Without
 * types only exact arity matching is available, so a call whose
 * argument count matches no address-taken signature is flagged; type
 * assistance suppresses the arity-only false positives where a
 * candidate legally ignores surplus arguments (the calling-convention
 * rule FullTypes models with its >=-arity check).
 */
#include "lint/checker.h"
#include "lint/context.h"

namespace manta {
namespace lint {

namespace {

class IcallMismatchChecker final : public Checker
{
  public:
    const char *id() const override { return "icall-mismatch"; }
    Severity severity() const override { return Severity::Warning; }
    const char *
    description() const override
    {
        return "indirect call has no feasible address-taken target";
    }

    std::vector<Diagnostic>
    run(const LintContext &ctx) const override
    {
        std::vector<Diagnostic> out;
        Module &module = ctx.module();
        const std::vector<FuncId> candidates = module.addressTakenFuncs();

        for (std::size_t i = 0; i < module.numInsts(); ++i) {
            const InstId iid(static_cast<InstId::RawType>(i));
            const Instruction &inst = module.inst(iid);
            if (inst.op != Opcode::ICall)
                continue;
            const std::size_t num_args = inst.numOperands() - 1;

            std::size_t feasible = 0;
            std::string evidence;
            if (ctx.useTypes()) {
                const auto it = ctx.icallTargets().targets.find(iid);
                feasible = (it == ctx.icallTargets().targets.end())
                               ? 0
                               : it->second.size();
                evidence = "typed pruning left " +
                           std::to_string(feasible) + " of " +
                           std::to_string(candidates.size()) +
                           " address-taken candidates";
            } else {
                for (const FuncId fid : candidates) {
                    if (module.func(fid).params.size() == num_args)
                        ++feasible;
                }
                evidence = "no-type mode: " + std::to_string(feasible) +
                           " of " + std::to_string(candidates.size()) +
                           " address-taken candidates take exactly " +
                           std::to_string(num_args) + " argument(s)";
            }
            if (feasible > 0)
                continue;

            Diagnostic d;
            d.checker = id();
            d.severity = severity();
            d.primary = ctx.loc(iid, "indirect call");
            d.message = "indirect call with " + std::to_string(num_args) +
                        " argument(s) has no feasible address-taken "
                        "target; the target expression is likely "
                        "corrupted or mis-lifted";
            d.evidence = std::move(evidence);
            d.srcTag = inst.srcTag;
            out.push_back(std::move(d));
        }
        return out;
    }
};

} // namespace

std::unique_ptr<Checker>
makeIcallMismatchChecker()
{
    return std::make_unique<IcallMismatchChecker>();
}

} // namespace lint
} // namespace manta
