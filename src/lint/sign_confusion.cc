/**
 * @file
 * sign-confusion: an ordered comparison whose verdict flips under a
 * signedness misread of one operand.
 *
 * Two patterns:
 *  - sext-vs-out-of-range constant (reported in both modes): one
 *    operand was sign-extended from w bits and the other is a
 *    constant outside the signed w-bit range, so the comparison's
 *    verdict hinges on the extension's sign semantics.
 *  - negative-constant order compare (no-type mode only): ordering a
 *    64-bit value against a negative constant is suspicious when
 *    nothing is known about the value; type assistance suppresses the
 *    finding when inference commits the operand to a pointer (the
 *    ptr-vs-error-constant idiom of Section 6.4) or to a numeric
 *    type (an honest signed comparison).
 */
#include "lint/checker.h"
#include "lint/context.h"

namespace manta {
namespace lint {

namespace {

class SignConfusionChecker final : public Checker
{
  public:
    const char *id() const override { return "sign-confusion"; }
    Severity severity() const override { return Severity::Warning; }
    const char *
    description() const override
    {
        return "ordered comparison depends on a signedness assumption";
    }

    std::vector<Diagnostic>
    run(const LintContext &ctx) const override
    {
        std::vector<Diagnostic> out;
        Module &module = ctx.module();

        for (std::size_t i = 0; i < module.numInsts(); ++i) {
            const InstId iid(static_cast<InstId::RawType>(i));
            const Instruction &inst = module.inst(iid);
            if (inst.op != Opcode::ICmp || !isOrdered(inst.pred) ||
                    inst.numOperands() != 2) {
                continue;
            }
            const std::span<const ValueId> ops = module.operands(inst);
            checkOperandPair(ctx, iid, ops[0], ops[1], out);
            checkOperandPair(ctx, iid, ops[1], ops[0], out);
        }
        return out;
    }

  private:
    static bool
    isOrdered(CmpPred pred)
    {
        return pred == CmpPred::LT || pred == CmpPred::LE ||
               pred == CmpPred::GT || pred == CmpPred::GE;
    }

    static bool
    outsideSignedRange(std::int64_t value, int width_bits)
    {
        const std::int64_t hi =
            (std::int64_t(1) << (width_bits - 1)) - 1;
        const std::int64_t lo = -hi - 1;
        return value < lo || value > hi;
    }

    void
    checkOperandPair(const LintContext &ctx, InstId site, ValueId lhs,
                     ValueId rhs, std::vector<Diagnostic> &out) const
    {
        Module &module = ctx.module();
        const Value &rv = module.value(rhs);
        if (rv.kind != ValueKind::Constant)
            return;
        const Instruction &cmp = module.inst(site);

        // Pattern 1: sign-extended operand ordered against a constant
        // outside the source width's signed range.
        const Value &lv = module.value(lhs);
        if (lv.kind == ValueKind::InstResult) {
            const Instruction &def = module.inst(lv.inst);
            if (def.op == Opcode::SExt) {
                const int w = module.value(module.operand(def, 0)).width;
                if (w < 64 && outsideSignedRange(rv.constValue, w)) {
                    Diagnostic d;
                    d.checker = id();
                    d.severity = severity();
                    d.primary = ctx.loc(site, "comparison");
                    d.related.push_back(
                        ctx.loc(lv.inst, "sign extension"));
                    d.message =
                        "ordered comparison of a value sign-extended "
                        "from " +
                        std::to_string(w) + " bits against constant " +
                        std::to_string(rv.constValue) +
                        ", which no signed " + std::to_string(w) +
                        "-bit value can reach; compare before widening "
                        "or use an explicit zero-extension";
                    d.evidence = "constant outside [-2^" +
                                 std::to_string(w - 1) + ", 2^" +
                                 std::to_string(w - 1) + "-1]";
                    d.srcTag = cmp.srcTag;
                    out.push_back(std::move(d));
                }
                return;  // The sext pattern owns this operand pair.
            }
        }

        // Pattern 2: ordering a 64-bit value against a negative
        // constant with no type knowledge.
        if (rv.constValue >= 0 || module.value(lhs).width != 64)
            return;
        if (ctx.useTypes() &&
                (ctx.definitelyPtr(lhs) || ctx.preciselyNumeric(lhs))) {
            // Typed: a pointer ordered against -1 is the error-
            // constant idiom; a committed numeric is an honest signed
            // comparison. Either way, not a signedness confusion.
            return;
        }
        Diagnostic d;
        d.checker = id();
        d.severity = severity();
        d.primary = ctx.loc(site, "comparison");
        d.message = "ordered comparison against negative constant " +
                    std::to_string(rv.constValue) +
                    " on a value of unknown signedness; the branch "
                    "flips if the value is unsigned or a pointer";
        d.evidence = ctx.useTypes()
                         ? "inference left the operand's type open"
                         : "no-type mode: operand signedness unknown";
        d.srcTag = cmp.srcTag;
        out.push_back(std::move(d));
    }
};

} // namespace

std::unique_ptr<Checker>
makeSignConfusionChecker()
{
    return std::make_unique<SignConfusionChecker>();
}

} // namespace lint
} // namespace manta
