/**
 * @file
 * double-free: two free() calls release the same allocation with no
 * intervening reassignment.
 *
 * The checker pairs up free-role call sites that may execute in order
 * (OrderOracle). With type assistance the pair must be a *must*
 * alias - both freed pointers resolve to the same single heap or
 * external location - and a store that re-points the slot the second
 * pointer was loaded from suppresses the report (the free/realloc/
 * free idiom). Without types any may-overlap between the two freed
 * location sets is reported, which is the checker's documented
 * no-type false-positive class.
 */
#include "lint/checker.h"
#include "lint/context.h"

namespace manta {
namespace lint {

namespace {

class DoubleFreeChecker final : public Checker
{
  public:
    const char *id() const override { return "double-free"; }
    Severity severity() const override { return Severity::Error; }
    const char *
    description() const override
    {
        return "the same allocation is released twice";
    }

    std::vector<Diagnostic>
    run(const LintContext &ctx) const override
    {
        std::vector<Diagnostic> out;
        Module &module = ctx.module();
        const std::vector<InstId> frees =
            ctx.externalCallsWithRole(ExternRole::Free);

        for (const InstId first : frees) {
            for (const InstId second : frees) {
                if (first == second)
                    continue;
                if (!ctx.order().mayPrecede(first, second))
                    continue;
                // When both orders are feasible (e.g. different
                // functions), keep only the id-ordered pair so each
                // double release is reported once.
                if (ctx.order().mayPrecede(second, first) &&
                        second.raw() < first.raw()) {
                    continue;
                }
                checkPair(ctx, first, second, out);
            }
        }
        return out;
    }

  private:
    void
    checkPair(const LintContext &ctx, InstId first, InstId second,
              std::vector<Diagnostic> &out) const
    {
        Module &module = ctx.module();
        const Instruction &fi = module.inst(first);
        const Instruction &si = module.inst(second);
        if (fi.numOperands() == 0 || si.numOperands() == 0)
            return;
        const ValueId freed_a = module.operand(fi, 0);
        const ValueId freed_b = module.operand(si, 0);
        const LocSet &locs_a = ctx.pts().locs(freed_a);
        const LocSet &locs_b = ctx.pts().locs(freed_b);
        if (locs_a.size() == 0 || locs_b.size() == 0)
            return;

        std::string evidence;
        if (ctx.useTypes()) {
            // Must-alias: both frees release exactly one location and
            // it is the same heap/external allocation.
            if (locs_a.size() != 1 || locs_b.size() != 1 ||
                    !(locs_a == locs_b)) {
                return;
            }
            const Loc shared = *locs_a.begin();
            const MemObject &obj = ctx.memObjects().object(shared.obj);
            if (obj.kind != ObjKind::Heap && obj.kind != ObjKind::External)
                return;
            if (ctx.preciselyNumeric(freed_a) ||
                    ctx.preciselyNumeric(freed_b)) {
                return;  // Inference says this is not a pointer at all.
            }
            if (reassignedBetween(ctx, first, second, freed_b, shared))
                return;
            evidence = "both frees must-alias the same allocation and "
                       "no intervening store re-points the slot";
        } else {
            bool overlap = false;
            for (const Loc &a : locs_a) {
                for (const Loc &b : locs_b) {
                    if (Loc::mayOverlap(a, b)) {
                        overlap = true;
                        break;
                    }
                }
                if (overlap)
                    break;
            }
            if (!overlap)
                return;
            evidence = "no-type mode: the freed pointers may alias";
        }

        Diagnostic d;
        d.checker = id();
        d.severity = severity();
        d.primary = ctx.loc(second, "second free");
        d.related.push_back(ctx.loc(first, "first free"));
        d.message = "allocation is released twice; clear the pointer "
                    "at the first free or guard the second";
        d.evidence = std::move(evidence);
        d.srcTag = si.srcTag;
        out.push_back(std::move(d));
    }

    /**
     * The free/realloc/free idiom: when the second freed value is a
     * Load from some slot, a store into that slot which may execute
     * between the two frees and whose payload no longer points at the
     * shared allocation re-points the slot, so the second free
     * releases a different object.
     */
    static bool
    reassignedBetween(const LintContext &ctx, InstId first, InstId second,
                      ValueId freed_b, const Loc &shared)
    {
        Module &module = ctx.module();
        const Value &v = module.value(freed_b);
        if (v.kind != ValueKind::InstResult)
            return false;
        const Instruction &def = module.inst(v.inst);
        if (def.op != Opcode::Load)
            return false;
        const LocSet &slot = ctx.pts().locs(module.operand(def, 0));

        for (std::size_t i = 0; i < module.numInsts(); ++i) {
            const InstId iid(static_cast<InstId::RawType>(i));
            const Instruction &inst = module.inst(iid);
            if (inst.op != Opcode::Store || iid == first || iid == second)
                continue;
            if (!ctx.order().mayPrecede(first, iid) ||
                    !ctx.order().mayPrecede(iid, second)) {
                continue;
            }
            bool writes_slot = false;
            for (const Loc &addr :
                 ctx.pts().locs(module.operand(inst, 0))) {
                for (const Loc &s : slot) {
                    if (Loc::mayOverlap(addr, s)) {
                        writes_slot = true;
                        break;
                    }
                }
                if (writes_slot)
                    break;
            }
            if (!writes_slot)
                continue;
            bool payload_still_shared = false;
            for (const Loc &p :
                 ctx.pts().locs(module.operand(inst, 1))) {
                if (Loc::mayOverlap(p, shared)) {
                    payload_still_shared = true;
                    break;
                }
            }
            if (!payload_still_shared)
                return true;
        }
        return false;
    }
};

} // namespace

std::unique_ptr<Checker>
makeDoubleFreeChecker()
{
    return std::make_unique<DoubleFreeChecker>();
}

} // namespace lint
} // namespace manta
