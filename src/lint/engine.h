/**
 * @file
 * DiagnosticEngine: the sink every checker's findings flow through.
 *
 * The engine deduplicates (a checker may reach the same finding along
 * several slice paths), filters by per-checker enable/disable state
 * and by a baseline-suppression file (lines of fingerprints, the
 * classic "adopt a linter on a legacy codebase" workflow), and hands
 * back diagnostics in the framework's deterministic order. It also
 * owns the human-readable text rendering; SARIF serialization lives
 * in lint/sarif.h.
 */
#ifndef MANTA_LINT_ENGINE_H
#define MANTA_LINT_ENGINE_H

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/diagnostic.h"

namespace manta {
namespace lint {

/** Collects, filters and orders diagnostics. */
class DiagnosticEngine
{
  public:
    /// @name Per-checker enable/disable.
    /// @{
    /** Drop every diagnostic of this checker. */
    void disable(const std::string &checker);
    /** Keep only these checkers (empty list = keep all). */
    void enableOnly(const std::vector<std::string> &checkers);
    /** Is the checker currently enabled? */
    bool checkerEnabled(const std::string &checker) const;
    /// @}

    /**
     * Load a baseline-suppression file: one fingerprint per line
     * (LintContext::fingerprint format); blank lines and '#' comments
     * are ignored. Reported diagnostics whose fingerprint appears are
     * counted as suppressed and dropped.
     */
    void loadBaseline(const std::string &text);

    /** Report one finding (deduplicated; may be filtered). */
    void report(Diagnostic diagnostic);

    /** Diagnostics suppressed by the baseline so far. */
    std::size_t baselineSuppressed() const { return baseline_suppressed_; }

    /** Baseline suppressions attributed to one checker. */
    std::size_t baselineSuppressedFor(const std::string &checker) const;

    /** Surviving diagnostics, deterministically sorted; engine resets. */
    std::vector<Diagnostic> take();

    /** Render diagnostics as stable human-readable text. */
    static std::string renderText(const std::vector<Diagnostic> &diags);

    /** A baseline file suppressing exactly these diagnostics. */
    static std::string writeBaseline(const std::vector<Diagnostic> &diags);

  private:
    std::vector<Diagnostic> diagnostics_;
    std::set<std::string> dedup_;
    std::set<std::string> disabled_;
    std::set<std::string> enabled_only_;  ///< Empty = all enabled.
    std::set<std::string> baseline_;
    std::map<std::string, std::size_t> baseline_by_checker_;
    std::size_t baseline_suppressed_ = 0;
};

} // namespace lint
} // namespace manta

#endif // MANTA_LINT_ENGINE_H
