#include "lint/diagnostic.h"

#include <algorithm>

namespace manta {
namespace lint {

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

const char *
severityLevel(Severity severity)
{
    // SARIF 2.1.0 levels happen to use the same spelling.
    return severityName(severity);
}

bool
diagnosticLess(const Diagnostic &a, const Diagnostic &b)
{
    if (a.checker != b.checker)
        return a.checker < b.checker;
    if (a.primary.inst != b.primary.inst)
        return a.primary.inst < b.primary.inst;
    if (a.message != b.message)
        return a.message < b.message;
    const std::size_t n = std::min(a.related.size(), b.related.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (a.related[i].inst != b.related[i].inst)
            return a.related[i].inst < b.related[i].inst;
    }
    return a.related.size() < b.related.size();
}

} // namespace lint
} // namespace manta
