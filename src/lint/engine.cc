#include "lint/engine.h"

#include <algorithm>
#include <sstream>

namespace manta {
namespace lint {

namespace {

/** Identity of a finding for dedup: everything but severity/evidence. */
std::string
dedupKey(const Diagnostic &d)
{
    std::string key = d.checker;
    key += '\0';
    key += std::to_string(d.primary.inst.valid() ? d.primary.inst.raw()
                                                 : ~0u);
    for (const DiagLocation &rel : d.related) {
        key += '\0';
        key += std::to_string(rel.inst.valid() ? rel.inst.raw() : ~0u);
    }
    key += '\0';
    key += d.message;
    return key;
}

} // namespace

void
DiagnosticEngine::disable(const std::string &checker)
{
    disabled_.insert(checker);
}

void
DiagnosticEngine::enableOnly(const std::vector<std::string> &checkers)
{
    enabled_only_.clear();
    enabled_only_.insert(checkers.begin(), checkers.end());
}

bool
DiagnosticEngine::checkerEnabled(const std::string &checker) const
{
    if (disabled_.count(checker))
        return false;
    return enabled_only_.empty() || enabled_only_.count(checker) != 0;
}

void
DiagnosticEngine::loadBaseline(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        // Trim trailing carriage returns / spaces.
        while (!line.empty() &&
               (line.back() == '\r' || line.back() == ' '))
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        baseline_.insert(line);
    }
}

void
DiagnosticEngine::report(Diagnostic diagnostic)
{
    if (!checkerEnabled(diagnostic.checker))
        return;
    if (!dedup_.insert(dedupKey(diagnostic)).second)
        return;
    if (!diagnostic.fingerprint.empty() &&
            baseline_.count(diagnostic.fingerprint)) {
        ++baseline_suppressed_;
        ++baseline_by_checker_[diagnostic.checker];
        return;
    }
    diagnostics_.push_back(std::move(diagnostic));
}

std::size_t
DiagnosticEngine::baselineSuppressedFor(const std::string &checker) const
{
    const auto it = baseline_by_checker_.find(checker);
    return it == baseline_by_checker_.end() ? 0 : it->second;
}

std::vector<Diagnostic>
DiagnosticEngine::take()
{
    std::sort(diagnostics_.begin(), diagnostics_.end(), diagnosticLess);
    dedup_.clear();
    return std::move(diagnostics_);
}

std::string
DiagnosticEngine::renderText(const std::vector<Diagnostic> &diags)
{
    std::string out;
    for (const Diagnostic &d : diags) {
        out += severityName(d.severity);
        out += ": [";
        out += d.checker;
        out += "] @";
        out += d.primary.func;
        out += "/inst";
        out += std::to_string(d.primary.inst.valid()
                                  ? d.primary.inst.raw()
                                  : ~0u);
        if (!d.primary.role.empty()) {
            out += " (";
            out += d.primary.role;
            out += ")";
        }
        out += ": ";
        out += d.message;
        out += '\n';
        for (const DiagLocation &rel : d.related) {
            out += "    related: @";
            out += rel.func;
            out += "/inst";
            out += std::to_string(rel.inst.valid() ? rel.inst.raw() : ~0u);
            if (!rel.role.empty()) {
                out += " (";
                out += rel.role;
                out += ")";
            }
            out += '\n';
        }
        if (!d.evidence.empty()) {
            out += "    evidence: ";
            out += d.evidence;
            out += '\n';
        }
    }
    return out;
}

std::string
DiagnosticEngine::writeBaseline(const std::vector<Diagnostic> &diags)
{
    std::set<std::string> fingerprints;
    for (const Diagnostic &d : diags) {
        if (!d.fingerprint.empty())
            fingerprints.insert(d.fingerprint);
    }
    std::string out =
        "# manta-lint baseline: one fingerprint per suppressed finding\n";
    for (const std::string &fp : fingerprints) {
        out += fp;
        out += '\n';
    }
    return out;
}

} // namespace lint
} // namespace manta
