#include "lint/sarif.h"

#include <algorithm>
#include <cstdio>

namespace manta {
namespace lint {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** The 1-based pseudo-line an instruction maps to. */
std::uint32_t
pseudoLine(InstId inst)
{
    return inst.valid() ? inst.raw() + 1 : 1;
}

void
appendLocation(std::string &out, const std::string &indent,
               const std::string &artifact, const DiagLocation &loc)
{
    out += indent + "{\n";
    out += indent + "  \"physicalLocation\": {\n";
    out += indent + "    \"artifactLocation\": {\"uri\": \"" +
           jsonEscape(artifact) + "\"},\n";
    out += indent + "    \"region\": {\"startLine\": " +
           std::to_string(pseudoLine(loc.inst)) + "}\n";
    out += indent + "  },\n";
    out += indent + "  \"logicalLocations\": [\n";
    out += indent + "    {\"name\": \"" + jsonEscape(loc.func) +
           "\", \"kind\": \"function\"}\n";
    out += indent + "  ]";
    if (!loc.role.empty()) {
        out += ",\n" + indent + "  \"message\": {\"text\": \"" +
               jsonEscape(loc.role) + "\"}";
    }
    out += "\n" + indent + "}";
}

} // namespace

std::string
sarifLog(const std::vector<SarifRun> &runs,
         const std::vector<SarifRule> &rules)
{
    std::vector<SarifRule> sorted_rules = rules;
    std::sort(sorted_rules.begin(), sorted_rules.end(),
              [](const SarifRule &a, const SarifRule &b) {
                  return a.id < b.id;
              });

    std::string out;
    out += "{\n";
    out += "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
    out += "  \"version\": \"2.1.0\",\n";
    out += "  \"runs\": [\n";
    for (std::size_t r = 0; r < runs.size(); ++r) {
        const SarifRun &run = runs[r];
        out += "    {\n";
        out += "      \"tool\": {\n";
        out += "        \"driver\": {\n";
        out += "          \"name\": \"manta-lint\",\n";
        out += "          \"informationUri\": "
               "\"https://example.invalid/manta/docs/LINT.md\",\n";
        out += "          \"version\": \"1.0.0\",\n";
        out += "          \"rules\": [\n";
        for (std::size_t i = 0; i < sorted_rules.size(); ++i) {
            const SarifRule &rule = sorted_rules[i];
            out += "            {\n";
            out += "              \"id\": \"" + jsonEscape(rule.id) +
                   "\",\n";
            out += "              \"shortDescription\": {\"text\": \"" +
                   jsonEscape(rule.description) + "\"},\n";
            out += "              \"defaultConfiguration\": "
                   "{\"level\": \"" +
                   std::string(severityLevel(rule.severity)) + "\"}\n";
            out += "            }";
            out += (i + 1 < sorted_rules.size()) ? ",\n" : "\n";
        }
        out += "          ]\n";
        out += "        }\n";
        out += "      },\n";
        out += "      \"artifacts\": [\n";
        out += "        {\"location\": {\"uri\": \"" +
               jsonEscape(run.artifact) + "\"}}\n";
        out += "      ],\n";
        out += "      \"results\": [\n";
        for (std::size_t i = 0; i < run.diagnostics.size(); ++i) {
            const Diagnostic &d = run.diagnostics[i];
            out += "        {\n";
            out += "          \"ruleId\": \"" + jsonEscape(d.checker) +
                   "\",\n";
            out += "          \"level\": \"" +
                   std::string(severityLevel(d.severity)) + "\",\n";
            out += "          \"message\": {\"text\": \"" +
                   jsonEscape(d.message) + "\"},\n";
            out += "          \"locations\": [\n";
            appendLocation(out, "            ", run.artifact, d.primary);
            out += "\n          ]";
            if (!d.related.empty()) {
                out += ",\n          \"relatedLocations\": [\n";
                for (std::size_t j = 0; j < d.related.size(); ++j) {
                    appendLocation(out, "            ", run.artifact,
                                   d.related[j]);
                    out += (j + 1 < d.related.size()) ? ",\n" : "\n";
                }
                out += "          ]";
            }
            if (!d.fingerprint.empty()) {
                out += ",\n          \"partialFingerprints\": "
                       "{\"mantaLint/v1\": \"" +
                       jsonEscape(d.fingerprint) + "\"}";
            }
            if (!d.evidence.empty()) {
                out += ",\n          \"properties\": {\"evidence\": \"" +
                       jsonEscape(d.evidence) + "\"}";
            }
            out += "\n        }";
            out += (i + 1 < run.diagnostics.size()) ? ",\n" : "\n";
        }
        out += "      ]\n";
        out += "    }";
        out += (r + 1 < runs.size()) ? ",\n" : "\n";
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

} // namespace lint
} // namespace manta
