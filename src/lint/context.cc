#include "lint/context.h"

namespace manta {
namespace lint {

LintContext::LintContext(MantaAnalyzer &analyzer,
                         const InferenceResult *inference,
                         const GroundTruth *truth, ContextOptions options)
    : analyzer_(analyzer), module_(analyzer.module()), inference_(inference),
      truth_(truth), options_(options), slicer_(module_, analyzer.ddg()),
      order_(module_), instIndex_(module_)
{
    // Same indirect-call modeling as BugDetector: the type-based
    // feasible sets with types, every count-compatible address-taken
    // function without.
    const IcallAnalysis icall(module_,
                              options_.useTypes ? inference_ : nullptr);
    icallTargets_ = icall.run(options_.useTypes ? IcallDiscipline::FullTypes
                                                : IcallDiscipline::ArgCount);
    bindIcallTargets(slicer_, module_, icallTargets_);
}

const Cfg &
LintContext::cfg(FuncId func) const
{
    auto it = cfgs_.find(func.raw());
    if (it == cfgs_.end()) {
        it = cfgs_.emplace(func.raw(),
                           std::make_unique<Cfg>(module_, func)).first;
    }
    return *it->second;
}

const Dominators &
LintContext::dominators(FuncId func) const
{
    auto it = doms_.find(func.raw());
    if (it == doms_.end()) {
        it = doms_.emplace(func.raw(),
                           std::make_unique<Dominators>(module_, func))
                 .first;
    }
    return *it->second;
}

const BugDetector &
LintContext::paperDetector() const
{
    if (!detector_) {
        DetectorOptions opts;
        opts.useTypes = options_.useTypes;
        opts.maxVisited = options_.maxVisited;
        detector_ = std::make_unique<BugDetector>(
            analyzer_, options_.useTypes ? inference_ : nullptr, opts);
    }
    return *detector_;
}

const taint::TaintResult &
LintContext::taint() const
{
    if (!taint_) {
        taint::TaintOptions opts = taint::TaintOptions::fromEnv();
        opts.useTypes = options_.useTypes && !options_.taintNoType &&
                        inference_ != nullptr;
        taint_ = std::make_unique<taint::TaintResult>(
            taint::runTaint(analyzer_, inference_, opts));
        if (inference_ != nullptr) {
            // Same const_cast billing convention as runLint's
            // lintSeconds: the profile is the one mutable corner of an
            // otherwise read-only result.
            InferenceProfile &profile =
                const_cast<InferenceResult *>(inference_)->profile();
            profile.taintSeconds += taint_->stats.seconds;
            profile.taintFlows += taint_->stats.flows;
            profile.taintSuppressed += taint_->stats.suppressed;
        }
    }
    return *taint_;
}

DataSlicer::Options
LintContext::sliceOptions(bool with_barrier) const
{
    DataSlicer::Options opts;
    opts.respectPruning = options_.useTypes;
    opts.maxVisited = options_.maxVisited;
    if (with_barrier && options_.useTypes) {
        opts.barrier = [this](ValueId v) { return preciselyNumeric(v); };
    }
    return opts;
}

bool
LintContext::preciselyNumeric(ValueId v) const
{
    if (!options_.useTypes || inference_ == nullptr)
        return false;
    TypeTable &tt = inference_->types();
    const BoundPair bp = inference_->valueBounds(v);
    return tt.isNumeric(bp.upper) &&
           (tt.isNumeric(bp.lower) || bp.lower == tt.bottom());
}

bool
LintContext::definitelyPtr(ValueId v) const
{
    if (!options_.useTypes || inference_ == nullptr)
        return false;
    TypeTable &tt = inference_->types();
    const BoundPair bp = inference_->valueBounds(v);
    return tt.kind(bp.upper) == TypeKind::Ptr &&
           (tt.kind(bp.lower) == TypeKind::Ptr ||
            bp.lower == tt.bottom());
}

FuncId
LintContext::funcOf(InstId inst) const
{
    return module_.block(module_.inst(inst).parent).func;
}

std::string
LintContext::funcNameOf(InstId inst) const
{
    return std::string(module_.str(module_.func(funcOf(inst)).name));
}

DiagLocation
LintContext::loc(InstId inst, std::string role) const
{
    DiagLocation location;
    location.inst = inst;
    location.func = funcNameOf(inst);
    location.role = std::move(role);
    return location;
}

std::vector<InstId>
LintContext::externalCallsWithRole(ExternRole role) const
{
    std::vector<InstId> result;
    for (std::size_t i = 0; i < module_.numInsts(); ++i) {
        const InstId iid(static_cast<InstId::RawType>(i));
        const Instruction &inst = module_.inst(iid);
        if (inst.op == Opcode::Call && inst.external.valid() &&
                module_.external(inst.external).role == role) {
            result.push_back(iid);
        }
    }
    return result;
}

bool
LintContext::dominatesInst(InstId a, InstId b) const
{
    const Instruction &ia = module_.inst(a);
    const Instruction &ib = module_.inst(b);
    const FuncId fa = module_.block(ia.parent).func;
    if (fa != module_.block(ib.parent).func)
        return false;
    if (ia.parent == ib.parent) {
        return instIndex_.positionInBlock(a) <
               instIndex_.positionInBlock(b);
    }
    const Dominators &dom = dominators(fa);
    return dom.dominates(ia.parent, ib.parent);
}

std::string
LintContext::fingerprint(const std::string &checker, InstId primary) const
{
    const Instruction &inst = module_.inst(primary);
    const FuncId func = module_.block(inst.parent).func;
    const Function &fn = module_.func(func);
    std::size_t block_index = 0;
    for (std::size_t i = 0; i < fn.blocks.size(); ++i) {
        if (fn.blocks[i] == inst.parent) {
            block_index = i;
            break;
        }
    }
    return checker + "@" + std::string(module_.str(fn.name)) + "#" +
           std::to_string(block_index) +
           ":" + std::to_string(instIndex_.positionInBlock(primary));
}

} // namespace lint
} // namespace manta
