#include "lint/run.h"

#include <algorithm>

#include "clients/ddg_prune.h"
#include "lint/checker.h"
#include "support/timer.h"

namespace manta {
namespace lint {

LintResult
runLint(MantaAnalyzer &analyzer, const InferenceResult *inference,
        const GroundTruth *truth, const LintOptions &options)
{
    registerBuiltinCheckers();

    const Timer total;
    LintResult result;

    // Same world setup as the evaluation harness's detectBugs: Table 2
    // pruning while the checkers run, restored before returning.
    if (inference != nullptr)
        pruneInfeasibleDeps(analyzer.ddg(), *inference);

    {
        ContextOptions ctx_opts;
        ctx_opts.useTypes = inference != nullptr;
        ctx_opts.maxVisited = options.maxVisited;
        if (options.taintNoTypeOverride >= 0)
            ctx_opts.taintNoType = options.taintNoTypeOverride != 0;
        const LintContext ctx(analyzer, inference, truth, ctx_opts);

        DiagnosticEngine engine;
        engine.enableOnly(options.enabled);
        for (const std::string &checker : options.disabled)
            engine.disable(checker);
        if (!options.baselineText.empty())
            engine.loadBaseline(options.baselineText);

        for (const std::unique_ptr<Checker> &checker :
             CheckerRegistry::instance().createAll()) {
            CheckerStats stats;
            stats.id = checker->id();
            result.rules.push_back(SarifRule{checker->id(),
                                             checker->description(),
                                             checker->severity()});
            if (!engine.checkerEnabled(stats.id)) {
                result.perChecker.push_back(std::move(stats));
                continue;
            }
            const Timer per_checker;
            for (Diagnostic &d : checker->run(ctx)) {
                d.fingerprint = ctx.fingerprint(d.checker, d.primary.inst);
                engine.report(std::move(d));
            }
            stats.seconds = per_checker.seconds();
            result.perChecker.push_back(std::move(stats));
        }

        result.diagnostics = engine.take();
        for (CheckerStats &stats : result.perChecker) {
            stats.diagnostics = static_cast<std::size_t>(std::count_if(
                result.diagnostics.begin(), result.diagnostics.end(),
                [&](const Diagnostic &d) { return d.checker == stats.id; }));
            stats.baselineSuppressed =
                engine.baselineSuppressedFor(stats.id);
        }
    }

    analyzer.ddg().resetPruning();
    result.seconds = total.seconds();
    if (inference != nullptr) {
        // The profile is logically mutable accounting state even when
        // the inference result is otherwise read-only here.
        const_cast<InferenceResult *>(inference)->profile().lintSeconds +=
            result.seconds;
    }
    return result;
}

} // namespace lint
} // namespace manta
