/**
 * @file
 * The five paper checkers (Section 5.3, Table 5) as thin adapters
 * over clients/checkers.h.
 *
 * Each adapter calls the context's shared BugDetector (constructed
 * with exactly the options the evaluation harness uses) and converts
 * BugReports into Diagnostics one-for-one, so the Table 5 report
 * lists and metrics stay bit-identical to the pre-framework output —
 * asserted by LintPaperParity tests.
 */
#include "lint/checker.h"
#include "lint/context.h"

namespace manta {
namespace lint {

namespace {

struct PaperCheckerInfo
{
    CheckerKind kind;
    const char *id;
    Severity severity;
    const char *description;
    const char *fixit;
};

constexpr PaperCheckerInfo kPaperCheckers[] = {
    {CheckerKind::NPD, "npd", Severity::Error,
     "NULL constant flows to a dereference site",
     "guard the pointer against NULL before dereferencing"},
    {CheckerKind::RSA, "rsa", Severity::Warning,
     "stack address flows to its own function's return",
     "return heap- or caller-owned memory instead of a local slot"},
    {CheckerKind::UAF, "uaf", Severity::Error,
     "freed pointer is used afterwards",
     "clear the pointer at free() and re-check before reuse"},
    {CheckerKind::CMI, "cmi", Severity::Error,
     "attacker-controlled data reaches a command sink",
     "sanitize or allow-list the input before passing it to exec"},
    {CheckerKind::BOF, "bof", Severity::Error,
     "attacker-controlled data overflows a fixed-size buffer",
     "bound the copy by the destination's size"},
};

class PaperChecker final : public Checker
{
  public:
    explicit PaperChecker(const PaperCheckerInfo &info) : info_(info) {}

    const char *id() const override { return info_.id; }
    Severity severity() const override { return info_.severity; }
    const char *description() const override { return info_.description; }

    std::vector<Diagnostic>
    run(const LintContext &ctx) const override
    {
        std::vector<Diagnostic> out;
        for (const BugReport &report :
             ctx.paperDetector().run(info_.kind)) {
            Diagnostic d;
            d.checker = info_.id;
            d.severity = info_.severity;
            d.primary = ctx.loc(report.sinkSite, "sink");
            d.related.push_back(ctx.loc(report.sourceSite, "source"));
            d.message = report.message;
            d.message += "; ";
            d.message += info_.fixit;
            d.evidence = ctx.useTypes()
                             ? "type-assisted slice (pruned DDG, "
                               "typed icall targets, numeric barriers)"
                             : "untyped slice (no-type ablation)";
            d.srcTag = report.sinkTag;
            out.push_back(std::move(d));
        }
        return out;
    }

  private:
    PaperCheckerInfo info_;
};

std::unique_ptr<Checker>
makePaper(std::size_t index)
{
    return std::make_unique<PaperChecker>(kPaperCheckers[index]);
}

} // namespace

std::unique_ptr<Checker> makeNpdChecker() { return makePaper(0); }
std::unique_ptr<Checker> makeRsaChecker() { return makePaper(1); }
std::unique_ptr<Checker> makeUafChecker() { return makePaper(2); }
std::unique_ptr<Checker> makeCmiChecker() { return makePaper(3); }
std::unique_ptr<Checker> makeBofChecker() { return makePaper(4); }

} // namespace lint
} // namespace manta
