/**
 * @file
 * The lint benchmark campaign shared by bench/lint_driver and the
 * determinism tests: generate a corpus, run the full type-assisted
 * lint over every project in parallel, score the diagnostics against
 * the oracle-typed reference run, and render the three output
 * artifacts (human text, SARIF log, BENCH_lint.json).
 *
 * Determinism: per-project work runs on the ParallelHarness with
 * indexed result slots and all aggregation happens after the join in
 * index order, so every artifact is byte-identical across MANTA_JOBS
 * settings - except wall-clock fields, which `stable` mode zeroes
 * (what the byte-identity test and the CI smoke step use).
 */
#ifndef MANTA_LINT_CAMPAIGN_H
#define MANTA_LINT_CAMPAIGN_H

#include "lint/run.h"

namespace manta {
namespace lint {

/** Campaign knobs (bench/lint_driver flags map 1:1 onto these). */
struct LintCampaignOptions
{
    std::uint64_t seed = 1;      ///< First project's generator seed.
    int count = 20;              ///< Number of generated projects.
    std::size_t jobs = 0;        ///< Harness workers (0 = MANTA_JOBS).
    bool stable = false;         ///< Zero wall-clock fields in output.
    bool useTypes = true;        ///< false = no-type ablation lint.
    std::size_t maxVisited = 100000;
    /** Taint-ablation override for the tool run (LintOptions semantics:
     *  -1 honors MANTA_TAINT_NOTYPE, 0 forces the gate on, 1 off). */
    int taintNoTypeOverride = -1;
};

/** Aggregated per-checker campaign outcome. */
struct LintCheckerSummary
{
    std::string id;
    std::size_t diagnostics = 0;           ///< Tool findings.
    std::size_t referenceDiagnostics = 0;  ///< Oracle-typed findings.
    std::size_t matched = 0;               ///< In both sets.
    double seconds = 0.0;                  ///< Summed checker time.

    /** Share of tool findings the oracle reference confirms. */
    double
    precision() const
    {
        return diagnostics == 0 ? 1.0
                                : static_cast<double>(matched) /
                                      static_cast<double>(diagnostics);
    }

    /** Share of oracle findings the tool reproduces. */
    double
    recall() const
    {
        return referenceDiagnostics == 0
                   ? 1.0
                   : static_cast<double>(matched) /
                         static_cast<double>(referenceDiagnostics);
    }
};

/** Everything one campaign produced. */
struct LintCampaignResult
{
    std::string textReport;  ///< Per-project human-readable report.
    std::string sarif;       ///< One SARIF run per project.
    std::string json;        ///< BENCH_lint.json contents.
    std::size_t totalDiagnostics = 0;
    std::vector<LintCheckerSummary> checkers;  ///< In checker-id order.
};

/** Run the campaign (parallel, deterministic; see file comment). */
LintCampaignResult runLintCampaign(const LintCampaignOptions &options);

} // namespace lint
} // namespace manta

#endif // MANTA_LINT_CAMPAIGN_H
