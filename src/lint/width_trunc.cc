/**
 * @file
 * width-trunc: a value flows through a narrowing cast into an address
 * or size operand.
 *
 * For every Trunc, the checker forward-slices the narrowed value and
 * reports uses as a dereferenced address or as the size operand of a
 * bounded copy. Type assistance suppresses two false-positive
 * classes: (1) when inference commits the source to a numeric type
 * that already fits the destination width the cast loses nothing, and
 * (2) Table 2 pruning stops the slice from following offset->pointer
 * edges, so a truncated offset added to a base pointer no longer
 * "reaches" the dereference (the same barrier the paper checkers use).
 */
#include "lint/checker.h"
#include "lint/context.h"

namespace manta {
namespace lint {

namespace {

class WidthTruncChecker final : public Checker
{
  public:
    const char *id() const override { return "width-trunc"; }
    Severity severity() const override { return Severity::Warning; }
    const char *
    description() const override
    {
        return "truncated value flows into an address or size operand";
    }

    std::vector<Diagnostic>
    run(const LintContext &ctx) const override
    {
        std::vector<Diagnostic> out;
        Module &module = ctx.module();
        const auto opts = ctx.sliceOptions(/*with_barrier=*/false);

        for (std::size_t i = 0; i < module.numInsts(); ++i) {
            const InstId iid(static_cast<InstId::RawType>(i));
            const Instruction &inst = module.inst(iid);
            if (inst.op != Opcode::Trunc || !inst.result.valid())
                continue;
            const ValueId src = module.operand(inst, 0);
            const int src_width = module.value(src).width;
            const int dst_width = module.value(inst.result).width;
            if (src_width <= dst_width)
                continue;

            // Type-assisted suppression (1): the source is committed
            // to a numeric type that already fits the destination.
            if (ctx.useTypes() && ctx.inference() != nullptr) {
                TypeTable &tt = ctx.inference()->types();
                const BoundPair bp =
                    ctx.inference()->siteBounds(src, iid);
                const int committed = tt.widthBits(bp.upper);
                if (tt.isNumeric(bp.upper) && committed != 0 &&
                        committed <= dst_width) {
                    continue;
                }
            }

            for (const ValueId reached :
                 ctx.slicer().forwardSlice(inst.result, opts)) {
                for (const InstId user : ctx.instIndex().users(reached)) {
                    const Instruction &use = module.inst(user);
                    const std::span<const ValueId> use_ops =
                        module.operands(use);
                    const char *what = nullptr;
                    if ((use.op == Opcode::Load ||
                         use.op == Opcode::Store) &&
                            use_ops[0] == reached) {
                        what = "memory address";
                    } else if (use.op == Opcode::Call &&
                               use.external.valid() &&
                               module.external(use.external).role ==
                                   ExternRole::BoundedCopy &&
                               use_ops.size() >= 3 &&
                               use_ops[2] == reached) {
                        what = "copy size";
                    }
                    if (what == nullptr ||
                            !ctx.order().mayPrecede(iid, user)) {
                        continue;
                    }
                    Diagnostic d;
                    d.checker = id();
                    d.severity = severity();
                    d.primary = ctx.loc(user, "sink");
                    d.related.push_back(ctx.loc(iid, "narrowing cast"));
                    d.message = std::string("value truncated from ") +
                                std::to_string(src_width) + " to " +
                                std::to_string(dst_width) +
                                " bits is used as a " + what +
                                "; widen the intermediate or bound-check "
                                "before the cast";
                    d.evidence = truncEvidence(ctx, src, iid);
                    d.srcTag = use.srcTag;
                    out.push_back(std::move(d));
                }
            }
        }
        return out;
    }

  private:
    static std::string
    truncEvidence(const LintContext &ctx, ValueId src, InstId site)
    {
        if (!ctx.useTypes() || ctx.inference() == nullptr)
            return "no-type mode: every narrowing cast is suspect";
        TypeTable &tt = ctx.inference()->types();
        const BoundPair bp = ctx.inference()->siteBounds(src, site);
        return "inferred source type " + tt.toString(bp.upper) +
               " does not fit the destination width";
    }
};

} // namespace

std::unique_ptr<Checker>
makeWidthTruncChecker()
{
    return std::make_unique<WidthTruncChecker>();
}

} // namespace lint
} // namespace manta
