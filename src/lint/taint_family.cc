/**
 * @file
 * The taint checker family: addr-leak, taint-deref and format-string.
 *
 * All three report flows found by the shared interprocedural taint
 * fixpoint (src/taint, cached on the LintContext):
 *
 *  - addr-leak: a stack/heap address or uninitialized stack read
 *    reaches a print argument, the source operand of a copy routine,
 *    or an indirect-call argument (ASLR-defeating information leak).
 *  - taint-deref: attacker-controlled input reaches a load/store
 *    address or an indirect-call target.
 *  - format-string: attacker-controlled input reaches the format
 *    operand of print_str/sprintf/snprintf.
 *
 * Type inference suppresses flows whose endpoint interval commits to
 * numeric (they cannot carry an address) and stops propagation out of
 * numeric-committed values; MANTA_TAINT_NOTYPE=1 flips both off, the
 * ablation the campaign measures. Each diagnostic carries the witness
 * path as related "flow step" locations, which SARIF serializes as
 * relatedLocations (docs/LINT.md).
 */
#include <string>

#include "lint/checker.h"
#include "lint/context.h"
#include "taint/spec.h"

namespace manta {
namespace lint {

namespace {

/** Human-readable endpoint role per sink kind. */
const char *
sinkRole(taint::SinkKind sink)
{
    switch (sink) {
    case taint::SinkKind::PrintArg:
        return "print argument";
    case taint::SinkKind::CopySource:
        return "copy source";
    case taint::SinkKind::FormatArg:
        return "format operand";
    case taint::SinkKind::DerefAddr:
        return "dereferenced address";
    case taint::SinkKind::IcallTarget:
        return "indirect-call target";
    case taint::SinkKind::IcallArg:
        return "indirect-call argument";
    }
    return "sink";
}

/** Shared flow-to-diagnostic lowering for the family. */
std::vector<Diagnostic>
diagnoseFlows(const LintContext &ctx, const char *checker,
              Severity severity, const std::string &problem)
{
    std::vector<Diagnostic> out;
    const taint::TaintResult &taint = ctx.taint();
    for (const taint::TaintFlow &flow : taint.flows) {
        if (flow.suppressed || std::string(taint::flowChecker(flow)) !=
                                   checker)
            continue;
        Diagnostic diag;
        diag.checker = checker;
        diag.severity = severity;
        diag.primary = ctx.loc(flow.sinkInst, sinkRole(flow.sink));
        diag.srcTag = ctx.module().inst(flow.sinkInst).srcTag;
        // Witness path: source first, every mediating step after (the
        // sink itself is the primary location, so it is dropped here).
        for (std::size_t s = 0; s + 1 < flow.steps.size(); ++s) {
            const std::string role =
                s == 0 ? std::string("flow source (") +
                             taint::taintKindName(flow.kind) + ")"
                       : "flow step " + std::to_string(s);
            diag.related.push_back(ctx.loc(flow.steps[s], role));
        }
        diag.message = problem + " (operand " +
                       std::to_string(flow.argIndex) + " is tainted " +
                       taint::taintKindName(flow.kind) + ")";
        // Engine-independent evidence only: fact provenance and the
        // witness length, never inferred bounds (the unify/subtype
        // SARIF identity tests rely on this).
        diag.evidence = std::string("kind=") +
                        taint::taintKindName(flow.kind) + " source=inst" +
                        std::to_string(flow.sourceInst.raw()) + " sink=" +
                        taint::sinkKindName(flow.sink) + " steps=" +
                        std::to_string(flow.steps.size());
        out.push_back(std::move(diag));
    }
    return out;
}

class AddrLeakChecker final : public Checker
{
  public:
    const char *id() const override { return "addr-leak"; }
    Severity severity() const override { return Severity::Warning; }
    const char *
    description() const override
    {
        return "stack/heap address or uninitialized stack data reaches "
               "an output sink";
    }

    std::vector<Diagnostic>
    run(const LintContext &ctx) const override
    {
        return diagnoseFlows(ctx, id(), severity(),
                             "address-bearing value escapes to an "
                             "output sink");
    }
};

class TaintDerefChecker final : public Checker
{
  public:
    const char *id() const override { return "taint-deref"; }
    Severity severity() const override { return Severity::Error; }
    const char *
    description() const override
    {
        return "attacker-controlled value used as a memory address or "
               "indirect-call target";
    }

    std::vector<Diagnostic>
    run(const LintContext &ctx) const override
    {
        return diagnoseFlows(ctx, id(), severity(),
                             "attacker-controlled value dereferenced");
    }
};

class FormatStringChecker final : public Checker
{
  public:
    const char *id() const override { return "format-string"; }
    Severity severity() const override { return Severity::Error; }
    const char *
    description() const override
    {
        return "attacker-controlled string used as a format operand";
    }

    std::vector<Diagnostic>
    run(const LintContext &ctx) const override
    {
        return diagnoseFlows(ctx, id(), severity(),
                             "attacker-controlled format string");
    }
};

} // namespace

std::unique_ptr<Checker>
makeAddrLeakChecker()
{
    return std::make_unique<AddrLeakChecker>();
}

std::unique_ptr<Checker>
makeTaintDerefChecker()
{
    return std::make_unique<TaintDerefChecker>();
}

std::unique_ptr<Checker>
makeFormatStringChecker()
{
    return std::make_unique<FormatStringChecker>();
}

} // namespace lint
} // namespace manta
