/**
 * @file
 * SARIF 2.1.0 serialization of lint diagnostics.
 *
 * One `run` per analyzed artifact (a .mir module); each diagnostic
 * becomes a `result` with ruleId/level/message, a physical location
 * (the artifact URI plus the instruction id as a 1-based pseudo-line,
 * since MIR carries no source coordinates), logical locations naming
 * the owning function, relatedLocations for the supporting sites, a
 * partialFingerprints entry carrying the baseline fingerprint, and a
 * properties bag with the type evidence. The emitted subset is
 * validated in CI against data/sarif-2.1.0-subset.schema.json.
 */
#ifndef MANTA_LINT_SARIF_H
#define MANTA_LINT_SARIF_H

#include <string>
#include <vector>

#include "lint/diagnostic.h"

namespace manta {
namespace lint {

/** Rule metadata for the tool.driver.rules table. */
struct SarifRule
{
    std::string id;
    std::string description;
    Severity severity = Severity::Warning;
};

/** One SARIF run: an artifact name plus its diagnostics. */
struct SarifRun
{
    std::string artifact;               ///< e.g. "router_fw.mir".
    std::vector<Diagnostic> diagnostics;///< Already sorted by the engine.
};

/** Serialize runs into one SARIF 2.1.0 log (pretty-printed, stable). */
std::string sarifLog(const std::vector<SarifRun> &runs,
                     const std::vector<SarifRule> &rules);

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &text);

} // namespace lint
} // namespace manta

#endif // MANTA_LINT_SARIF_H
