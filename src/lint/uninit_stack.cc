/**
 * @file
 * uninit-stack: a load from a stack slot that no store dominates.
 *
 * For every Load whose address resolves to exactly one stack object
 * owned by the loading function, the checker looks for a store into
 * that object which dominates the load. Loads with no dominating
 * store are reported unless the slot's address escapes the function
 * (a callee or an aliasing store could initialize it).
 *
 * Type assistance adds two suppressions: (1) when the field-sensitive
 * unification committed the loaded field to a type, some reaching use
 * treated the slot as initialized data, so the "partially initialized
 * on a join path" pattern is downgraded; (2) when the frontend's
 * slot-recycling map says the alloca re-materializes a recycled slot
 * (GroundTruth::recycledSlotTags), a store anywhere in the function
 * is accepted in place of a dominating one - the classic lifter
 * artifact where one physical slot carries two logical lifetimes.
 */
#include "lint/checker.h"
#include "lint/context.h"

namespace manta {
namespace lint {

namespace {

class UninitStackChecker final : public Checker
{
  public:
    const char *id() const override { return "uninit-stack"; }
    Severity severity() const override { return Severity::Warning; }
    const char *
    description() const override
    {
        return "stack slot is read before any dominating store";
    }

    std::vector<Diagnostic>
    run(const LintContext &ctx) const override
    {
        std::vector<Diagnostic> out;
        Module &module = ctx.module();

        for (std::size_t i = 0; i < module.numInsts(); ++i) {
            const InstId iid(static_cast<InstId::RawType>(i));
            const Instruction &inst = module.inst(iid);
            if (inst.op != Opcode::Load)
                continue;
            const LocSet &addr = ctx.pts().locs(module.operand(inst, 0));
            if (addr.size() != 1)
                continue;  // Aliased or unresolved address: stay quiet.
            const Loc target = *addr.begin();
            const MemObject &obj = ctx.memObjects().object(target.obj);
            if (obj.kind != ObjKind::Stack ||
                    obj.func != ctx.funcOf(iid)) {
                continue;
            }

            bool store_dominates = false;
            bool store_anywhere = false;
            for (const InstId store : storesInto(ctx, target)) {
                store_anywhere = true;
                if (ctx.dominatesInst(store, iid)) {
                    store_dominates = true;
                    break;
                }
            }
            if (store_dominates)
                continue;
            if (addressEscapes(ctx, target.obj))
                continue;

            if (ctx.useTypes()) {
                // Suppression (1): the field carries a committed type.
                if (store_anywhere && fieldCommitted(ctx, target))
                    continue;
                // Suppression (2): frontend-tagged recycled slot.
                if (store_anywhere && isRecycledSlot(ctx, obj))
                    continue;
            }

            Diagnostic d;
            d.checker = id();
            d.severity = severity();
            d.primary = ctx.loc(iid, "load");
            if (obj.site.valid())
                d.related.push_back(ctx.loc(obj.site, "stack slot"));
            d.message = store_anywhere
                            ? "stack slot is read on a path where no "
                              "store reaches; initialize the slot before "
                              "the branch"
                            : "stack slot is read but never written; "
                              "initialize it at the alloca";
            d.evidence = ctx.useTypes()
                             ? "field unification left the slot "
                               "uncommitted and no store dominates the "
                               "load"
                             : "no-type mode: no store dominates the load";
            d.srcTag = inst.srcTag;
            out.push_back(std::move(d));
        }
        return out;
    }

  private:
    /** Stores whose address may write the target location. */
    static std::vector<InstId>
    storesInto(const LintContext &ctx, const Loc &target)
    {
        std::vector<InstId> stores;
        Module &module = ctx.module();
        for (std::size_t i = 0; i < module.numInsts(); ++i) {
            const InstId iid(static_cast<InstId::RawType>(i));
            const Instruction &inst = module.inst(iid);
            if (inst.op != Opcode::Store)
                continue;
            for (const Loc &loc :
                 ctx.pts().locs(module.operand(inst, 0))) {
                if (Loc::mayOverlap(loc, target)) {
                    stores.push_back(iid);
                    break;
                }
            }
        }
        return stores;
    }

    /**
     * True when the slot's address leaves the function: passed to any
     * call, stored as a payload, or returned. An escaped slot may be
     * initialized behind our back.
     */
    static bool
    addressEscapes(const LintContext &ctx, ObjectId obj)
    {
        Module &module = ctx.module();
        const auto points_at = [&](ValueId v) {
            for (const Loc &loc : ctx.pts().locs(v)) {
                if (loc.obj == obj)
                    return true;
            }
            return false;
        };
        for (std::size_t i = 0; i < module.numInsts(); ++i) {
            const InstId iid(static_cast<InstId::RawType>(i));
            const Instruction &inst = module.inst(iid);
            if (inst.isCall() || inst.op == Opcode::Ret) {
                for (const ValueId arg : module.operands(inst)) {
                    if (points_at(arg))
                        return true;
                }
            } else if (inst.op == Opcode::Store &&
                       points_at(module.operand(inst, 1))) {
                return true;
            }
        }
        return false;
    }

    /** Did field-sensitive unification commit the loaded field? */
    static bool
    fieldCommitted(const LintContext &ctx, const Loc &target)
    {
        if (ctx.inference() == nullptr)
            return false;
        TypeTable &tt = ctx.inference()->types();
        const std::int32_t offset = target.collapsed() ? 0 : target.offset;
        const BoundPair bp =
            ctx.inference()->fieldBounds(target.obj, offset);
        return bp.classify(tt) != TypeClass::Unknown;
    }

    /** Is the alloca one of the frontend's recycled slots? */
    static bool
    isRecycledSlot(const LintContext &ctx, const MemObject &obj)
    {
        if (ctx.truth() == nullptr || !obj.site.valid())
            return false;
        const std::uint32_t tag = ctx.module().inst(obj.site).srcTag;
        if (tag == 0)
            return false;
        for (const std::uint32_t recycled :
             ctx.truth()->recycledSlotTags) {
            if (recycled == tag)
                return true;
        }
        return false;
    }
};

} // namespace

std::unique_ptr<Checker>
makeUninitStackChecker()
{
    return std::make_unique<UninitStackChecker>();
}

} // namespace lint
} // namespace manta
