#include "lint/campaign.h"

#include <cstdio>
#include <map>
#include <set>

#include "eval/parallel.h"

namespace manta {
namespace lint {

namespace {

/** One project's lint outcome (indexed harness slot). */
struct ProjectOutcome
{
    std::string name;
    std::vector<Diagnostic> diags;      ///< Tool (hybrid inference).
    std::vector<Diagnostic> refDiags;   ///< Oracle-typed reference.
    std::vector<CheckerStats> perChecker;
    std::vector<SarifRule> rules;
};

/** The lint benchmark corpus: small, bug- and decoy-salted projects. */
std::vector<ProjectProfile>
campaignCorpus(const LintCampaignOptions &options)
{
    std::vector<ProjectProfile> profiles;
    profiles.reserve(static_cast<std::size_t>(options.count));
    for (int i = 0; i < options.count; ++i) {
        ProjectProfile profile;
        profile.name = "lint-" + std::to_string(options.seed +
                                                static_cast<std::uint64_t>(i));
        profile.kloc = 1;
        profile.config.seed = options.seed + static_cast<std::uint64_t>(i);
        profile.config.numFunctions = 10;
        profile.config.realBugRate = 0.05;
        profile.config.decoyRate = 0.05;
        profile.config.benignCopyRate = 0.03;
        profile.config.benignSystemRate = 0.03;
        profile.config.recycleRate = 0.15;
        profile.config.leakRate = 0.05;
        profile.config.leakDecoyRate = 0.05;
        profiles.push_back(std::move(profile));
    }
    return profiles;
}

/** Identity of a finding for tool-vs-reference matching. */
std::string
diagKey(const Diagnostic &d)
{
    std::string key = d.checker;
    key += '|';
    key += std::to_string(d.primary.inst.valid() ? d.primary.inst.raw()
                                                 : ~0u);
    for (const DiagLocation &loc : d.related) {
        key += '|';
        key += std::to_string(loc.inst.valid() ? loc.inst.raw() : ~0u);
    }
    return key;
}

std::string
fixed4(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4f", value);
    return buf;
}

} // namespace

LintCampaignResult
runLintCampaign(const LintCampaignOptions &options)
{
    const std::vector<ProjectProfile> profiles = campaignCorpus(options);
    ParallelHarness harness(options.jobs);

    LintOptions lint_opts;
    lint_opts.maxVisited = options.maxVisited;
    lint_opts.taintNoTypeOverride = options.taintNoTypeOverride;

    std::vector<ProjectOutcome> outcomes = harness.mapProjects(
        profiles, [&](PreparedProject &project, std::size_t) {
            ProjectOutcome outcome;
            outcome.name = project.name;

            InferenceResult inference = project.analyzer->infer();
            LintResult tool = runLint(*project.analyzer,
                                      options.useTypes ? &inference
                                                       : nullptr,
                                      &project.truth(), lint_opts);
            outcome.diags = std::move(tool.diagnostics);
            outcome.perChecker = std::move(tool.perChecker);
            outcome.rules = std::move(tool.rules);

            InferenceResult oracle = oracleInference(project);
            // The reference stays type-gated even under the
            // MANTA_TAINT_NOTYPE ablation: the ablation's extra taint
            // flows must score as precision loss, not move the bar.
            LintOptions ref_opts = lint_opts;
            ref_opts.taintNoTypeOverride = 0;
            LintResult reference = runLint(*project.analyzer, &oracle,
                                           &project.truth(), ref_opts);
            outcome.refDiags = std::move(reference.diagnostics);
            return outcome;
        });

    // Post-join reduction, in index order (the determinism contract).
    LintCampaignResult result;
    std::map<std::string, LintCheckerSummary> by_checker;
    std::vector<SarifRun> sarif_runs;
    std::vector<SarifRule> rules;

    for (const ProjectOutcome &outcome : outcomes) {
        if (rules.empty())
            rules = outcome.rules;

        std::set<std::string> ref_keys;
        for (const Diagnostic &d : outcome.refDiags)
            ref_keys.insert(diagKey(d));

        for (const CheckerStats &stats : outcome.perChecker) {
            LintCheckerSummary &summary = by_checker[stats.id];
            summary.id = stats.id;
            summary.seconds += stats.seconds;
        }
        for (const Diagnostic &d : outcome.diags) {
            LintCheckerSummary &summary = by_checker[d.checker];
            summary.id = d.checker;
            ++summary.diagnostics;
            if (ref_keys.count(diagKey(d)) != 0)
                ++summary.matched;
            ++result.totalDiagnostics;
        }
        for (const Diagnostic &d : outcome.refDiags)
            ++by_checker[d.checker].referenceDiagnostics;

        result.textReport += "== " + outcome.name + " (" +
                             std::to_string(outcome.diags.size()) +
                             " finding(s)) ==\n";
        result.textReport += DiagnosticEngine::renderText(outcome.diags);

        SarifRun run;
        run.artifact = outcome.name;
        run.diagnostics = outcome.diags;
        sarif_runs.push_back(std::move(run));
    }

    for (const auto &[id, summary] : by_checker)
        result.checkers.push_back(summary);

    result.sarif = sarifLog(sarif_runs, rules);

    // BENCH_lint.json.
    double total_seconds = 0.0;
    for (const LintCheckerSummary &summary : result.checkers)
        total_seconds += summary.seconds;
    std::string json;
    json += "{\n";
    json += "  \"bench\": \"lint\",\n";
    json += "  \"seed\": " + std::to_string(options.seed) + ",\n";
    json += "  \"projects\": " + std::to_string(options.count) + ",\n";
    json += std::string("  \"use_types\": ") +
            (options.useTypes ? "true" : "false") + ",\n";
    json += std::string("  \"stable\": ") +
            (options.stable ? "true" : "false") + ",\n";
    json += "  \"total_diagnostics\": " +
            std::to_string(result.totalDiagnostics) + ",\n";
    json += "  \"total_seconds\": " +
            fixed4(options.stable ? 0.0 : total_seconds) + ",\n";
    json += "  \"checkers\": [\n";
    for (std::size_t i = 0; i < result.checkers.size(); ++i) {
        const LintCheckerSummary &summary = result.checkers[i];
        json += "    {\"id\": \"" + summary.id + "\", ";
        json += "\"diagnostics\": " +
                std::to_string(summary.diagnostics) + ", ";
        json += "\"reference\": " +
                std::to_string(summary.referenceDiagnostics) + ", ";
        json += "\"matched\": " + std::to_string(summary.matched) + ", ";
        json += "\"precision\": " + fixed4(summary.precision()) + ", ";
        json += "\"recall\": " + fixed4(summary.recall()) + ", ";
        json += "\"seconds\": " +
                fixed4(options.stable ? 0.0 : summary.seconds) + "}";
        json += (i + 1 < result.checkers.size()) ? ",\n" : "\n";
    }
    json += "  ]\n";
    json += "}\n";
    result.json = std::move(json);
    return result;
}

} // namespace lint
} // namespace manta
