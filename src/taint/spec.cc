#include "taint/spec.h"

#include <cstdlib>
#include <string>

#include "support/env.h"

namespace manta {
namespace taint {

const char *
taintKindName(TaintKind kind)
{
    switch (kind) {
    case TaintKind::StackAddr:
        return "stack-addr";
    case TaintKind::HeapAddr:
        return "heap-addr";
    case TaintKind::Input:
        return "input";
    case TaintKind::Uninit:
        return "uninit";
    }
    return "?";
}

const char *
sinkKindName(SinkKind kind)
{
    switch (kind) {
    case SinkKind::PrintArg:
        return "print-arg";
    case SinkKind::CopySource:
        return "copy-source";
    case SinkKind::FormatArg:
        return "format-arg";
    case SinkKind::DerefAddr:
        return "deref-addr";
    case SinkKind::IcallTarget:
        return "icall-target";
    case SinkKind::IcallArg:
        return "icall-arg";
    }
    return "?";
}

int
formatArgIndex(const Module &module, const External &ext)
{
    const std::string_view name = module.str(ext.name);
    if (name == "print_str")
        return 0;
    if (name == "sprintf")
        return 1;
    if (name == "snprintf")
        return 2;
    return -1;
}

int
copySourceIndex(const Module &module, const External &ext)
{
    if (ext.role != ExternRole::StrCopy && ext.role != ExternRole::BoundedCopy)
        return -1;
    // snprintf(dst, size, fmt): the copied payload is the format.
    if (module.str(ext.name) == "snprintf")
        return 2;
    return 1;
}

const char *
checkerFor(SinkKind sink, TaintKind kind)
{
    const bool addr = kind == TaintKind::StackAddr ||
                      kind == TaintKind::HeapAddr ||
                      kind == TaintKind::Uninit;
    switch (sink) {
    case SinkKind::PrintArg:
    case SinkKind::CopySource:
    case SinkKind::IcallArg:
        return addr ? "addr-leak" : nullptr;
    case SinkKind::DerefAddr:
    case SinkKind::IcallTarget:
        return kind == TaintKind::Input ? "taint-deref" : nullptr;
    case SinkKind::FormatArg:
        return kind == TaintKind::Input ? "format-string" : nullptr;
    }
    return nullptr;
}

namespace {

/** Uninit mirror of the uninit-stack checker: one stack object, owned
 *  by the loading function, and nothing stores into the loaded slot
 *  (no Memory edge reaches the load result). */
bool
uninitLoad(const Module &module, const Ddg &ddg, const MemObjects &objects,
           InstId iid, const Instruction &inst)
{
    const PointsTo &pts = ddg.pts();
    const LocSet &locs = pts.locs(module.operand(inst, 0));
    if (locs.size() != 1)
        return false;
    const MemObject &obj = objects.object(locs.begin()->obj);
    if (obj.kind != ObjKind::Stack)
        return false;
    if (!(obj.func == module.owningFunc(inst.result)))
        return false;
    for (std::uint32_t edge : ddg.inEdges(inst.result)) {
        if (ddg.edge(edge).kind == DepKind::Memory)
            return false;
    }
    (void)iid;
    return true;
}

} // namespace

std::vector<SourceSeed>
collectSources(const Module &module, const Ddg &ddg,
               const MemObjects &objects)
{
    std::vector<SourceSeed> seeds;
    for (std::size_t i = 0; i < module.numInsts(); ++i) {
        const InstId iid(static_cast<std::uint32_t>(i));
        const Instruction &inst = module.inst(iid);
        if (!inst.result.valid())
            continue;
        if (inst.op == Opcode::Alloca) {
            seeds.push_back({{TaintKind::StackAddr, iid}, inst.result});
            continue;
        }
        if (inst.op == Opcode::Call && inst.external.valid()) {
            const External &ext = module.external(inst.external);
            if (ext.role == ExternRole::Alloc)
                seeds.push_back({{TaintKind::HeapAddr, iid}, inst.result});
            else if (ext.role == ExternRole::TaintSource)
                seeds.push_back({{TaintKind::Input, iid}, inst.result});
            continue;
        }
        if (inst.op == Opcode::Load &&
            uninitLoad(module, ddg, objects, iid, inst)) {
            seeds.push_back({{TaintKind::Uninit, iid}, inst.result});
        }
    }
    return seeds;
}

std::vector<SinkSite>
collectSinks(const Module &module)
{
    std::vector<SinkSite> sinks;
    const auto add = [&](SinkKind sink, InstId inst, ValueId value,
                         std::uint32_t arg) {
        if (value.valid())
            sinks.push_back({sink, inst, value, arg});
    };
    for (std::size_t i = 0; i < module.numInsts(); ++i) {
        const InstId iid(static_cast<std::uint32_t>(i));
        const Instruction &inst = module.inst(iid);
        switch (inst.op) {
        case Opcode::Load:
            add(SinkKind::DerefAddr, iid, module.operand(inst, 0), 0);
            break;
        case Opcode::Store:
            add(SinkKind::DerefAddr, iid, module.operand(inst, 0), 0);
            break;
        case Opcode::ICall:
            for (std::size_t a = 0; a < inst.numOperands(); ++a) {
                add(a == 0 ? SinkKind::IcallTarget : SinkKind::IcallArg, iid,
                    module.operand(inst, a), static_cast<std::uint32_t>(a));
            }
            break;
        case Opcode::Call: {
            if (!inst.external.valid())
                break;
            const External &ext = module.external(inst.external);
            if (ext.role == ExternRole::Print) {
                for (std::size_t a = 0; a < inst.numOperands(); ++a) {
                    add(SinkKind::PrintArg, iid, module.operand(inst, a),
                        static_cast<std::uint32_t>(a));
                }
            }
            const int copy_src = copySourceIndex(module, ext);
            if (copy_src >= 0 &&
                static_cast<std::size_t>(copy_src) < inst.numOperands()) {
                add(SinkKind::CopySource, iid, module.operand(inst, copy_src),
                    static_cast<std::uint32_t>(copy_src));
            }
            const int fmt = formatArgIndex(module, ext);
            if (fmt >= 0 &&
                static_cast<std::size_t>(fmt) < inst.numOperands()) {
                add(SinkKind::FormatArg, iid, module.operand(inst, fmt),
                    static_cast<std::uint32_t>(fmt));
            }
            break;
        }
        default:
            break;
        }
    }
    return sinks;
}

bool
sanitizerEdge(const Module &module, const Ddg::Edge &edge)
{
    if (edge.kind != DepKind::ExtRet || !edge.site.valid())
        return false;
    const Instruction &site = module.inst(edge.site);
    if (!site.external.valid())
        return false;
    return module.external(site.external).role == ExternRole::Sanitizer;
}

const char *
flowChecker(const TaintFlow &flow)
{
    const char *checker = checkerFor(flow.sink, flow.kind);
    return checker ? checker : "?";
}

// ---- Cached MANTA_TAINT* environment defaults ---------------------

bool
defaultTaintNoType()
{
    static const bool cached =
        envFlagTruthy(std::getenv("MANTA_TAINT_NOTYPE"));
    return cached;
}

std::size_t
defaultTaintMaxFacts()
{
    static const std::size_t cached = static_cast<std::size_t>(parseEnvLong(
        "MANTA_TAINT_MAX_FACTS", std::getenv("MANTA_TAINT_MAX_FACTS"), 256));
    return cached;
}

bool
defaultTaintSanitizers()
{
    static const char *const kChoices[] = {"on", "off"};
    static const bool cached =
        parseEnvChoice("MANTA_TAINT_SANITIZERS",
                       std::getenv("MANTA_TAINT_SANITIZERS"), kChoices, 2,
                       0) == 0;
    return cached;
}

TaintOptions
TaintOptions::fromEnv()
{
    TaintOptions options;
    options.useTypes = !defaultTaintNoType();
    options.sanitizers = defaultTaintSanitizers();
    options.maxFactsPerValue = defaultTaintMaxFacts();
    options.mode = defaultScheduleMode();
    return options;
}

} // namespace taint
} // namespace manta
