/**
 * @file
 * Interprocedural, flow- and field-aware taint engine (ROADMAP item 3).
 *
 * Taint facts are introduced by source specs (allocation addresses,
 * attacker-controlled externals, uninitialized stack reads), propagate
 * over the interprocedural DDG (analysis/ddg.h) — whose Memory edges
 * already encode field-sensitive points-to store/load resolution — and
 * are reported when they reach sink specs (print-like and copy-like
 * external calls, load/store addresses, indirect-call operands).
 *
 * Type inference gates every report twice, and only there:
 *
 *  - the **barrier**: facts do not propagate OUT of a value whose
 *    inferred interval commits to "numeric" (a number cannot carry a
 *    pointer), and
 *  - the **endpoint gate**: a flow whose sink operand interval
 *    excludes pointer-ness is emitted suppressed.
 *
 * Propagation itself never consults DDG pruning or the inference
 * engine, so the fact fixpoint is identical across MANTA_INFER
 * engines; with types disabled (MANTA_TAINT_NOTYPE=1) the barrier and
 * gate switch off and the engine demonstrably loses precision (the
 * ablation the lint campaign pins).
 *
 * Two evaluation strategies compute the same least fixpoint (the join
 * is an exact capped set union — a semilattice — so chaotic iteration
 * order cannot change the result):
 *
 *  - **WholeProgram** (MANTA_WP=1): one global worklist.
 *  - **ModularBottomUp** (default): bottom-up callgraph-SCC waves
 *    (analysis/scc.h) computing per-function taint summaries into a
 *    TaintSummaryStore that is frozen during a wave and published
 *    sequentially in pack order between waves — MANTA_JOBS-independent
 *    like core/fn_summary.h — followed by a sequential cross-function
 *    drain to the fixpoint. Summaries are instantiated per call site
 *    as shortcut edges (actual argument -> call result).
 *
 * Every artifact (flows, summaries, canonical text) is byte-identical
 * across MANTA_JOBS and between the two schedules; the taint_stable
 * fuzz oracle and tests/test_taint.cc pin this.
 */
#ifndef MANTA_TAINT_TAINT_H
#define MANTA_TAINT_TAINT_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "mir/mir.h"

namespace manta {
namespace taint {

/** What a taint fact asserts about the value carrying it. */
enum class TaintKind : std::uint8_t {
    StackAddr, ///< Address of a stack allocation (alloca result).
    HeapAddr,  ///< Address of a heap allocation (malloc/calloc result).
    Input,     ///< Attacker-controlled data (recv/getenv/nvram_get...).
    Uninit,    ///< Read of never-written stack memory.
};

/** Printable kind name ("stack-addr", "heap-addr", "input", "uninit"). */
const char *taintKindName(TaintKind kind);

/** One taint fact: a kind plus the instruction that introduced it. */
struct TaintFact
{
    TaintKind kind = TaintKind::StackAddr;
    InstId source;

    friend bool
    operator<(const TaintFact &a, const TaintFact &b)
    {
        if (a.kind != b.kind)
            return a.kind < b.kind;
        return a.source < b.source;
    }
    friend bool
    operator==(const TaintFact &a, const TaintFact &b)
    {
        return a.kind == b.kind && a.source == b.source;
    }
};

/**
 * A sorted, duplicate-free fact set. The join used everywhere is
 * "keep the N smallest of the union" (N = TaintOptions::
 * maxFactsPerValue): dropping everything beyond the N smallest is
 * associative, commutative and idempotent, so the capped join is still
 * a semilattice and the propagation fixpoint is unique regardless of
 * worklist order, schedule or job count.
 */
using FactSet = std::vector<TaintFact>;

/** Join `add` into `into` (capped union); true when `into` changed. */
bool joinFacts(FactSet &into, const FactSet &add, std::size_t max_facts);

/** Where a sink operand sits. */
enum class SinkKind : std::uint8_t {
    PrintArg,    ///< Argument of a Print-role external.
    CopySource,  ///< Source operand of a StrCopy/BoundedCopy external.
    FormatArg,   ///< Format operand of print_str/sprintf/snprintf.
    DerefAddr,   ///< Address operand of a Load/Store.
    IcallTarget, ///< Operand 0 of an ICall.
    IcallArg,    ///< Argument operand of an ICall.
};

/** Printable sink name ("print-arg", "deref-addr", ...). */
const char *sinkKindName(SinkKind kind);

/** One source-to-sink flow the engine found. */
struct TaintFlow
{
    SinkKind sink = SinkKind::PrintArg;
    TaintKind kind = TaintKind::StackAddr;
    InstId sourceInst;  ///< Where the fact was introduced.
    InstId sinkInst;    ///< The sink instruction.
    ValueId sinkValue;  ///< The tainted operand at the sink.
    std::uint32_t argIndex = 0; ///< Operand position at the sink.
    /** True when the endpoint gate fired: the sink operand's inferred
     *  interval commits to numeric, so it cannot carry an address. */
    bool suppressed = false;
    /**
     * Mediating instructions of one witness path, source to sink
     * inclusive (deterministic backward-BFS reconstruction). SARIF
     * emits these as related "flow step" locations.
     */
    std::vector<InstId> steps;
};

/** Which registry checker reports a flow ("addr-leak", "taint-deref",
 *  "format-string"). */
const char *flowChecker(const TaintFlow &flow);

/**
 * Per-function taint summary. `paramToRet` bit i means parameter i may
 * flow to the return value through barrier- and sanitizer-respecting
 * DDG paths inside the function (and its callees); `retFacts` are the
 * facts reaching the return value(s) at the fixpoint. Both are
 * computed under either schedule and must be bit-identical.
 */
struct FnTaintSummary
{
    std::uint64_t paramToRet = 0; ///< Parameters beyond 63 are ignored.
    FactSet retFacts;
};

/**
 * The shared per-function summary table of the modular schedule,
 * mirroring core/fn_summary.h's discipline: read-only (frozen) while a
 * wave's packs run concurrently, then deltas are published
 * sequentially in pack order between waves. Each function is
 * summarized by exactly one pack, so publication is conflict-free and
 * the table never depends on MANTA_JOBS.
 */
class TaintSummaryStore
{
  public:
    explicit TaintSummaryStore(std::size_t num_funcs)
        : present_(num_funcs, 0), table_(num_funcs)
    {}

    /** One pack's freshly computed summaries. */
    struct Delta
    {
        std::vector<std::pair<std::uint32_t, FnTaintSummary>> entries;
    };

    /** Published summary of a function, or null while unpublished. */
    const FnTaintSummary *
    find(std::uint32_t func_raw) const
    {
        if (func_raw >= table_.size() || !present_[func_raw])
            return nullptr;
        return &table_[func_raw];
    }

    /** Sequential, between waves; the first entry per function wins. */
    void
    publish(Delta &&delta)
    {
        for (auto &entry : delta.entries) {
            if (entry.first >= table_.size() || present_[entry.first])
                continue;
            present_[entry.first] = 1;
            table_[entry.first] = std::move(entry.second);
            ++published_;
        }
        delta.entries.clear();
    }

    std::size_t published() const { return published_; }
    std::size_t size() const { return table_.size(); }

  private:
    std::vector<char> present_;
    std::vector<FnTaintSummary> table_;
    std::size_t published_ = 0;
};

/** Deterministic engine counters (schedule timings excluded from the
 *  canonical artifacts; everything else is fixpoint-derived). */
struct TaintStats
{
    std::size_t sources = 0;      ///< Fact introductions.
    std::size_t sinkSites = 0;    ///< Sink operand positions scanned.
    std::size_t factedValues = 0; ///< Values carrying >= 1 fact.
    std::size_t flows = 0;        ///< Reported (non-suppressed) flows.
    std::size_t suppressed = 0;   ///< Flows killed by the endpoint gate.
    std::size_t barrierValues = 0; ///< Facted values the barrier stops.
    std::size_t sanitizedEdges = 0; ///< ExtRet edges killed at sanitizers.
    std::size_t waves = 0;        ///< Modular schedule: wave levels run.
    std::size_t drainRounds = 0;  ///< Cross-function drain iterations.
    double seconds = 0.0;         ///< Wall clock of runTaint().
};

/** Engine knobs; the defaults honor the MANTA_TAINT* environment. */
struct TaintOptions
{
    /** Barrier + endpoint gate (needs a non-null inference result).
     *  The default honors MANTA_TAINT_NOTYPE=1 (ablation flip). */
    bool useTypes = true;
    /** Kill propagation through Sanitizer-role externals (atoi...).
     *  Honors MANTA_TAINT_SANITIZERS={on,off}. */
    bool sanitizers = true;
    /** Capped-join bound per value; honors MANTA_TAINT_MAX_FACTS. */
    std::size_t maxFactsPerValue = 256;
    /** Evaluation strategy; both compute the same fixpoint. */
    ScheduleMode mode = ScheduleMode::ModularBottomUp;

    /** Defaults with every MANTA_TAINT* knob applied. */
    static TaintOptions fromEnv();
};

/** The engine's output: flows, summaries and the fact table. */
struct TaintResult
{
    /** Flows in canonical order: (sink inst, operand, sink kind,
     *  fact). Suppressed flows are kept (ablation inspection). */
    std::vector<TaintFlow> flows;
    /** Per-function summaries, indexed by function raw id. */
    std::vector<FnTaintSummary> summaries;
    /** Final fact table, indexed by value raw id. */
    std::vector<FactSet> facts;
    TaintStats stats;

    /**
     * The identity artifact: flows + per-function summaries + the
     * fixpoint-derived counters, rendered deterministically. Must be
     * byte-identical across MANTA_JOBS, between ModularBottomUp and
     * WholeProgram, and under print/parse roundtrips (the taint_stable
     * oracle's contract). Timings and schedule counters are excluded.
     */
    std::string canonicalText(const Module &module) const;

    /** Just the per-function summary table, one line per function. */
    std::string summaryText(const Module &module) const;
};

/**
 * Run the taint engine over an analyzed module.
 *
 * @param analyzer  Substrate owner (DDG, points-to, objects). The
 *                  DDG's `pruned` flags are ignored — propagation is
 *                  inference-engine-independent by construction.
 * @param inference Type source for the barrier and endpoint gate; may
 *                  be null, which forces options.useTypes off.
 */
TaintResult runTaint(MantaAnalyzer &analyzer,
                     const InferenceResult *inference,
                     const TaintOptions &options = TaintOptions::fromEnv());

/// @name Cached environment defaults (support/env.h parsing rules).
/// @{
/** MANTA_TAINT_NOTYPE: envFlagTruthy — drop the barrier + gate. */
bool defaultTaintNoType();
/** MANTA_TAINT_MAX_FACTS: parseEnvLong, fallback 256, minimum 1. */
std::size_t defaultTaintMaxFacts();
/** MANTA_TAINT_SANITIZERS: parseEnvChoice {"on","off"}, fallback on. */
bool defaultTaintSanitizers();
/// @}

} // namespace taint
} // namespace manta

#endif // MANTA_TAINT_TAINT_H
