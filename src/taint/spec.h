/**
 * @file
 * Source / sink / sanitizer specs of the taint engine.
 *
 * Specs are derived from MIR structure and external-function roles
 * (mir/externals.h), never from names alone — with one exception: the
 * format-argument positions of the printf-family externals are a
 * name-keyed table, because ExternRole cannot express "operand 2 is
 * the format".
 *
 *   sources   alloca results (stack-addr), Alloc-role call results
 *             (heap-addr), TaintSource-role call results (input),
 *             loads of provably never-written stack slots (uninit)
 *   sinks     Print-role arguments, StrCopy/BoundedCopy source
 *             operands, format operands, Load/Store addresses,
 *             indirect-call targets and arguments
 *   sanitizer Sanitizer-role externals (atoi, strtol): ExtRet edges
 *             through them are not followed
 */
#ifndef MANTA_TAINT_SPEC_H
#define MANTA_TAINT_SPEC_H

#include <vector>

#include "analysis/ddg.h"
#include "analysis/memobj.h"
#include "taint/taint.h"

namespace manta {
namespace taint {

/** One sink operand position of one instruction. */
struct SinkSite
{
    SinkKind sink = SinkKind::PrintArg;
    InstId inst;
    ValueId value;              ///< The operand to inspect.
    std::uint32_t argIndex = 0; ///< Operand position.
};

/**
 * Format-argument position of an external by name (-1 when the
 * external takes no format): print_str -> 0, sprintf -> 1,
 * snprintf -> 2.
 */
int formatArgIndex(const Module &module, const External &ext);

/** Copy-source operand position of a StrCopy/BoundedCopy external
 *  (memcpy/strcpy/strncpy/sprintf -> 1, snprintf -> 2). */
int copySourceIndex(const Module &module, const External &ext);

/** Does `flow.kind` at `flow.sink` constitute a reportable finding,
 *  and for which checker? Null when the combination is benign. */
const char *checkerFor(SinkKind sink, TaintKind kind);

/**
 * All fact introductions of a module, ascending by instruction id.
 * The uninit source mirrors the uninit-stack checker's definition:
 * a load whose address resolves to exactly one stack object owned by
 * the loading function, with no Memory edge into the load result (no
 * store reaches it).
 */
struct SourceSeed
{
    TaintFact fact;
    ValueId value; ///< The value the fact starts on.
};
std::vector<SourceSeed> collectSources(const Module &module, const Ddg &ddg,
                                       const MemObjects &objects);

/** All sink operand positions of a module, ascending by instruction
 *  id then operand position. */
std::vector<SinkSite> collectSinks(const Module &module);

/** True when DDG edge `edge` must not carry facts: an ExtRet edge
 *  whose site calls a Sanitizer-role external. */
bool sanitizerEdge(const Module &module, const Ddg::Edge &edge);

} // namespace taint
} // namespace manta

#endif // MANTA_TAINT_SPEC_H
