/**
 * @file
 * The taint propagation engine (see taint/taint.h for the contract).
 *
 * Both schedules evaluate the same monotone equation system over the
 * capped-union fact semilattice, so they share one least fixpoint:
 *
 *   facts(v) ⊇ seeds(v)
 *   facts(v) ⊇ outflow(u)    for every allowed DDG edge u -> v
 *
 * where outflow(u) is facts(u), emptied by the numeric barrier except
 * for facts introduced at u itself. The modular path only changes HOW
 * the fixpoint is reached: bottom-up SCC waves with per-function
 * paramToRet summaries instantiated as call-site shortcut edges
 * (pure acceleration — every shortcut flow is a consequence of the
 * base system), then a sequential cross-SCC drain.
 */
#include <algorithm>
#include <deque>
#include <memory>
#include <set>
#include <sstream>
#include <unordered_map>

#include "analysis/scc.h"
#include "core/modular.h"
#include "support/task_pool.h"
#include "support/timer.h"
#include "taint/spec.h"
#include "taint/taint.h"

namespace manta {
namespace taint {

bool
joinFacts(FactSet &into, const FactSet &add, std::size_t max_facts)
{
    if (add.empty())
        return false;
    FactSet merged;
    merged.reserve(into.size() + add.size());
    std::set_union(into.begin(), into.end(), add.begin(), add.end(),
                   std::back_inserter(merged));
    if (merged.size() > max_facts)
        merged.resize(max_facts);
    if (merged == into)
        return false;
    into = std::move(merged);
    return true;
}

namespace {

/** Fixed pack width of the wave scheduler: a pure function of the
 *  module (never of MANTA_JOBS), like the refinement stages' packs. */
constexpr std::size_t kPackSize = 4;

class Engine
{
  public:
    Engine(MantaAnalyzer &analyzer, const InferenceResult *inference,
           const TaintOptions &options)
        : analyzer_(analyzer), module_(analyzer.module()),
          ddg_(analyzer.ddg()), objects_(analyzer.memObjects()),
          inference_(inference), options_(options)
    {
        if (inference_ == nullptr)
            options_.useTypes = false;
        if (options_.maxFactsPerValue == 0)
            options_.maxFactsPerValue = 1;
    }

    TaintResult
    run()
    {
        Timer timer;
        TaintResult result;
        prepare();
        if (options_.mode == ScheduleMode::WholeProgram)
            runWholeProgram();
        else
            runModular();
        finalize(result);
        result.stats.seconds = timer.seconds();
        return result;
    }

  private:
    using Boundary = std::vector<std::pair<std::uint32_t, FactSet>>;

    /** One pack's private output, published sequentially post-wave. */
    struct PackOut
    {
        TaintSummaryStore::Delta delta;
        Boundary boundary;
    };

    // ---- Shared setup ---------------------------------------------

    void
    prepare()
    {
        const std::size_t num_values = module_.numValues();
        facts_.assign(num_values, {});
        barrier_.assign(num_values, 0);
        if (options_.useTypes) {
            TypeTable &tt = inference_->types();
            for (std::size_t v = 0; v < num_values; ++v) {
                const BoundPair bp =
                    inference_->valueBounds(ValueId(
                        static_cast<std::uint32_t>(v)));
                barrier_[v] = tt.isNumeric(bp.upper) &&
                              (tt.isNumeric(bp.lower) ||
                               bp.lower == tt.bottom());
            }
        }
        edge_allowed_.assign(ddg_.numEdges(), 1);
        for (std::size_t e = 0; e < ddg_.numEdges(); ++e) {
            if (options_.sanitizers &&
                sanitizerEdge(module_, ddg_.edge(
                                  static_cast<std::uint32_t>(e)))) {
                edge_allowed_[e] = 0;
                ++stats_.sanitizedEdges;
            }
        }
        seeds_ = collectSources(module_, ddg_, objects_);
        stats_.sources = seeds_.size();
        seed_at_.assign(num_values, {});
        for (const SourceSeed &seed : seeds_) {
            joinFacts(facts_[seed.value.index()], {seed.fact},
                      options_.maxFactsPerValue);
            joinFacts(seed_at_[seed.value.index()], {seed.fact},
                      options_.maxFactsPerValue);
        }
    }

    /** What u pushes along its out-edges: everything, or (numeric
     *  barrier) only the facts introduced at u itself. */
    FactSet
    outflow(std::uint32_t u) const
    {
        if (!barrier_[u])
            return facts_[u];
        if (seed_at_[u].empty())
            return {};
        FactSet own;
        std::set_intersection(facts_[u].begin(), facts_[u].end(),
                              seed_at_[u].begin(), seed_at_[u].end(),
                              std::back_inserter(own));
        return own;
    }

    // ---- Whole-program evaluation ---------------------------------

    void
    runWholeProgram()
    {
        std::deque<std::uint32_t> worklist;
        std::vector<char> queued(module_.numValues(), 0);
        for (const SourceSeed &seed : seeds_) {
            if (!queued[seed.value.index()]) {
                queued[seed.value.index()] = 1;
                worklist.push_back(seed.value.raw());
            }
        }
        while (!worklist.empty()) {
            const std::uint32_t u = worklist.front();
            worklist.pop_front();
            queued[u] = 0;
            const FactSet out = outflow(u);
            if (out.empty())
                continue;
            for (std::uint32_t e : ddg_.outEdges(ValueId(u))) {
                if (!edge_allowed_[e])
                    continue;
                const std::uint32_t v = ddg_.edge(e).to.raw();
                if (joinFacts(facts_[v], out, options_.maxFactsPerValue) &&
                    !queued[v]) {
                    queued[v] = 1;
                    worklist.push_back(v);
                }
            }
        }
        // Summaries use the same per-SCC mask routine as the modular
        // path, published bottom-up sequentially — bit-identical to
        // the wave-parallel computation by construction.
        const ModularSchedule &schedule = analyzer_.schedule();
        const SccGraph &sccs = schedule.sccs();
        buildOwnership(schedule);
        store_.reset(new TaintSummaryStore(module_.numFuncs()));
        for (std::size_t level = 0; level < sccs.numWaves(); ++level) {
            for (std::uint32_t scc : sccs.wave(level)) {
                TaintSummaryStore::Delta delta;
                computeSccMasks(sccs, scc, &delta);
                store_->publish(std::move(delta));
            }
        }
    }

    // ---- Modular bottom-up evaluation -----------------------------

    void
    buildOwnership(const ModularSchedule &schedule)
    {
        fn_values_.assign(module_.numFuncs(), {});
        for (std::size_t v = 0; v < module_.numValues(); ++v) {
            const std::uint32_t owner =
                schedule.ownerOf(static_cast<std::uint32_t>(v));
            if (owner != ModularSchedule::kNoOwner &&
                owner < fn_values_.size()) {
                fn_values_[owner].push_back(static_cast<std::uint32_t>(v));
            }
        }
        fn_calls_.assign(module_.numFuncs(), {});
        for (std::size_t i = 0; i < module_.numInsts(); ++i) {
            const InstId iid(static_cast<std::uint32_t>(i));
            const Instruction &inst = module_.inst(iid);
            if (inst.op != Opcode::Call || !inst.callee.valid() ||
                !inst.result.valid())
                continue;
            const FuncId owner = module_.block(inst.parent).func;
            if (owner.valid())
                fn_calls_[owner.index()].push_back(iid);
        }
    }

    void
    runModular()
    {
        const ModularSchedule &schedule = analyzer_.schedule();
        const SccGraph &sccs = schedule.sccs();
        buildOwnership(schedule);
        store_.reset(new TaintSummaryStore(module_.numFuncs()));

        std::set<std::uint32_t> pending;
        for (std::size_t level = 0; level < sccs.numWaves(); ++level) {
            const std::vector<std::uint32_t> &comps = sccs.wave(level);
            std::vector<std::vector<std::uint32_t>> packs;
            for (std::size_t at = 0; at < comps.size(); at += kPackSize) {
                const std::size_t end =
                    std::min(comps.size(), at + kPackSize);
                packs.emplace_back(comps.begin() + at, comps.begin() + end);
            }
            std::vector<PackOut> outs(packs.size());
            sharedPool().parallelFor(packs.size(), [&](std::size_t p) {
                for (std::uint32_t scc : packs[p]) {
                    computeSccMasks(sccs, scc, &outs[p].delta);
                    propagateScc(schedule, sccs, scc, &outs[p].delta,
                                 &outs[p].boundary);
                }
            });
            // Sequential publication in pack order (store frozen
            // above): summaries first, then the boundary deltas that
            // schedule cross-SCC re-propagation.
            for (PackOut &out : outs) {
                store_->publish(std::move(out.delta));
                applyBoundary(schedule, sccs, out.boundary, &pending);
            }
            ++stats_.waves;
        }
        // Sequential drain to the cross-SCC fixpoint, smallest SCC id
        // first. Join order cannot change the result (semilattice),
        // only how fast it is reached.
        while (!pending.empty()) {
            const std::uint32_t scc = *pending.begin();
            pending.erase(pending.begin());
            Boundary boundary;
            propagateScc(schedule, sccs, scc, nullptr, &boundary);
            applyBoundary(schedule, sccs, boundary, &pending);
            ++stats_.drainRounds;
        }
    }

    void
    applyBoundary(const ModularSchedule &schedule, const SccGraph &sccs,
                  const Boundary &boundary, std::set<std::uint32_t> *pending)
    {
        for (const auto &entry : boundary) {
            if (!joinFacts(facts_[entry.first], entry.second,
                           options_.maxFactsPerValue))
                continue;
            const std::uint32_t owner = schedule.ownerOf(entry.first);
            if (owner != ModularSchedule::kNoOwner)
                pending->insert(sccs.sccOf(FuncId(owner)));
        }
    }

    /**
     * paramToRet masks of one SCC's members: per-value bitmask
     * fixpoint over the SCC-owned values, following allowed edges with
     * the barrier applied, instantiating published callee masks (and
     * same-SCC tentative masks, iterated to convergence) at direct
     * call sites. Reads only the frozen store, so packs of one wave
     * can run concurrently.
     */
    void
    computeSccMasks(const SccGraph &sccs, std::uint32_t scc,
                    TaintSummaryStore::Delta *delta)
    {
        const std::vector<FuncId> &members = sccs.members(scc);
        std::unordered_map<std::uint32_t, std::uint64_t> mask;
        std::unordered_map<std::uint32_t, std::uint64_t> fn_ret;
        for (FuncId fn : members) {
            const Function &function = module_.func(fn);
            for (std::size_t i = 0;
                 i < function.params.size() && i < 64; ++i) {
                mask[function.params[i].raw()] |= 1ull << i;
            }
            fn_ret[fn.raw()] = 0;
        }
        const auto member_of = [&](std::uint32_t func_raw) {
            return fn_ret.count(func_raw) != 0;
        };
        const auto callee_mask = [&](FuncId callee) -> std::uint64_t {
            if (member_of(callee.raw()))
                return fn_ret[callee.raw()];
            const FnTaintSummary *summary = store_->find(callee.raw());
            return summary ? summary->paramToRet : 0;
        };
        bool changed = true;
        while (changed) {
            changed = false;
            for (FuncId fn : members) {
                for (std::uint32_t v : fn_values_[fn.index()]) {
                    const auto it = mask.find(v);
                    if (it == mask.end() || it->second == 0 || barrier_[v])
                        continue;
                    const std::uint64_t bits = it->second;
                    for (std::uint32_t e : ddg_.outEdges(ValueId(v))) {
                        if (!edge_allowed_[e])
                            continue;
                        const Ddg::Edge &edge = ddg_.edge(e);
                        const std::uint32_t owner =
                            module_.owningFunc(edge.to).valid()
                                ? module_.owningFunc(edge.to).raw()
                                : ModularSchedule::kNoOwner;
                        if (owner == ModularSchedule::kNoOwner ||
                            !member_of(owner))
                            continue;
                        std::uint64_t &slot = mask[edge.to.raw()];
                        if ((slot | bits) != slot) {
                            slot |= bits;
                            changed = true;
                        }
                    }
                }
                // Call-site instantiation: arg i's bits reach the call
                // result when the callee's mask says param i flows to
                // its return.
                for (InstId call : fn_calls_[fn.index()]) {
                    const Instruction &inst = module_.inst(call);
                    const std::uint64_t cm = callee_mask(inst.callee);
                    if (cm == 0)
                        continue;
                    std::uint64_t bits = 0;
                    for (std::size_t a = 0;
                         a < inst.numOperands() && a < 64; ++a) {
                        if (!(cm & (1ull << a)))
                            continue;
                        const auto it = mask.find(module_.operand(inst, a).raw());
                        if (it != mask.end() &&
                            !barrier_[module_.operand(inst, a).raw()])
                            bits |= it->second;
                    }
                    if (bits == 0)
                        continue;
                    std::uint64_t &slot = mask[inst.result.raw()];
                    if ((slot | bits) != slot) {
                        slot |= bits;
                        changed = true;
                    }
                }
                // Refresh the member's own ret mask (feeds same-SCC
                // recursion in the next sweep).
                std::uint64_t ret_bits = 0;
                for (BlockId bid : module_.func(fn).blocks) {
                    for (InstId iid : module_.block(bid).insts) {
                        const Instruction &inst = module_.inst(iid);
                        if (inst.op != Opcode::Ret ||
                            inst.numOperands() == 0)
                            continue;
                        const auto it =
                            mask.find(module_.operand(inst, 0).raw());
                        if (it != mask.end() &&
                            !barrier_[module_.operand(inst, 0).raw()])
                            ret_bits |= it->second;
                    }
                }
                if (ret_bits != fn_ret[fn.raw()]) {
                    fn_ret[fn.raw()] = ret_bits;
                    changed = true;
                }
            }
        }
        if (delta != nullptr) {
            for (FuncId fn : members) {
                FnTaintSummary summary;
                summary.paramToRet = fn_ret[fn.raw()];
                delta->entries.emplace_back(fn.raw(), std::move(summary));
            }
        }
    }

    /**
     * Local fact fixpoint over one SCC's values. Writes facts of
     * SCC-owned values (disjoint across the wave's packs) and appends
     * cross-SCC pushes to `boundary` (applied sequentially later), so
     * concurrent packs never race and results are MANTA_JOBS-free.
     */
    void
    propagateScc(const ModularSchedule &schedule, const SccGraph &sccs,
                 std::uint32_t scc, const TaintSummaryStore::Delta *delta,
                 Boundary *boundary)
    {
        const std::vector<FuncId> &members = sccs.members(scc);
        // Call-site shortcut edges from summary masks: arg -> result.
        std::unordered_map<std::uint32_t, std::vector<std::uint32_t>>
            shortcut;
        for (FuncId fn : members) {
            for (InstId call : fn_calls_[fn.index()]) {
                const Instruction &inst = module_.inst(call);
                std::uint64_t cm = 0;
                if (delta != nullptr) {
                    for (const auto &entry : delta->entries) {
                        if (entry.first == inst.callee.raw())
                            cm = entry.second.paramToRet;
                    }
                }
                if (cm == 0) {
                    const FnTaintSummary *summary =
                        store_->find(inst.callee.raw());
                    cm = summary ? summary->paramToRet : 0;
                }
                for (std::size_t a = 0;
                     a < inst.numOperands() && a < 64; ++a) {
                    if (cm & (1ull << a)) {
                        shortcut[module_.operand(inst, a).raw()].push_back(
                            inst.result.raw());
                    }
                }
            }
        }
        std::set<std::uint32_t> scc_funcs;
        for (FuncId fn : members)
            scc_funcs.insert(fn.raw());
        std::deque<std::uint32_t> worklist;
        std::set<std::uint32_t> queued;
        for (FuncId fn : members) {
            for (std::uint32_t v : fn_values_[fn.index()]) {
                if (!facts_[v].empty() && queued.insert(v).second)
                    worklist.push_back(v);
            }
        }
        while (!worklist.empty()) {
            const std::uint32_t u = worklist.front();
            worklist.pop_front();
            queued.erase(u);
            const FactSet out = outflow(u);
            if (out.empty())
                continue;
            const auto push_local = [&](std::uint32_t v) {
                if (joinFacts(facts_[v], out, options_.maxFactsPerValue) &&
                    queued.insert(v).second)
                    worklist.push_back(v);
            };
            for (std::uint32_t e : ddg_.outEdges(ValueId(u))) {
                if (!edge_allowed_[e])
                    continue;
                const Ddg::Edge &edge = ddg_.edge(e);
                const std::uint32_t owner = schedule.ownerOf(edge.to.raw());
                if (owner != ModularSchedule::kNoOwner &&
                    scc_funcs.count(owner)) {
                    push_local(edge.to.raw());
                } else {
                    boundary->emplace_back(edge.to.raw(), out);
                }
            }
            const auto sc = shortcut.find(u);
            if (sc != shortcut.end()) {
                for (std::uint32_t v : sc->second)
                    push_local(v);
            }
        }
    }

    // ---- Finalization (common to both schedules) ------------------

    void
    finalize(TaintResult &result)
    {
        for (std::size_t v = 0; v < module_.numValues(); ++v) {
            if (facts_[v].empty())
                continue;
            ++stats_.factedValues;
            if (barrier_[v])
                ++stats_.barrierValues;
        }
        scanSinks(result);
        fillSummaries(result);
        result.stats = stats_;
        result.facts = std::move(facts_);
    }

    void
    scanSinks(TaintResult &result)
    {
        const std::vector<SinkSite> sinks = collectSinks(module_);
        stats_.sinkSites = sinks.size();
        for (const SinkSite &site : sinks) {
            for (const TaintFact &fact : facts_[site.value.index()]) {
                if (checkerFor(site.sink, fact.kind) == nullptr)
                    continue;
                TaintFlow flow;
                flow.sink = site.sink;
                flow.kind = fact.kind;
                flow.sourceInst = fact.source;
                flow.sinkInst = site.inst;
                flow.sinkValue = site.value;
                flow.argIndex = site.argIndex;
                flow.suppressed =
                    options_.useTypes && barrier_[site.value.index()];
                flow.steps = reconstructSteps(flow, fact);
                if (flow.suppressed)
                    ++stats_.suppressed;
                else
                    ++stats_.flows;
                result.flows.push_back(std::move(flow));
            }
        }
    }

    /**
     * One witness path, reconstructed by backward BFS over allowed
     * in-edges whose tail carries the fact and may push it onward.
     * Edge indices are visited ascending, so the witness (and the
     * SARIF flow steps) are deterministic.
     */
    std::vector<InstId>
    reconstructSteps(const TaintFlow &flow, const TaintFact &fact) const
    {
        std::vector<InstId> steps;
        steps.push_back(fact.source);
        std::uint32_t target = ModularSchedule::kNoOwner;
        for (const SourceSeed &seed : seeds_) {
            if (seed.fact == fact) {
                target = seed.value.raw();
                break;
            }
        }
        const std::uint32_t start = flow.sinkValue.raw();
        std::vector<std::uint32_t> sites;
        if (target != ModularSchedule::kNoOwner && start != target) {
            std::unordered_map<std::uint32_t, std::uint32_t> parent_edge;
            std::deque<std::uint32_t> queue;
            queue.push_back(start);
            parent_edge[start] = 0xffffffffu; // visited marker only
            bool found = false;
            while (!queue.empty() && !found) {
                const std::uint32_t v = queue.front();
                queue.pop_front();
                for (std::uint32_t e : ddg_.inEdges(ValueId(v))) {
                    if (!edge_allowed_[e])
                        continue;
                    const Ddg::Edge &edge = ddg_.edge(e);
                    const std::uint32_t u = edge.from.raw();
                    if (parent_edge.count(u))
                        continue;
                    if (std::find(facts_[u].begin(), facts_[u].end(),
                                  fact) == facts_[u].end())
                        continue;
                    if (barrier_[u] &&
                        (std::find(seed_at_[u].begin(), seed_at_[u].end(),
                                   fact) == seed_at_[u].end()))
                        continue;
                    parent_edge[u] = e;
                    if (u == target) {
                        found = true;
                        break;
                    }
                    queue.push_back(u);
                }
            }
            if (found) {
                std::uint32_t v = target;
                while (v != start) {
                    const std::uint32_t e = parent_edge[v];
                    // Walk forward: target's stored edge leads back
                    // toward the sink.
                    sites.push_back(ddg_.edge(e).site.raw());
                    v = ddg_.edge(e).to.raw();
                }
            }
        }
        for (std::uint32_t site : sites) {
            const InstId iid(site);
            if (iid.valid() && (steps.empty() || !(steps.back() == iid)))
                steps.push_back(iid);
        }
        if (steps.empty() || !(steps.back() == flow.sinkInst))
            steps.push_back(flow.sinkInst);
        // Deterministic middle elision for very long witnesses.
        constexpr std::size_t kMaxSteps = 8;
        if (steps.size() > kMaxSteps) {
            std::vector<InstId> trimmed(steps.begin(), steps.begin() + 4);
            trimmed.insert(trimmed.end(), steps.end() - 4, steps.end());
            steps = std::move(trimmed);
        }
        return steps;
    }

    void
    fillSummaries(TaintResult &result)
    {
        result.summaries.assign(module_.numFuncs(), {});
        for (std::size_t f = 0; f < module_.numFuncs(); ++f) {
            const FnTaintSummary *published =
                store_ ? store_->find(static_cast<std::uint32_t>(f))
                       : nullptr;
            if (published != nullptr)
                result.summaries[f].paramToRet = published->paramToRet;
            const Function &function =
                module_.func(FuncId(static_cast<std::uint32_t>(f)));
            for (BlockId bid : function.blocks) {
                for (InstId iid : module_.block(bid).insts) {
                    const Instruction &inst = module_.inst(iid);
                    if (inst.op == Opcode::Ret && inst.numOperands() != 0) {
                        joinFacts(result.summaries[f].retFacts,
                                  facts_[module_.operand(inst, 0).index()],
                                  options_.maxFactsPerValue);
                    }
                }
            }
        }
    }

    MantaAnalyzer &analyzer_;
    Module &module_;
    const Ddg &ddg_;
    const MemObjects &objects_;
    const InferenceResult *inference_;
    TaintOptions options_;
    TaintStats stats_;

    std::vector<FactSet> facts_;
    std::vector<FactSet> seed_at_; ///< Facts introduced at each value.
    std::vector<char> barrier_;
    std::vector<char> edge_allowed_;
    std::vector<SourceSeed> seeds_;
    std::vector<std::vector<std::uint32_t>> fn_values_;
    std::vector<std::vector<InstId>> fn_calls_;
    std::unique_ptr<TaintSummaryStore> store_;
};

} // namespace

TaintResult
runTaint(MantaAnalyzer &analyzer, const InferenceResult *inference,
         const TaintOptions &options)
{
    Engine engine(analyzer, inference, options);
    return engine.run();
}

std::string
TaintResult::canonicalText(const Module &module) const
{
    std::ostringstream out;
    out << "taint flows=" << stats.flows << " suppressed="
        << stats.suppressed << " sources=" << stats.sources
        << " facted=" << stats.factedValues << " barrier="
        << stats.barrierValues << " sanitized-edges="
        << stats.sanitizedEdges << "\n";
    for (const TaintFlow &flow : flows) {
        out << "flow " << flowChecker(flow) << " kind="
            << taintKindName(flow.kind) << " sink="
            << sinkKindName(flow.sink) << " arg=" << flow.argIndex
            << " src=inst" << flow.sourceInst.raw() << " dst=inst"
            << flow.sinkInst.raw() << " steps=" << flow.steps.size()
            << " suppressed=" << (flow.suppressed ? 1 : 0) << "\n";
    }
    out << summaryText(module);
    return out.str();
}

std::string
TaintResult::summaryText(const Module &module) const
{
    std::ostringstream out;
    for (std::size_t f = 0; f < summaries.size(); ++f) {
        const FnTaintSummary &summary = summaries[f];
        if (summary.paramToRet == 0 && summary.retFacts.empty())
            continue;
        out << "summary "
            << module.str(
                   module.func(FuncId(static_cast<std::uint32_t>(f))).name)
            << " params=0x" << std::hex << summary.paramToRet << std::dec
            << " ret=[";
        for (std::size_t i = 0; i < summary.retFacts.size(); ++i) {
            if (i != 0)
                out << ",";
            out << taintKindName(summary.retFacts[i].kind) << "@inst"
                << summary.retFacts[i].source.raw();
        }
        out << "]\n";
    }
    return out.str();
}

} // namespace taint
} // namespace manta
