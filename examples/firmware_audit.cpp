/**
 * @file
 * Firmware audit: generate a firmware-shaped image, run the full
 * type-assisted bug detection pipeline on it, and compare against the
 * no-type ablation - the Table 5 workflow as a library consumer would
 * drive it.
 *
 * Usage: ./build/examples/firmware_audit [seed]
 */
#include <cstdio>
#include <cstdlib>

#include "analysis/acyclic.h"
#include "clients/checkers.h"
#include "clients/ddg_prune.h"
#include "core/pipeline.h"
#include "frontend/firmware.h"
#include "support/timer.h"

using namespace manta;

int
main(int argc, char **argv)
{
    FirmwareProfile profile = firmwareFleet().front();
    if (argc > 1)
        profile.config.seed = std::strtoull(argv[1], nullptr, 10);

    std::printf("Auditing firmware image '%s' (seed %llu)...\n",
                profile.name.c_str(),
                static_cast<unsigned long long>(profile.config.seed));

    GeneratedProgram image = buildFirmware(profile);
    makeAcyclic(*image.module);
    std::printf("  %zu functions, %zu instructions, %zu injected "
                "vulnerabilities\n",
                image.module->numFuncs(), image.module->numInsts(),
                image.truth.seeds.size());

    MantaAnalyzer analyzer(*image.module, HybridConfig::full());

    // Type-assisted run.
    Timer timer;
    InferenceResult types = analyzer.infer();
    const PruneStats prunes = pruneInfeasibleDeps(analyzer.ddg(), types);
    DetectorOptions typed_opts;
    const BugDetector typed(analyzer, &types, typed_opts);
    const auto typed_reports = typed.runAll();
    const double typed_ms = timer.milliseconds();
    analyzer.ddg().resetPruning();

    // No-type ablation.
    timer.reset();
    DetectorOptions untyped_opts;
    untyped_opts.useTypes = false;
    const BugDetector untyped(analyzer, nullptr, untyped_opts);
    const auto untyped_reports = untyped.runAll();
    const double untyped_ms = timer.milliseconds();

    auto summarize = [&](const char *label,
                         const std::vector<BugReport> &reports) {
        std::size_t per_kind[5] = {};
        std::size_t real = 0;
        for (const BugReport &r : reports) {
            ++per_kind[static_cast<int>(r.kind)];
            real += r.sinkTag != 0 && image.truth.isRealBugTag(r.sinkTag);
        }
        std::printf("  %-12s %3zu reports (NPD %zu, RSA %zu, UAF %zu, "
                    "CMI %zu, BOF %zu) - %zu hit injected bugs\n",
                    label, reports.size(), per_kind[0], per_kind[1],
                    per_kind[2], per_kind[3], per_kind[4], real);
    };

    std::printf("\nResults:\n");
    std::printf("  pruned %zu of %zu arithmetic dependencies "
                "(Table 2 rules)\n", prunes.pruned, prunes.examined);
    summarize("Manta", typed_reports);
    summarize("Manta-NoType", untyped_reports);
    std::printf("  times: typed %.0f ms (incl. inference), untyped "
                "%.0f ms\n", typed_ms, untyped_ms);

    // Show a few sample findings with context.
    std::printf("\nSample findings:\n");
    int shown = 0;
    for (const BugReport &r : typed_reports) {
        if (shown++ >= 5)
            break;
        std::printf("  [%s] %s\n", checkerName(r.kind),
                    r.message.c_str());
    }
    return 0;
}
