/**
 * @file
 * manta_cli: the command-line front door for the library.
 *
 * Reads a textual MIR module (file path, or stdin with "-"), runs the
 * requested pipeline, and prints one of several reports:
 *
 *   manta_cli <file> types        annotated listing + signatures
 *   manta_cli <file> bugs         type-assisted bug reports
 *   manta_cli <file> bugs-notype  untyped ablation reports
 *   manta_cli <file> lint         lint framework, human-readable text
 *   manta_cli <file> lint-notype  lint in the no-type ablation
 *   manta_cli <file> lint-sarif   lint framework, SARIF 2.1.0 JSON
 *   manta_cli <file> icall        indirect-call target sets
 *   manta_cli <file> stats        stage statistics
 *   manta_cli <file> run          execute under the interpreter
 *   manta_cli serve [--socket P]  long-lived analysis daemon
 *
 * The mode list is defined once in serve/cli_modes.h; --help renders
 * it and the help-parity test asserts the two never drift.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/acyclic.h"
#include "clients/annotate.h"
#include "clients/checkers.h"
#include "clients/ddg_prune.h"
#include "clients/icall.h"
#include "core/pipeline.h"
#include "lint/campaign.h"
#include "mir/interp.h"
#include "mir/parser.h"
#include "serve/cli_modes.h"
#include "serve/server.h"

using namespace manta;

namespace {

int
usage()
{
    std::fprintf(stderr, "%s", serve::cliHelpText().c_str());
    return 2;
}

std::string
readInput(const char *path)
{
    std::ostringstream buffer;
    if (std::strcmp(path, "-") == 0) {
        buffer << std::cin.rdbuf();
    } else {
        std::ifstream file(path);
        if (!file) {
            std::fprintf(stderr, "manta_cli: cannot open %s\n", path);
            std::exit(2);
        }
        buffer << file.rdbuf();
    }
    return buffer.str();
}

void
printBugs(MantaAnalyzer &analyzer, const InferenceResult *types)
{
    if (types)
        pruneInfeasibleDeps(analyzer.ddg(), *types);
    DetectorOptions opts;
    opts.useTypes = types != nullptr;
    const BugDetector detector(analyzer, types, opts);
    const auto reports = detector.runAll();
    std::printf("%zu report(s)%s\n", reports.size(),
                types ? " (type-assisted)" : " (no types)");
    Module &module = analyzer.module();
    for (const BugReport &r : reports) {
        const FuncId in_func =
            module.block(module.inst(r.sinkSite).parent).func;
        std::printf("  [%s] in @%s: %s\n", checkerName(r.kind),
                    std::string(module.str(
                        module.func(in_func).name)).c_str(),
                    r.message.c_str());
    }
    analyzer.ddg().resetPruning();
}

int
runServe(int argc, char **argv)
{
    std::string socket_path;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
            socket_path = argv[++i];
        } else {
            return usage();
        }
    }
    serve::Service service;
    if (!socket_path.empty())
        return serve::runUnixServer(service, socket_path);
    return serve::runStdioServer(service);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && std::strcmp(argv[1], "--help") == 0) {
        std::printf("%s", serve::cliHelpText().c_str());
        return 0;
    }
    if (argc >= 2 && std::strcmp(argv[1], "serve") == 0)
        return runServe(argc, argv);
    if (argc != 3)
        return usage();
    const std::string text = readInput(argv[1]);
    const std::string mode = argv[2];

    Module module;
    std::string error;
    if (!parseModule(text, module, error)) {
        std::fprintf(stderr, "manta_cli: parse error: %s\n",
                     error.c_str());
        return 1;
    }
    makeAcyclic(module);
    MantaAnalyzer analyzer(module, HybridConfig::full());

    if (mode == "types") {
        const InferenceResult types = analyzer.infer();
        std::printf("%s", annotateModule(module, types).c_str());
    } else if (mode == "bugs") {
        const InferenceResult types = analyzer.infer();
        printBugs(analyzer, &types);
    } else if (mode == "bugs-notype") {
        printBugs(analyzer, nullptr);
    } else if (mode == "lint" || mode == "lint-notype" ||
               mode == "lint-sarif") {
        const InferenceResult types = analyzer.infer();
        const lint::LintResult result =
            lint::runLint(analyzer,
                          mode == "lint-notype" ? nullptr : &types,
                          nullptr, lint::LintOptions{});
        if (mode == "lint-sarif") {
            lint::SarifRun run;
            run.artifact = argv[1];
            run.diagnostics = result.diagnostics;
            std::printf("%s", lint::sarifLog({run}, result.rules).c_str());
        } else {
            std::printf("%zu diagnostic(s)%s\n", result.diagnostics.size(),
                        mode == "lint" ? " (type-assisted)"
                                       : " (no types)");
            std::printf(
                "%s",
                lint::DiagnosticEngine::renderText(result.diagnostics)
                    .c_str());
        }
    } else if (mode == "icall") {
        InferenceResult types = analyzer.infer();
        const IcallAnalysis analysis(module, &types);
        const IcallResult result =
            analysis.run(IcallDiscipline::FullTypes);
        std::printf("%zu indirect call site(s), AICT %.1f\n",
                    result.numSites(), result.aict());
        for (const auto &[site, targets] : result.targets) {
            const FuncId in_func =
                module.block(module.inst(site).parent).func;
            std::printf("  in @%s ->",
                        std::string(module.str(
                            module.func(in_func).name)).c_str());
            for (const FuncId t : targets) {
                std::printf(" @%s",
                            std::string(module.str(
                                module.func(t).name)).c_str());
            }
            std::printf("\n");
        }
    } else if (mode == "stats") {
        const InferenceResult types = analyzer.infer();
        const StageStats stats = types.finalStats();
        const InferenceProfile &prof = types.profile();
        std::printf("variables: %zu precise, %zu over-approximated, "
                    "%zu unknown\n",
                    stats.precise, stats.over, stats.unknown);
        std::printf("stages: FI left %zu over; CS resolved %zu; FS "
                    "resolved %zu, lost %zu\n",
                    prof.fiOver, prof.csResolved, prof.fsResolved,
                    prof.fsLost);
        std::printf("hints: %zu; time: %.3fs\n", prof.hintCount,
                    prof.seconds);
    } else if (mode == "run") {
        Interpreter interp(module);
        const InterpResult r = interp.runMain();
        std::printf("steps: %zu, completed: %s, return: %lld\n", r.steps,
                    r.completed ? "yes" : "no",
                    static_cast<long long>(r.returnValue));
        for (const RuntimeEvent &e : r.events)
            std::printf("  runtime event: %s\n", e.detail.c_str());
    } else {
        return usage();
    }
    return 0;
}
