/**
 * @file
 * Quickstart: parse a textual MIR module (the union example from the
 * paper's Figure 3), run the hybrid-sensitive inference, and print
 * what each stage concluded for the interesting variables.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "analysis/acyclic.h"
#include "core/pipeline.h"
#include "mir/parser.h"
#include "mir/printer.h"

using namespace manta;

namespace {

// Figure 3 of the paper: a stack slot holds a union instantiated as a
// long in one branch and as a char* in the other.
const char *kProgram = R"(
string @msg "hello world"

func @main(%argc:64) {
entry:
  %slot = alloca 8
  %cond = icmp.eq %argc, 0:64
  br %cond, then, else
then:
  store %slot, 1234:64
  %i = load.64 %slot
  %r1 = call.32 @print_int(%i)
  jmp done
else:
  store %slot, @msg
  %s = load.64 %slot
  %r2 = call.32 @print_str(%s)
  jmp done
done:
  ret
}
)";

ValueId
findValue(const Module &module, const char *name)
{
    for (std::size_t v = 0; v < module.numValues(); ++v) {
        const ValueId vid(static_cast<ValueId::RawType>(v));
        if (module.str(module.value(vid).name) == name)
            return vid;
    }
    return ValueId::invalid();
}

void
show(const Module &module, const InferenceResult &result, const char *name)
{
    const TypeTable &tt = module.types();
    const ValueId v = findValue(module, name);
    const BoundPair bp = result.valueBounds(v);
    const char *cls = "unknown";
    switch (result.valueClass(v)) {
      case TypeClass::Precise: cls = "precise"; break;
      case TypeClass::Over: cls = "over-approximated"; break;
      case TypeClass::Unknown: cls = "unknown"; break;
    }
    std::printf("  %%%-6s %-18s F-down=%-12s F-up=%s\n", name, cls,
                tt.toString(bp.lower).c_str(),
                tt.toString(bp.upper).c_str());
}

} // namespace

int
main()
{
    std::printf("Manta quickstart: inferring types for the paper's "
                "Figure 3 program\n\n%s\n", kProgram);

    Module module = parseModuleOrDie(kProgram);
    makeAcyclic(module); // Section 3 preprocessing

    MantaAnalyzer analyzer(module, HybridConfig::full());

    std::printf("--- flow-insensitive stage only (Manta-FI) ---\n");
    const InferenceResult fi = analyzer.infer(HybridConfig::fiOnly());
    show(module, fi, "i");
    show(module, fi, "s");
    std::printf("  (the union's conflicting hints join to reg64: "
                "over-approximated)\n\n");

    std::printf("--- full hybrid pipeline (Manta-FI+CS+FS) ---\n");
    const InferenceResult full = analyzer.infer();
    show(module, full, "i");
    show(module, full, "s");

    // Site-sensitive view: the type of each load at its consuming call.
    const ValueId i = findValue(module, "i");
    const ValueId s = findValue(module, "s");
    const TypeTable &tt = module.types();
    for (std::size_t k = 0; k < module.numInsts(); ++k) {
        const InstId iid(static_cast<InstId::RawType>(k));
        const Instruction &inst = module.inst(iid);
        if (inst.op != Opcode::Call || !inst.external.valid())
            continue;
        for (const ValueId arg : module.operands(inst)) {
            if (arg != i && arg != s)
                continue;
            const BoundPair bp = full.siteBounds(arg, iid);
            std::printf("  at call @%s: %%%s is %s\n",
                        std::string(module.str(
                            module.external(inst.external).name)).c_str(),
                        std::string(module.str(
                            module.value(arg).name)).c_str(),
                        tt.toString(bp.upper).c_str());
        }
    }
    std::printf("\nThe flow-sensitive stage recovered the per-site "
                "types the union hides.\n");
    return 0;
}
