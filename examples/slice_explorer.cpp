/**
 * @file
 * Slice explorer: demonstrates type-based data-dependency pruning
 * (Section 5.2) on the paper's Figure 4(c) false-positive NPD - shows
 * the DDG edges before and after pruning and the resulting reports.
 *
 * Usage: ./build/examples/slice_explorer
 */
#include <cstdio>

#include "analysis/acyclic.h"
#include "clients/checkers.h"
#include "clients/ddg_prune.h"
#include "core/pipeline.h"
#include "mir/parser.h"
#include "mir/printer.h"

using namespace manta;

namespace {

// Figure 4(c): a zero that is an arithmetic offset, not a pointer.
const char *kProgram = R"(
string @key "path"

func @checkstr(%pchr:64) {
entry:
  %c = load.8 %pchr
  ret
}
func @parse(%which:1) {
entry:
  %s = call.64 @nvram_get(@key)
  br %which, with_offset, without
with_offset:
  %o1 = copy 4:64
  jmp use
without:
  %o2 = copy 0:64
  jmp use
use:
  %offset = phi [%o1, with_offset], [%o2, without]
  %scaled = mul %offset, 1:64
  %p = add %s, %scaled
  %r = call.32 @checkstr(%p)
  ret
}
)";

void
dumpArithEdges(const Module &module, const Ddg &ddg)
{
    for (std::uint32_t i = 0; i < ddg.numEdges(); ++i) {
        const Ddg::Edge &e = ddg.edge(i);
        if (e.kind != DepKind::PtrArith)
            continue;
        std::printf("  %-8s -> %-8s  %s\n",
                    printValueRef(module, e.from).c_str(),
                    printValueRef(module, e.to).c_str(),
                    e.pruned ? "PRUNED" : "kept");
    }
}

} // namespace

int
main()
{
    Module module = parseModuleOrDie(kProgram);
    makeAcyclic(module);
    MantaAnalyzer analyzer(module, HybridConfig::full());

    std::printf("Arithmetic data dependencies before pruning:\n");
    dumpArithEdges(module, analyzer.ddg());

    // Untyped detection first: the zero-offset path produces a false
    // NPD (it reaches the dereference through the add).
    DetectorOptions untyped_opts;
    untyped_opts.useTypes = false;
    const BugDetector untyped(analyzer, nullptr, untyped_opts);
    std::printf("\nWithout types: %zu NPD report(s) - the Figure 4(c) "
                "false positive.\n",
                untyped.run(CheckerKind::NPD).size());

    // Now infer, prune per Table 2, and re-run.
    InferenceResult types = analyzer.infer();
    const PruneStats stats = pruneInfeasibleDeps(analyzer.ddg(), types);
    std::printf("\nAfter inference: pruned %zu of %zu arithmetic "
                "edges:\n", stats.pruned, stats.examined);
    dumpArithEdges(module, analyzer.ddg());

    const BugDetector typed(analyzer, &types, DetectorOptions{});
    std::printf("\nWith types: %zu NPD report(s) - the offset edge is "
                "gone, so the zero\nnever reaches the dereference.\n",
                typed.run(CheckerKind::NPD).size());
    return 0;
}
