/**
 * @file
 * Indirect-call resolution: build a dispatch-table program, then
 * compare the target sets produced by the three disciplines of
 * Section 5.1 - argument count (TypeArmor), count+width (tau-CFI) and
 * full inferred types (Manta).
 *
 * Usage: ./build/examples/icall_resolution
 */
#include <cstdio>

#include "analysis/acyclic.h"
#include "clients/icall.h"
#include "core/pipeline.h"
#include "mir/parser.h"

using namespace manta;

namespace {

const char *kProgram = R"(
string @name "eth0"

func @handle_int(%v:64) {
entry:
  %r = call.32 @print_int(%v)
  ret 0:64
}
func @handle_str(%p:64) {
entry:
  %r = call.32 @print_str(%p)
  ret 0:64
}
func @handle_pair(%a:64, %b:64) {
entry:
  %sum = add %a, %b
  ret %sum
}
func @dispatch_int(%table:64) {
entry:
  %fn = load.64 %table
  %n = mul 21:64, 2:64
  %r = icall.64 %fn(%n)
  ret
}
func @dispatch_str(%table:64) {
entry:
  %fn = load.64 %table
  %r = icall.64 %fn(@name)
  ret
}
func @main() {
entry:
  %t1 = alloca 8
  store %t1, @handle_int
  %t2 = alloca 8
  store %t2, @handle_str
  %keep = copy @handle_pair
  %r1 = call.32 @dispatch_int(%t1)
  %r2 = call.32 @dispatch_str(%t2)
  ret
}
)";

} // namespace

int
main()
{
    Module module = parseModuleOrDie(kProgram);
    makeAcyclic(module);
    MantaAnalyzer analyzer(module, HybridConfig::full());
    InferenceResult types = analyzer.infer();

    const IcallAnalysis analysis(module, &types);
    std::printf("Address-taken candidates: %zu\n",
                module.addressTakenFuncs().size());

    struct Run
    {
        const char *label;
        IcallDiscipline discipline;
    };
    const Run runs[] = {
        {"TypeArmor (arg count)", IcallDiscipline::ArgCount},
        {"tau-CFI   (count+width)", IcallDiscipline::ArgCountWidth},
        {"Manta     (full types)", IcallDiscipline::FullTypes},
    };

    for (const Run &run : runs) {
        const IcallResult result = analysis.run(run.discipline);
        std::printf("\n%s - AICT %.1f\n", run.label, result.aict());
        for (const auto &[site, targets] : result.targets) {
            const Instruction &inst = module.inst(site);
            const FuncId in_func = module.block(inst.parent).func;
            std::printf("  icall in @%s ->",
                        std::string(module.str(
                            module.func(in_func).name)).c_str());
            for (const FuncId t : targets) {
                std::printf(" @%s",
                            std::string(module.str(
                                module.func(t).name)).c_str());
            }
            std::printf("\n");
        }
    }

    std::printf("\nOnly the full-type discipline separates the int and "
                "string dispatch sites\n(the paper's Figure 3(c) -> "
                "Figure 8 refinement).\n");
    return 0;
}
