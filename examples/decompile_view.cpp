/**
 * @file
 * Decompiler view: the paper's "Application Scope" observes that
 * inferred types can raise decompilation quality. This example parses
 * a small stripped program and prints it twice - as a raw width-only
 * listing, then annotated with recovered types and C-like signatures.
 *
 * Usage: ./build/examples/decompile_view
 */
#include <cstdio>

#include "analysis/acyclic.h"
#include "clients/annotate.h"
#include "core/pipeline.h"
#include "mir/parser.h"
#include "mir/printer.h"

using namespace manta;

namespace {

const char *kProgram = R"(
string @greeting "hello, %s"

func @format_name(%dst:64, %name:64) {
entry:
  %r1 = call.64 @strcpy(%dst, @greeting)
  %r2 = call.64 @strcat(%dst, %name)
  %n = call.64 @strlen(%dst)
  ret %n
}
func @scale(%x:64, %k:64) {
entry:
  %m = mul %x, %k
  %half = div %m, 2:64
  ret %half
}
func @main() {
entry:
  %buf = call.64 @malloc(64:64)
  %len = call.64 @format_name(%buf, @greeting)
  %v = call.64 @scale(%len, 3:64)
  %r = call.32 @print_int(%v)
  ret
}
)";

} // namespace

int
main()
{
    Module module = parseModuleOrDie(kProgram);
    makeAcyclic(module);

    std::printf("=== Raw stripped listing (what a lifter gives you) "
                "===\n\n%s\n", printModule(module).c_str());

    MantaAnalyzer analyzer(module, HybridConfig::full());
    const InferenceResult types = analyzer.infer();

    std::printf("=== Recovered signatures ===\n\n");
    for (const FuncId fid : module.funcIds()) {
        std::printf("  %s\n",
                    recoveredSignature(module, fid, types).c_str());
    }

    std::printf("\n=== Annotated listing ===\n\n%s",
                annotateModule(module, types).c_str());
    return 0;
}
