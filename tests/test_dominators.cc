/**
 * @file
 * Tests for dominator computation and the SSA dominance discipline
 * check, including the property that generated programs (before and
 * after acyclic preprocessing) respect SSA dominance.
 */
#include <gtest/gtest.h>

#include "analysis/acyclic.h"
#include "analysis/dominators.h"
#include "frontend/corpus.h"
#include "frontend/generator.h"
#include "mir/parser.h"

namespace manta {
namespace {

TEST(Dominators, DiamondStructure)
{
    const Module m = parseModuleOrDie(R"(
func @f(%a:64) {
entry:
  %c = icmp.eq %a, 0:64
  br %c, left, right
left:
  jmp done
right:
  jmp done
done:
  ret
}
)");
    const FuncId fid = m.findFunc("f");
    const Function &fn = m.func(fid);
    const Dominators dom(m, fid);
    const BlockId entry = fn.blocks[0];
    const BlockId left = fn.blocks[1];
    const BlockId right = fn.blocks[2];
    const BlockId done = fn.blocks[3];

    EXPECT_FALSE(dom.idom(entry).valid());
    EXPECT_EQ(dom.idom(left), entry);
    EXPECT_EQ(dom.idom(right), entry);
    EXPECT_EQ(dom.idom(done), entry); // join dominated by the branch

    EXPECT_TRUE(dom.dominates(entry, done));
    EXPECT_TRUE(dom.dominates(entry, entry));
    EXPECT_FALSE(dom.dominates(left, done));
    EXPECT_FALSE(dom.dominates(left, right));
}

TEST(Dominators, ChainDominance)
{
    const Module m = parseModuleOrDie(R"(
func @f() {
entry:
  jmp a
a:
  jmp b
b:
  ret
}
)");
    const FuncId fid = m.findFunc("f");
    const Function &fn = m.func(fid);
    const Dominators dom(m, fid);
    EXPECT_EQ(dom.idom(fn.blocks[1]), fn.blocks[0]);
    EXPECT_EQ(dom.idom(fn.blocks[2]), fn.blocks[1]);
    EXPECT_TRUE(dom.dominates(fn.blocks[0], fn.blocks[2]));
}

TEST(Dominators, UnreachableBlocksExcluded)
{
    Module m = parseModuleOrDie(R"(
func @f() {
entry:
  ret
island:
  ret
}
)");
    const FuncId fid = m.findFunc("f");
    const Function &fn = m.func(fid);
    const Dominators dom(m, fid);
    EXPECT_TRUE(dom.reachable(fn.blocks[0]));
    EXPECT_FALSE(dom.reachable(fn.blocks[1]));
    EXPECT_FALSE(dom.dominates(fn.blocks[0], fn.blocks[1]));
}

TEST(SsaDominance, CleanProgramPasses)
{
    const Module m = parseModuleOrDie(R"(
func @f(%a:64) {
entry:
  %x = add %a, 1:64
  %c = icmp.lt %x, 10:64
  br %c, then, else
then:
  %y = add %x, 2:64
  jmp done
else:
  %z = add %x, 3:64
  jmp done
done:
  %m = phi [%y, then], [%z, else]
  ret %m
}
)");
    EXPECT_TRUE(checkSsaDominance(m).empty());
}

TEST(SsaDominance, CatchesCrossBranchUse)
{
    // %y defined in `then` used in `else`: not dominating.
    const Module m = parseModuleOrDie(R"(
func @f(%a:64) {
entry:
  %c = icmp.lt %a, 10:64
  br %c, then, els
then:
  %y = add %a, 2:64
  jmp done
els:
  %w = add %y, 3:64
  jmp done
done:
  ret
}
)");
    const auto errors = checkSsaDominance(m);
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("%y"), std::string::npos);
}

TEST(SsaDominance, PhiOperandsCheckedAgainstEdges)
{
    // The phi legitimately merges per-branch definitions.
    const Module m = parseModuleOrDie(R"(
func @f(%c:1) {
entry:
  br %c, a, b
a:
  %x = add 1:64, 2:64
  jmp done
b:
  %y = add 3:64, 4:64
  jmp done
done:
  %m = phi [%x, a], [%y, b]
  ret %m
}
)");
    EXPECT_TRUE(checkSsaDominance(m).empty());
}

class DominanceSweep : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(DominanceSweep, GeneratedProgramsRespectSsa)
{
    GenConfig cfg;
    cfg.seed = GetParam();
    cfg.numFunctions = 18;
    cfg.realBugRate = 0.1;
    cfg.decoyRate = 0.1;
    GeneratedProgram prog = generateProgram(cfg);
    auto errors = checkSsaDominance(*prog.module);
    EXPECT_TRUE(errors.empty())
        << (errors.empty() ? "" : errors.front());

    makeAcyclic(*prog.module);
    errors = checkSsaDominance(*prog.module);
    EXPECT_TRUE(errors.empty())
        << "post-acyclic: " << (errors.empty() ? "" : errors.front());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominanceSweep,
                         ::testing::Values(71ull, 72ull, 73ull, 74ull));

} // namespace
} // namespace manta
