/**
 * @file
 * Tests for the type-assisted clients: indirect-call pruning
 * (Section 5.1), DDG pruning (Section 5.2, Table 2) and the five
 * source-sink checkers (Section 5.3), including the paper's false
 * positive mechanisms and their type-based suppression.
 */
#include <gtest/gtest.h>

#include "analysis/acyclic.h"
#include "clients/checkers.h"
#include "clients/ddg_prune.h"
#include "clients/icall.h"
#include "core/pipeline.h"
#include "mir/parser.h"

namespace manta {
namespace {

class ClientTest : public ::testing::Test
{
  protected:
    void
    load(const std::string &text,
         HybridConfig config = HybridConfig::full())
    {
        module_ = parseModuleOrDie(text);
        makeAcyclic(module_);
        analyzer_ = std::make_unique<MantaAnalyzer>(module_, config);
        result_ = std::make_unique<InferenceResult>(analyzer_->infer());
    }

    std::vector<BugReport>
    detect(CheckerKind kind, bool use_types)
    {
        DetectorOptions opts;
        opts.useTypes = use_types;
        if (use_types)
            pruneInfeasibleDeps(analyzer_->ddg(), *result_);
        const BugDetector detector(
            *analyzer_, use_types ? result_.get() : nullptr, opts);
        auto reports = detector.run(kind);
        analyzer_->ddg().resetPruning();
        return reports;
    }

    FuncId fn(const std::string &name) { return module_.findFunc(name); }

    Module module_;
    std::unique_ptr<MantaAnalyzer> analyzer_;
    std::unique_ptr<InferenceResult> result_;
};

// ---------------------------------------------------------------------
// Indirect-call analysis.
// ---------------------------------------------------------------------

// Figure 3(c): an indirect call passing an int64 argument and one
// passing char*; targets take int64, char*, or two args.
const char *kIcallProgram = R"(
string @msg "hi"
func @takes_int(%x:64) {
entry:
  %r = call.32 @print_int(%x)
  ret
}
func @takes_str(%p:64) {
entry:
  %r = call.32 @print_str(%p)
  ret
}
func @takes_two(%a:64, %b:64) {
entry:
  ret
}
func @main(%sel:64) {
entry:
  %fi = copy @takes_int
  %fs = copy @takes_str
  %ft = copy @takes_two
  %r1 = call.32 @icaller_int(%fi)
  %r2 = call.32 @icaller_str(%fs)
  ret
}
func @icaller_int(%t:64) {
entry:
  %v = copy 1234:64
  %n = mul %v, 2:64
  icall.32 %t(%n)
  ret
}
func @icaller_str(%t:64) {
entry:
  icall.32 %t(@msg)
  ret
}
)";

TEST_F(ClientTest, ArgCountDisciplineKeepsAllUnaryTargets)
{
    load(kIcallProgram);
    const IcallAnalysis analysis(module_, result_.get());
    const IcallResult r = analysis.run(IcallDiscipline::ArgCount);
    ASSERT_EQ(r.numSites(), 2u);
    // Both unary functions are feasible everywhere; the binary one is
    // excluded by the argument count rule.
    for (const auto &[site, targets] : r.targets) {
        EXPECT_EQ(targets.size(), 2u);
        for (const FuncId t : targets)
            EXPECT_NE(t, fn("takes_two"));
    }
}

TEST_F(ClientTest, FullTypesPrunesIncompatibleTargets)
{
    load(kIcallProgram);
    const IcallAnalysis analysis(module_, result_.get());
    const IcallResult r = analysis.run(IcallDiscipline::FullTypes);
    ASSERT_EQ(r.numSites(), 2u);
    // The int-argument call site must exclude takes_str and vice versa.
    for (const auto &[site, targets] : r.targets) {
        ASSERT_EQ(targets.size(), 1u) << "site " << site.raw();
    }
    EXPECT_LT(r.aict(), 2.0);
}

TEST_F(ClientTest, AictAveragesTargetCounts)
{
    load(kIcallProgram);
    const IcallAnalysis analysis(module_, result_.get());
    const IcallResult count = analysis.run(IcallDiscipline::ArgCount);
    EXPECT_DOUBLE_EQ(count.aict(), 2.0);
    const IcallResult full = analysis.run(IcallDiscipline::FullTypes);
    EXPECT_DOUBLE_EQ(full.aict(), 1.0);
}

TEST_F(ClientTest, WidthDisciplineBetweenCountAndTypes)
{
    load(kIcallProgram);
    const IcallAnalysis analysis(module_, result_.get());
    const double count_aict =
        analysis.run(IcallDiscipline::ArgCount).aict();
    const double width_aict =
        analysis.run(IcallDiscipline::ArgCountWidth).aict();
    const double type_aict =
        analysis.run(IcallDiscipline::FullTypes).aict();
    EXPECT_LE(type_aict, width_aict);
    EXPECT_LE(width_aict, count_aict);
}

// ---------------------------------------------------------------------
// DDG pruning (Table 2).
// ---------------------------------------------------------------------

TEST_F(ClientTest, PrunesOffsetToPointerDependency)
{
    // p = base + offset, p dereferenced: the offset -> p edge must go.
    load(R"(
func @f(%offset:64) {
entry:
  %base = call.64 @malloc(64:64)
  %n = mul %offset, 8:64
  %p = add %base, %n
  %v = load.8 %p
  ret
}
)");
    const PruneStats stats = pruneInfeasibleDeps(analyzer_->ddg(), *result_);
    EXPECT_GT(stats.examined, 0u);
    EXPECT_GE(stats.pruned, 1u);
    // The pruned edge is n -> p, not base -> p.
    const Ddg &ddg = analyzer_->ddg();
    for (std::uint32_t i = 0; i < ddg.numEdges(); ++i) {
        const auto &e = ddg.edge(i);
        if (e.kind != DepKind::PtrArith)
            continue;
        const std::string from(module_.str(module_.value(e.from).name));
        if (from == "base") {
            EXPECT_FALSE(e.pruned);
        }
        if (from == "n") {
            EXPECT_TRUE(e.pruned);
        }
    }
}

TEST_F(ClientTest, KeepsAmbiguousArithDependencies)
{
    // Without type evidence neither operand can be pruned.
    load(R"(
func @f(%a:64, %b:64) {
entry:
  %c = add %a, %b
  ret %c
}
)");
    const PruneStats stats = pruneInfeasibleDeps(analyzer_->ddg(), *result_);
    EXPECT_EQ(stats.pruned, 0u);
}

// ---------------------------------------------------------------------
// Checkers.
// ---------------------------------------------------------------------

TEST_F(ClientTest, NpdDetectsNullFlowToDeref)
{
    load(R"(
func @f(%c:1) {
entry:
  %slot = alloca 8
  %h = call.64 @malloc(8:64)
  br %c, some, none
some:
  store %slot, %h
  jmp use
none:
  store %slot, 0:64
  jmp use
use:
  %p = load.64 %slot
  %v = load.32 %p
  ret
}
)");
    const auto reports = detect(CheckerKind::NPD, true);
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].kind, CheckerKind::NPD);
}

TEST_F(ClientTest, NpdFalsePositiveKilledByPruning)
{
    // Figure 4(c): zero flows only as an arithmetic offset; with type
    // pruning the offset -> pointer edge disappears.
    load(R"(
func @use(%pchr:64) {
entry:
  %v = load.8 %pchr
  ret
}
func @f(%c:1, %s:64) {
entry:
  %str = call.64 @nvram_get(@key)
  br %c, a, b
a:
  %off1 = copy 4:64
  jmp go
b:
  %off2 = copy 0:64
  jmp go
go:
  %off = phi [%off1, a], [%off2, b]
  %q = mul %off, 1:64
  %p = add %str, %q
  %r = call.32 @use(%p)
  ret
}
string @key "k"
)");
    const auto with_types = detect(CheckerKind::NPD, true);
    EXPECT_TRUE(with_types.empty());
    const auto without = detect(CheckerKind::NPD, false);
    EXPECT_FALSE(without.empty());
}

TEST_F(ClientTest, RsaDetectsReturnedStackAddress)
{
    load(R"(
func @bad() {
entry:
  %buf = alloca 32
  ret %buf
}
func @good() {
entry:
  %h = call.64 @malloc(32:64)
  ret %h
}
)");
    const auto reports = detect(CheckerKind::RSA, true);
    ASSERT_EQ(reports.size(), 1u);
    const Instruction &sink = module_.inst(reports[0].sinkSite);
    EXPECT_EQ(module_.block(sink.parent).func, fn("bad"));
}

TEST_F(ClientTest, UafDetectsUseAfterFree)
{
    load(R"(
func @f() {
entry:
  %h = call.64 @malloc(16:64)
  %v1 = load.32 %h
  call @free(%h)
  %v2 = load.32 %h
  ret
}
)");
    const auto reports = detect(CheckerKind::UAF, true);
    ASSERT_EQ(reports.size(), 1u);
    // The reported use must be the post-free load, not the first one.
    const Instruction &sink = module_.inst(reports[0].sinkSite);
    EXPECT_EQ(sink.op, Opcode::Load);
}

TEST_F(ClientTest, UafRespectsControlFlowOrder)
{
    // Use strictly before the free: no report.
    load(R"(
func @f() {
entry:
  %h = call.64 @malloc(16:64)
  %v1 = load.32 %h
  call @free(%h)
  ret
}
)");
    EXPECT_TRUE(detect(CheckerKind::UAF, true).empty());
}

TEST_F(ClientTest, UafDetectsDoubleFree)
{
    load(R"(
func @f() {
entry:
  %h = call.64 @malloc(16:64)
  call @free(%h)
  call @free(%h)
  ret
}
)");
    const auto reports = detect(CheckerKind::UAF, true);
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_NE(reports[0].message.find("double free"), std::string::npos);
}

TEST_F(ClientTest, CmiDetectsTaintToSystem)
{
    load(R"(
string @key "cmd"
func @f() {
entry:
  %t = call.64 @nvram_get(@key)
  %r = call.32 @system(%t)
  ret
}
)");
    const auto reports = detect(CheckerKind::CMI, true);
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].kind, CheckerKind::CMI);
}

TEST_F(ClientTest, CmiSanitizedByAtoiSuppressedWithTypes)
{
    // The SaTC false-positive class: the tainted string is converted
    // to an integer before any command is built.
    load(R"(
string @key "port"
string @fmt "restart %d"
func @f() {
entry:
  %t = call.64 @nvram_get(@key)
  %n = call.32 @atoi(%t)
  %buf = alloca 64
  %r = call.32 @snprintf(%buf, 64:64, @fmt)
  %w = zext.64 %n
  %r2 = call.32 @system(%buf)
  ret
}
)");
    // With types: atoi's precisely-numeric result is a barrier, and
    // the command buffer content never derives from the taint.
    const auto with_types = detect(CheckerKind::CMI, true);
    EXPECT_TRUE(with_types.empty());
}

TEST_F(ClientTest, CmiThroughBufferCopy)
{
    load(R"(
string @key "cmd"
func @f() {
entry:
  %t = call.64 @nvram_get(@key)
  %buf = alloca 128
  %r = call.64 @strcpy(%buf, %t)
  %r2 = call.32 @system(%buf)
  ret
}
)");
    const auto reports = detect(CheckerKind::CMI, true);
    ASSERT_GE(reports.size(), 1u);
}

TEST_F(ClientTest, BofDetectsUnboundedTaintedCopy)
{
    load(R"(
string @key "name"
func @f() {
entry:
  %t = call.64 @nvram_get(@key)
  %buf = alloca 16
  %r = call.64 @strcpy(%buf, %t)
  ret
}
)");
    const auto reports = detect(CheckerKind::BOF, true);
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_NE(reports[0].message.find("unbounded"), std::string::npos);
}

TEST_F(ClientTest, BofBoundedCopyWithinSizeIsClean)
{
    load(R"(
string @key "name"
func @f() {
entry:
  %t = call.64 @nvram_get(@key)
  %buf = alloca 64
  %r = call.64 @strncpy(%buf, %t, 32:64)
  ret
}
)");
    EXPECT_TRUE(detect(CheckerKind::BOF, true).empty());
}

TEST_F(ClientTest, BofOversizedMemcpyDetected)
{
    load(R"(
string @key "blob"
func @f() {
entry:
  %t = call.64 @nvram_get(@key)
  %buf = alloca 16
  %r = call.64 @memcpy(%buf, %t, 256:64)
  ret
}
)");
    const auto reports = detect(CheckerKind::BOF, true);
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_NE(reports[0].message.find("exceeds"), std::string::npos);
}

// ---------------------------------------------------------------------
// False-positive barriers: for each paper checker, a case where the
// untyped ablation fires and type assistance suppresses the report.
// ---------------------------------------------------------------------

TEST_F(ClientTest, RsaPointerDifferenceSuppressedWithTypes)
{
    // A pointer difference derived from a stack address flows to the
    // return. Type pruning cuts both PtrArith edges at the Sub (the
    // result is numeric, the operands are pointers), so the typed
    // slice never reaches the return; the untyped slice does.
    load(R"(
func @f() {
entry:
  %buf = alloca 32
  store %buf, 7:64
  %mid = add %buf, 16:64
  %v = load.8 %mid
  %len = sub %mid, %buf
  %r = call.32 @print_int(%len)
  ret %len
}
)");
    const auto with_types = detect(CheckerKind::RSA, true);
    EXPECT_TRUE(with_types.empty());
    const auto without = detect(CheckerKind::RSA, false);
    EXPECT_FALSE(without.empty());
}

TEST_F(ClientTest, UafOffsetReuseSuppressedWithTypes)
{
    // The freed pointer only contributes a numeric offset to the later
    // dereference (ptr - ptr, then base + offset). Typed pruning cuts
    // the pointer -> difference edge; untyped slicing follows it from
    // the free all the way to the load.
    load(R"(
func @f() {
entry:
  %h = call.64 @malloc(16:64)
  %g = call.64 @malloc(16:64)
  %off = sub %h, %g
  %r = call.32 @print_int(%off)
  call @free(%h)
  %p = add %g, %off
  %v = load.8 %p
  ret
}
)");
    const auto with_types = detect(CheckerKind::UAF, true);
    EXPECT_TRUE(with_types.empty());
    const auto without = detect(CheckerKind::UAF, false);
    EXPECT_FALSE(without.empty());
}

TEST_F(ClientTest, BofSanitizedOffsetSuppressedWithTypes)
{
    // Tainted data is converted to an integer (atoi barrier) before it
    // shapes the copied pointer. With types the precisely-numeric
    // conversion stops the slice; without types the taint "reaches"
    // the unbounded copy's source operand.
    load(R"(
string @key "idx"
func @f() {
entry:
  %t = call.64 @nvram_get(@key)
  %n = call.32 @atoi(%t)
  %w = zext.64 %n
  %src = call.64 @malloc(64:64)
  %p = add %src, %w
  %buf = alloca 16
  %r = call.64 @strcpy(%buf, %p)
  ret
}
)");
    const auto with_types = detect(CheckerKind::BOF, true);
    EXPECT_TRUE(with_types.empty());
    const auto without = detect(CheckerKind::BOF, false);
    EXPECT_FALSE(without.empty());
}

TEST_F(ClientTest, CmiSanitizedOffsetFlipsWithoutTypes)
{
    // Ablation flip for the atoi barrier: the same program is clean
    // with types and reported without them.
    load(R"(
string @key "port"
func @f() {
entry:
  %t = call.64 @nvram_get(@key)
  %n = call.32 @atoi(%t)
  %w = zext.64 %n
  %cmd = call.64 @malloc(64:64)
  %p = add %cmd, %w
  %r = call.32 @system(%p)
  ret
}
)");
    const auto with_types = detect(CheckerKind::CMI, true);
    EXPECT_TRUE(with_types.empty());
    const auto without = detect(CheckerKind::CMI, false);
    EXPECT_FALSE(without.empty());
}

TEST_F(ClientTest, ReportsAreDeterministicallySorted)
{
    // ReportSet::take() orders by (kind, sourceSite, sinkSite), so two
    // identical detector runs produce identical report lists.
    load(R"(
string @key "cmd"
func @f() {
entry:
  %t = call.64 @nvram_get(@key)
  %r = call.32 @system(%t)
  %buf = alloca 8
  %r2 = call.64 @strcpy(%buf, %t)
  %t2 = call.64 @nvram_get(@key)
  %r3 = call.32 @system(%t2)
  ret
}
)");
    DetectorOptions opts;
    const BugDetector detector(*analyzer_, result_.get(), opts);
    const auto first = detector.runAll();
    const auto second = detector.runAll();
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].kind, second[i].kind);
        EXPECT_EQ(first[i].sourceSite, second[i].sourceSite);
        EXPECT_EQ(first[i].sinkSite, second[i].sinkSite);
        if (i > 0) {
            const bool ordered =
                first[i - 1].kind < first[i].kind ||
                (first[i - 1].kind == first[i].kind &&
                 (first[i - 1].sourceSite.raw() <
                      first[i].sourceSite.raw() ||
                  (first[i - 1].sourceSite == first[i].sourceSite &&
                   first[i - 1].sinkSite.raw() <
                       first[i].sinkSite.raw())));
            EXPECT_TRUE(ordered) << "report " << i << " out of order";
        }
    }
}

TEST_F(ClientTest, RunAllAggregatesCheckers)
{
    load(R"(
string @key "cmd"
func @f() {
entry:
  %t = call.64 @nvram_get(@key)
  %r = call.32 @system(%t)
  %buf = alloca 8
  %r2 = call.64 @strcpy(%buf, %t)
  ret
}
)");
    DetectorOptions opts;
    const BugDetector detector(*analyzer_, result_.get(), opts);
    const auto all = detector.runAll();
    EXPECT_GE(all.size(), 2u); // CMI + BOF at least
}

TEST_F(ClientTest, TaintThroughIndirectCallOnlyWhenTargetFeasible)
{
    // Taint passes through an indirect call; the type-based analysis
    // keeps the string-taking target, so the report persists, but the
    // integer-only path cannot produce one.
    load(R"(
string @key "cmd"
func @run_cmd(%c:64) {
entry:
  %r = call.32 @system(%c)
  ret
}
func @main() {
entry:
  %t = call.64 @nvram_get(@key)
  %f = copy @run_cmd
  icall.32 %f(%t)
  ret
}
)");
    const auto with_types = detect(CheckerKind::CMI, true);
    EXPECT_EQ(with_types.size(), 1u);
    const auto without = detect(CheckerKind::CMI, false);
    EXPECT_EQ(without.size(), 1u);
}

} // namespace
} // namespace manta
