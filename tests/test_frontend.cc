/**
 * @file
 * Tests for the workload generator, corpus profiles and firmware
 * fleet: structural validity, determinism, ground-truth consistency,
 * and presence of the phenomena the paper's evaluation depends on.
 */
#include <gtest/gtest.h>

#include "analysis/acyclic.h"
#include "core/pipeline.h"
#include "eval/metrics.h"
#include "frontend/corpus.h"
#include "frontend/firmware.h"
#include "frontend/generator.h"
#include "mir/printer.h"
#include "mir/verifier.h"

namespace manta {
namespace {

GenConfig
smallConfig(std::uint64_t seed)
{
    GenConfig cfg;
    cfg.seed = seed;
    cfg.numFunctions = 20;
    cfg.realBugRate = 0.08;
    cfg.decoyRate = 0.08;
    return cfg;
}

TEST(Generator, ProducesVerifiableModules)
{
    for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull}) {
        const GeneratedProgram prog = generateProgram(smallConfig(seed));
        const auto errors = verifyModule(*prog.module);
        EXPECT_TRUE(errors.empty())
            << "seed " << seed << ": " << errors.front();
        EXPECT_GT(prog.module->numInsts(), 100u);
    }
}

TEST(Generator, DeterministicInSeed)
{
    const GeneratedProgram a = generateProgram(smallConfig(99));
    const GeneratedProgram b = generateProgram(smallConfig(99));
    EXPECT_EQ(printModule(*a.module), printModule(*b.module));
    EXPECT_EQ(a.truth.valueTypes.size(), b.truth.valueTypes.size());
}

TEST(Generator, DifferentSeedsDiffer)
{
    const GeneratedProgram a = generateProgram(smallConfig(1));
    const GeneratedProgram b = generateProgram(smallConfig(2));
    EXPECT_NE(printModule(*a.module), printModule(*b.module));
}

TEST(Generator, SurvivesAcyclicPreprocessing)
{
    for (const std::uint64_t seed : {3ull, 17ull, 256ull}) {
        GeneratedProgram prog = generateProgram(smallConfig(seed));
        makeAcyclic(*prog.module);
        const auto errors = verifyModule(*prog.module);
        EXPECT_TRUE(errors.empty())
            << "seed " << seed << ": " << errors.front();
        for (const FuncId fid : prog.module->funcIds()) {
            const Cfg cfg(*prog.module, fid);
            EXPECT_FALSE(cfg.hasCycle());
        }
    }
}

TEST(Generator, GroundTruthCoversParameters)
{
    const GeneratedProgram prog = generateProgram(smallConfig(5));
    std::size_t params = 0, covered = 0;
    for (const FuncId fid : prog.module->funcIds()) {
        for (const ValueId p : prog.module->func(fid).params) {
            ++params;
            covered += prog.truth.typeOf(p).valid();
        }
    }
    EXPECT_GT(params, 10u);
    EXPECT_EQ(params, covered);
}

TEST(Generator, GroundTruthWidthsMatchValues)
{
    const GeneratedProgram prog = generateProgram(smallConfig(6));
    const TypeTable &tt = prog.module->types();
    for (const auto &[v, t] : prog.truth.valueTypes) {
        const int type_width = tt.widthBits(t);
        if (type_width == 0)
            continue; // object types etc.
        EXPECT_EQ(type_width, prog.module->value(v).width)
            << tt.toString(t);
    }
}

TEST(Generator, EmitsBugSeedsAndDecoys)
{
    GenConfig cfg = smallConfig(8);
    cfg.numFunctions = 40;
    cfg.realBugRate = 0.3;
    cfg.decoyRate = 0.3;
    const GeneratedProgram prog = generateProgram(cfg);
    std::size_t real = 0, decoys = 0;
    for (const BugSeed &seed : prog.truth.seeds) {
        real += seed.real;
        decoys += !seed.real;
    }
    EXPECT_GT(real, 0u);
    EXPECT_GT(decoys, 0u);
    // Every seed tag maps to a tagged instruction.
    for (const BugSeed &seed : prog.truth.seeds) {
        bool found = false;
        for (std::size_t i = 0; i < prog.module->numInsts(); ++i) {
            if (prog.module->inst(InstId(InstId::RawType(i))).srcTag ==
                    seed.tag) {
                found = true;
                break;
            }
        }
        EXPECT_TRUE(found) << "tag " << seed.tag;
    }
}

TEST(Generator, IcallSitesHaveGroundTruthTargets)
{
    GenConfig cfg = smallConfig(9);
    cfg.icallRate = 0.6;
    cfg.numFunctions = 40;
    const GeneratedProgram prog = generateProgram(cfg);
    std::size_t icalls = 0;
    for (std::size_t i = 0; i < prog.module->numInsts(); ++i) {
        const Instruction &inst =
            prog.module->inst(InstId(InstId::RawType(i)));
        if (inst.op != Opcode::ICall)
            continue;
        ++icalls;
        ASSERT_NE(inst.srcTag, 0u);
        const auto it = prog.truth.icallTargets.find(inst.srcTag);
        ASSERT_NE(it, prog.truth.icallTargets.end());
        EXPECT_GE(it->second.size(), 1u);
        for (const FuncId target : it->second)
            EXPECT_TRUE(prog.module->func(target).addressTaken);
    }
    EXPECT_GT(icalls, 0u);
}

TEST(Generator, RecallInvariantHolds)
{
    // Soundness-style property: for the full pipeline, the truth type
    // of almost every parameter lies inside the inferred interval
    // (mirrors the paper's 97%+ recall; a small loss from type-unsafe
    // idioms is expected, so assert a high floor rather than 100%).
    GeneratedProgram prog = generateProgram(smallConfig(11));
    makeAcyclic(*prog.module);
    MantaAnalyzer analyzer(*prog.module, HybridConfig::full());
    const InferenceResult result = analyzer.infer();
    const TypeEval eval =
        evalInference(*prog.module, prog.truth, result);
    EXPECT_GT(eval.total, 20u);
    EXPECT_GE(eval.recall(), 0.9);
    EXPECT_GE(eval.precision(), 0.5);
}

TEST(Corpus, HasFourteenProjects)
{
    const auto corpus = standardCorpus();
    ASSERT_EQ(corpus.size(), 14u);
    EXPECT_EQ(corpus.front().name, "vsftpd");
    EXPECT_EQ(corpus.back().name, "ffmpeg");
    // KLoC ordering is ascending like the paper's table.
    for (std::size_t i = 1; i < corpus.size(); ++i)
        EXPECT_GE(corpus[i].kloc, corpus[i - 1].kloc);
}

TEST(Corpus, SeedsAreDistinct)
{
    const auto corpus = standardCorpus();
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        for (std::size_t j = i + 1; j < corpus.size(); ++j)
            EXPECT_NE(corpus[i].config.seed, corpus[j].config.seed);
    }
}

TEST(Corpus, CoreutilsBatchCount)
{
    EXPECT_EQ(coreutilsBatch(104).size(), 104u);
    EXPECT_EQ(coreutilsBatch(5).size(), 5u);
}

TEST(Corpus, BuildsVerifiableProject)
{
    const auto corpus = standardCorpus();
    GeneratedProgram prog = buildProject(corpus[0]);
    EXPECT_TRUE(verifyModule(*prog.module).empty());
}

TEST(Firmware, FleetHasNineModels)
{
    const auto fleet = firmwareFleet();
    ASSERT_EQ(fleet.size(), 9u);
    // The Table 5 NA pattern: Arbiter crashes on six images,
    // cwe_checker on three.
    std::size_t arbiter_na = 0, cwe_na = 0;
    for (const auto &profile : fleet) {
        arbiter_na += profile.arbiterNa;
        cwe_na += profile.cweNa;
    }
    EXPECT_EQ(arbiter_na, 6u);
    EXPECT_EQ(cwe_na, 3u);
}

TEST(Firmware, ImagesCarryInjectedBugs)
{
    const auto fleet = firmwareFleet();
    GeneratedProgram image = buildFirmware(fleet[1]); // small model
    EXPECT_TRUE(verifyModule(*image.module).empty());
    std::size_t real = 0;
    for (const BugSeed &seed : image.truth.seeds)
        real += seed.real;
    EXPECT_GT(real, 5u);
}

// Parameterized sweep: every corpus profile generates, preprocesses
// and verifies cleanly.
class CorpusSweep : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(CorpusSweep, GeneratesAndVerifies)
{
    const auto corpus = standardCorpus();
    ProjectProfile profile = corpus[GetParam()];
    // Shrink for test speed; keeps the feature mix.
    profile.config.numFunctions =
        std::min(profile.config.numFunctions, 40);
    GeneratedProgram prog = buildProject(profile);
    EXPECT_TRUE(verifyModule(*prog.module).empty());
    makeAcyclic(*prog.module);
    EXPECT_TRUE(verifyModule(*prog.module).empty());
}

INSTANTIATE_TEST_SUITE_P(AllProjects, CorpusSweep,
                         ::testing::Range<std::size_t>(0, 14));

} // namespace
} // namespace manta
