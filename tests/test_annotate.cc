/**
 * @file
 * Tests for the typed-listing annotation client and the flow-aware
 * points-to semantics (strong updates, branch separation).
 */
#include <gtest/gtest.h>

#include "analysis/acyclic.h"
#include "clients/annotate.h"
#include "core/pipeline.h"
#include "mir/parser.h"

namespace manta {
namespace {

TEST(Annotate, RecoversSignatures)
{
    Module m = parseModuleOrDie(R"(
func @copy_name(%dst:64, %src:64) {
entry:
  %r = call.64 @strcpy(%dst, %src)
  %n = call.64 @strlen(%dst)
  ret %n
}
)");
    makeAcyclic(m);
    MantaAnalyzer analyzer(m, HybridConfig::full());
    const InferenceResult types = analyzer.infer();
    const std::string sig =
        recoveredSignature(m, m.findFunc("copy_name"), types);
    EXPECT_EQ(sig, "long copy_name(char*, char*)");
}

TEST(Annotate, UnknownsRenderAsUndefined)
{
    Module m = parseModuleOrDie(R"(
func @opaque(%x:64) {
entry:
  %y = copy %x
  ret %y
}
)");
    makeAcyclic(m);
    MantaAnalyzer analyzer(m, HybridConfig::full());
    const InferenceResult types = analyzer.infer();
    const std::string sig =
        recoveredSignature(m, m.findFunc("opaque"), types);
    EXPECT_EQ(sig, "undefined opaque(undefined)");
}

TEST(Annotate, ListingCarriesTypeComments)
{
    Module m = parseModuleOrDie(R"(
func @f() {
entry:
  %h = call.64 @malloc(8:64)
  %n = call.64 @strlen(@s)
  ret %n
}
string @s "abc"
)");
    makeAcyclic(m);
    MantaAnalyzer analyzer(m, HybridConfig::full());
    const InferenceResult types = analyzer.infer();
    const std::string listing = annotateModule(m, types);
    EXPECT_NE(listing.find("; void*"), std::string::npos);
    EXPECT_NE(listing.find("; long"), std::string::npos);
}

TEST(Annotate, PointerDepthRendered)
{
    Module m = parseModuleOrDie(R"(
func @f() {
entry:
  %slot = alloca 8
  %s = copy @lit
  store %slot, %s
  %l = load.64 %slot
  %n = call.64 @strlen(%l)
  ret %n
}
string @lit "x"
)");
    makeAcyclic(m);
    MantaAnalyzer analyzer(m, HybridConfig::full());
    const InferenceResult types = analyzer.infer();
    const std::string listing = annotateModule(m, types);
    // The loaded value is a char*.
    EXPECT_NE(listing.find("char*"), std::string::npos);
}

// ---------------------------------------------------------------------
// Flow-aware points-to semantics.
// ---------------------------------------------------------------------

TEST(FlowAwarePts, BranchStoresDoNotCross)
{
    // Figure 3 shape: the then-load must not observe the else-store.
    Module m = parseModuleOrDie(R"(
func @f(%c:1) {
entry:
  %slot = alloca 8
  %a = call.64 @malloc(8:64)
  %b = call.64 @malloc(8:64)
  br %c, then, else
then:
  store %slot, %a
  %la = load.64 %slot
  jmp done
else:
  store %slot, %b
  %lb = load.64 %slot
  jmp done
done:
  ret
}
)");
    const MemObjects objects(m);
    PointsTo pts(m, objects, /*flow_aware=*/true);
    pts.run();
    auto named = [&](const char *name) {
        for (std::size_t v = 0; v < m.numValues(); ++v) {
            const ValueId vid(static_cast<ValueId::RawType>(v));
            if (m.str(m.value(vid).name) == name)
                return vid;
        }
        return ValueId::invalid();
    };
    EXPECT_EQ(pts.locs(named("la")), pts.locs(named("a")));
    EXPECT_EQ(pts.locs(named("lb")), pts.locs(named("b")));

    // The flow-insensitive configuration merges both.
    PointsTo fi_pts(m, objects, /*flow_aware=*/false);
    fi_pts.run();
    EXPECT_EQ(fi_pts.locs(named("la")).size(), 2u);
}

TEST(FlowAwarePts, StrongUpdateKillsEarlierStore)
{
    Module m = parseModuleOrDie(R"(
func @f() {
entry:
  %slot = alloca 8
  %a = call.64 @malloc(8:64)
  %b = call.64 @malloc(8:64)
  store %slot, %a
  store %slot, %b
  %l = load.64 %slot
  ret
}
)");
    const MemObjects objects(m);
    PointsTo pts(m, objects, /*flow_aware=*/true);
    pts.run();
    ValueId l, b;
    for (std::size_t v = 0; v < m.numValues(); ++v) {
        const ValueId vid(static_cast<ValueId::RawType>(v));
        if (m.str(m.value(vid).name) == "l")
            l = vid;
        if (m.str(m.value(vid).name) == "b")
            b = vid;
    }
    // Only the second store survives the strong update.
    EXPECT_EQ(pts.locs(l), pts.locs(b));
    EXPECT_EQ(pts.locs(l).size(), 1u);
}

TEST(FlowAwarePts, StoreAfterLoadInvisible)
{
    Module m = parseModuleOrDie(R"(
func @f() {
entry:
  %slot = alloca 8
  %l = load.64 %slot
  %a = call.64 @malloc(8:64)
  store %slot, %a
  ret
}
)");
    const MemObjects objects(m);
    PointsTo pts(m, objects, /*flow_aware=*/true);
    pts.run();
    for (std::size_t v = 0; v < m.numValues(); ++v) {
        const ValueId vid(static_cast<ValueId::RawType>(v));
        if (m.str(m.value(vid).name) == "l") {
            EXPECT_TRUE(pts.locs(vid).empty());
        }
    }
}

} // namespace
} // namespace manta
