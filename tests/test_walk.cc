/**
 * @file
 * Unit tests for the context-validated DDG walker (the machinery of
 * Algorithm 1): root finding, CFL rejection of unrealizable paths,
 * pointer-arithmetic feasibility, pruning interaction and budgets.
 */
#include <gtest/gtest.h>

#include "analysis/acyclic.h"
#include "core/ddg_walk.h"
#include "core/pipeline.h"
#include "mir/parser.h"

namespace manta {
namespace {

class WalkTest : public ::testing::Test
{
  protected:
    void
    load(const std::string &text)
    {
        module_ = parseModuleOrDie(text);
        makeAcyclic(module_);
        analyzer_ =
            std::make_unique<MantaAnalyzer>(module_, HybridConfig::full());
        env_ = std::make_unique<TypeEnv>(module_.types());
        FlowInsensitiveInference fi(module_, analyzer_->pts(),
                                    analyzer_->hints());
        fi.run(*env_);
    }

    ValueId
    val(const std::string &name) const
    {
        for (std::size_t v = 0; v < module_.numValues(); ++v) {
            const ValueId vid(static_cast<ValueId::RawType>(v));
            if (module_.str(module_.value(vid).name) == name)
                return vid;
        }
        return ValueId::invalid();
    }

    DdgWalker
    walker(WalkBudget budget = {})
    {
        return DdgWalker(analyzer_->ddg(), env_.get(), module_.types(),
                         budget);
    }

    Module module_;
    std::unique_ptr<MantaAnalyzer> analyzer_;
    std::unique_ptr<TypeEnv> env_;
};

TEST_F(WalkTest, RootOfCopyChainIsTheSource)
{
    load(R"(
func @f() {
entry:
  %h = call.64 @malloc(8:64)
  %a = copy %h
  %b = copy %a
  ret %b
}
)");
    DdgWalker w = walker();
    const auto roots = w.findRoots(val("b"));
    ASSERT_EQ(roots.size(), 1u);
    EXPECT_EQ(roots[0], val("h"));
}

TEST_F(WalkTest, RootlessValueIsItsOwnRoot)
{
    load(R"(
func @f(%x:64) {
entry:
  ret %x
}
)");
    DdgWalker w = walker();
    const auto roots = w.findRoots(val("x"));
    ASSERT_EQ(roots.size(), 1u);
    EXPECT_EQ(roots[0], val("x"));
}

TEST_F(WalkTest, CflRejectsCrossContextReturn)
{
    // The Figure 7 structure: collecting from caller2's constant must
    // not exit through caller1's return edge.
    load(R"(
func @id(%x:64) {
entry:
  ret %x
}
func @caller1() {
entry:
  %h = call.64 @malloc(8:64)
  %r1 = call.64 @id(%h)
  %p1 = call.32 @print_str(%r1)
  ret
}
func @caller2() {
entry:
  %c = copy 42:64
  %r2 = call.64 @id(%c)
  %p2 = call.32 @print_int(%r2)
  ret
}
)");
    DdgWalker w = walker();
    // Roots of r2 stay in caller2 (the constant feeding %c).
    const auto roots = w.findRoots(val("r2"));
    ASSERT_EQ(roots.size(), 1u);
    EXPECT_EQ(module_.value(roots[0]).kind, ValueKind::Constant);
    EXPECT_EQ(module_.value(roots[0]).constValue, 42);
    // Types collected from that root exclude caller1's pointer hints.
    const auto types = w.collectTypes(roots[0], analyzer_->hints());
    TypeTable &tt = module_.types();
    for (const TypeRef t : types)
        EXPECT_FALSE(tt.isPtr(t)) << tt.toString(t);
    EXPECT_FALSE(types.empty());
}

TEST_F(WalkTest, ArithFeasibilityBlocksOffsetEdges)
{
    load(R"(
func @f(%i:64) {
entry:
  %base = call.64 @malloc(64:64)
  %off = mul %i, 8:64
  %p = add %base, %off
  %v = load.8 %p
  ret
}
)");
    DdgWalker w = walker();
    // Backward from p must reach base but never the offset.
    const auto roots = w.findRoots(val("p"));
    for (const ValueId r : roots) {
        EXPECT_NE(r, val("off"));
        EXPECT_NE(r, val("i"));
    }
    // Forward from the offset must not cross into the pointer.
    const auto types = w.collectTypes(val("off"), analyzer_->hints());
    TypeTable &tt = module_.types();
    for (const TypeRef t : types)
        EXPECT_FALSE(tt.isPtr(t)) << tt.toString(t);
}

TEST_F(WalkTest, PrunedEdgesAreSkipped)
{
    load(R"(
func @f() {
entry:
  %h = call.64 @malloc(8:64)
  %a = copy %h
  ret %a
}
)");
    // Prune the copy edge; a's root becomes itself.
    Ddg &ddg = analyzer_->ddg();
    for (std::uint32_t i = 0; i < ddg.numEdges(); ++i) {
        if (ddg.edge(i).to == val("a"))
            ddg.prune(i);
    }
    DdgWalker w = walker();
    const auto roots = w.findRoots(val("a"));
    ASSERT_EQ(roots.size(), 1u);
    EXPECT_EQ(roots[0], val("a"));
    ddg.resetPruning();
}

TEST_F(WalkTest, BudgetTruncatesLargeWalks)
{
    load(R"(
func @f() {
entry:
  %h = call.64 @malloc(8:64)
  %a = copy %h
  %b = copy %a
  %c = copy %b
  %d = copy %c
  ret %d
}
)");
    WalkBudget budget;
    budget.maxVisited = 2;
    DdgWalker w = walker(budget);
    w.findRoots(val("d"));
    EXPECT_TRUE(w.lastQueryTruncated());

    WalkBudget big;
    DdgWalker w2 = walker(big);
    w2.findRoots(val("d"));
    EXPECT_FALSE(w2.lastQueryTruncated());
}

TEST_F(WalkTest, MemoryEdgesJoinAliasClosure)
{
    load(R"(
func @f() {
entry:
  %slot = alloca 8
  %h = call.64 @malloc(8:64)
  store %slot, %h
  %l = load.64 %slot
  ret %l
}
)");
    DdgWalker w = walker();
    const auto roots = w.findRoots(val("l"));
    ASSERT_EQ(roots.size(), 1u);
    EXPECT_EQ(roots[0], val("h"));
}

TEST_F(WalkTest, DerivedValueEdgesAreNotAliases)
{
    // mul results are data, not aliases: the multiplication result is
    // not part of its operand's alias closure.
    load(R"(
func @f(%x:64) {
entry:
  %y = and %x, 255:64
  %z = call.32 @print_int(%y)
  ret
}
)");
    DdgWalker w = walker();
    const auto types = w.collectTypes(val("x"), analyzer_->hints());
    // x itself has no hints (masking reveals nothing); y's int64 print
    // hint must NOT be pulled in through the Ssa (derived) edge.
    EXPECT_TRUE(types.empty());
}

} // namespace
} // namespace manta
