/**
 * @file
 * Headline-claim integration tests: the paper's comparative orderings
 * must hold on scaled-down corpora. These guard the evaluation shape
 * against regressions without running the full bench suite.
 */
#include <gtest/gtest.h>

#include "baselines/bugtools.h"
#include "baselines/typetools.h"
#include "clients/icall.h"
#include "eval/harness.h"

namespace manta {
namespace {

/** A scaled-down project for fast integration runs. */
PreparedProject
smallProject(std::uint64_t seed, int functions = 60)
{
    ProjectProfile profile = standardCorpus()[6]; // openssh mix
    profile.config.seed = seed;
    profile.config.numFunctions = functions;
    return prepareProject(profile);
}

TEST(Claims, HybridStagingOrderingHolds)
{
    // Paper Table 3: precision FS < FI < FI+FS < FI+CS+FS; recall stays
    // high for all groups.
    TypeEval evals[4];
    const HybridConfig configs[4] = {
        HybridConfig::fsOnly(), HybridConfig::fiOnly(),
        HybridConfig::fiFs(), HybridConfig::full()};
    for (const std::uint64_t seed : {301ull, 302ull}) {
        PreparedProject project = smallProject(seed);
        for (int i = 0; i < 4; ++i) {
            const TypeEval one =
                evalInference(project.module(), project.truth(),
                              project.analyzer->infer(configs[i]));
            evals[i].total += one.total;
            evals[i].preciseCorrect += one.preciseCorrect;
            evals[i].captured += one.captured;
            evals[i].unknown += one.unknown;
            evals[i].incorrect += one.incorrect;
        }
    }
    EXPECT_LT(evals[0].precision(), evals[1].precision()); // FS < FI
    EXPECT_LE(evals[1].precision(), evals[2].precision()); // FI <= FI+FS
    EXPECT_LT(evals[2].precision(), evals[3].precision()); // < full
    for (const TypeEval &eval : evals)
        EXPECT_GT(eval.recall(), 0.9);
}

TEST(Claims, MantaBeatsDecompilerBaselines)
{
    TypeEval manta, ghidra, retdec;
    auto accumulate = [](TypeEval &acc, const TypeEval &one) {
        acc.total += one.total;
        acc.preciseCorrect += one.preciseCorrect;
    };
    for (const std::uint64_t seed : {311ull, 312ull}) {
        PreparedProject project = smallProject(seed);
        Module &module = project.module();
        accumulate(manta,
                   evalInference(module, project.truth(),
                                 project.analyzer->infer(
                                     HybridConfig::full())));
        accumulate(ghidra, evalTypeMap(module, project.truth(),
                                       runGhidraLike(module).types));
        accumulate(retdec, evalTypeMap(module, project.truth(),
                                       runRetdecLike(module).types));
    }
    EXPECT_GT(manta.precision(), ghidra.precision());
    EXPECT_GT(manta.precision(), retdec.precision());
}

TEST(Claims, RetdecPrecisionEqualsRecall)
{
    // RetDec never abstains: every variable is committed, so captured
    // coincides with precise-correct and P == R by construction.
    PreparedProject project = smallProject(321);
    const TypeEval eval = evalTypeMap(project.module(), project.truth(),
                                      runRetdecLike(project.module()).types);
    EXPECT_GT(eval.total, 0u);
    EXPECT_DOUBLE_EQ(eval.precision() +
                         double(eval.captured) / double(eval.total),
                     eval.recall());
}

TEST(Claims, TypePruningBeatsCountAndWidth)
{
    // Paper Table 4: Manta's AICT <= tau-CFI's <= TypeArmor's, with
    // near-total recall.
    PreparedProject project = smallProject(331, 80);
    Module &module = project.module();
    InferenceResult types = project.analyzer->infer();
    const IcallAnalysis analysis(module, &types);
    if (analysis.icallSites().empty())
        GTEST_SKIP() << "no indirect calls in this instance";
    const double count = analysis.run(IcallDiscipline::ArgCount).aict();
    const double width =
        analysis.run(IcallDiscipline::ArgCountWidth).aict();
    const double full = analysis.run(IcallDiscipline::FullTypes).aict();
    EXPECT_LE(full, width);
    EXPECT_LE(width, count);

    InferenceResult oracle = oracleInference(project);
    const IcallAnalysis oracle_analysis(module, &oracle);
    const IcallResult reference =
        oracle_analysis.run(IcallDiscipline::FullTypes);
    const IcallEval eval = evalIcall(
        module, analysis.run(IcallDiscipline::FullTypes), reference);
    EXPECT_GT(eval.recall, 0.9);
}

TEST(Claims, TypeAssistanceCutsFirmwareFalsePositives)
{
    // Paper Table 5: Manta's FPR is far below Manta-NoType's, and both
    // are far below the keyword/pattern baselines.
    FirmwareProfile profile = firmwareFleet()[5]; // small image
    PreparedProject project = prepareFirmware(profile);

    InferenceResult types = project.analyzer->infer();
    const BugEval typed =
        evalBugs(detectBugs(project, &types), project.truth());
    const BugEval untyped =
        evalBugs(detectBugs(project, nullptr), project.truth());
    const BugEval satc = evalBugs(
        runSatcLike(*project.analyzer).reports, project.truth());

    EXPECT_LT(typed.fpr(), untyped.fpr());
    EXPECT_LT(untyped.fpr(), satc.fpr());
    // The true bugs stay found.
    EXPECT_GE(typed.realBugsFound + 1, untyped.realBugsFound);
    EXPECT_GT(typed.realBugsFound, 0u);
}

TEST(Claims, ArbiterEmulationReportsNothing)
{
    FirmwareProfile profile = firmwareFleet()[5];
    PreparedProject project = prepareFirmware(profile);
    const BugToolOutcome out = runArbiterLike(*project.analyzer);
    EXPECT_TRUE(out.reports.empty());
}

TEST(Claims, HybridRefinesMostOverApproximations)
{
    // Paper Figure 2(a): most FI-over-approximated variables become
    // precise under the full pipeline.
    PreparedProject project = smallProject(341);
    Module &module = project.module();
    TypeTable &tt = module.types();
    const InferenceResult fi =
        project.analyzer->infer(HybridConfig::fiOnly());
    const InferenceResult full = project.analyzer->infer();

    std::size_t over = 0, refined = 0;
    for (const ValueId v : evaluatedParams(module, project.truth())) {
        const BoundPair bp = fi.valueBounds(v);
        if (bp.classify(tt) != TypeClass::Over)
            continue;
        if (tt.firstLayerEqual(bp.upper, bp.lower))
            continue;
        ++over;
        const BoundPair full_bp = full.valueBounds(v);
        refined += full_bp.classify(tt) != TypeClass::Unknown &&
                   tt.firstLayerEqual(full_bp.upper, full_bp.lower);
    }
    ASSERT_GT(over, 5u);
    EXPECT_GT(static_cast<double>(refined) / static_cast<double>(over),
              0.5);
}

} // namespace
} // namespace manta
