/**
 * @file
 * Unit and property tests for the type lattice (paper Figure 6).
 */
#include <gtest/gtest.h>

#include "support/rng.h"
#include "types/bounds.h"
#include "types/type.h"

namespace manta {
namespace {

class TypeLatticeTest : public ::testing::Test
{
  protected:
    TypeTable tt;
};

TEST_F(TypeLatticeTest, InterningDeduplicates)
{
    EXPECT_EQ(tt.intTy(32), tt.intTy(32));
    EXPECT_EQ(tt.ptr(tt.intTy(8)), tt.ptr(tt.intTy(8)));
    EXPECT_NE(tt.intTy(32), tt.intTy(64));
    EXPECT_NE(tt.ptr(tt.intTy(8)), tt.ptr(tt.intTy(16)));
}

TEST_F(TypeLatticeTest, TopAndBottomBounds)
{
    const std::vector<TypeRef> samples = {
        tt.intTy(8), tt.intTy(64), tt.floatTy(), tt.doubleTy(),
        tt.ptr(tt.intTy(8)), tt.num(32), tt.reg(64),
        tt.array(tt.intTy(32), 4),
        tt.object({{0, tt.intTy(64)}, {8, tt.ptr(tt.intTy(8))}}),
        tt.func({tt.intTy(64)}, tt.intTy(32)),
    };
    for (const TypeRef t : samples) {
        EXPECT_TRUE(tt.isSubtype(t, tt.top())) << tt.toString(t);
        EXPECT_TRUE(tt.isSubtype(tt.bottom(), t)) << tt.toString(t);
        EXPECT_FALSE(tt.isSubtype(tt.top(), t)) << tt.toString(t);
        EXPECT_FALSE(tt.isSubtype(t, tt.bottom())) << tt.toString(t);
    }
}

TEST_F(TypeLatticeTest, NumericLadder)
{
    // int32, float <: num32 <: reg32; int64, double <: num64 <: reg64.
    EXPECT_TRUE(tt.isSubtype(tt.intTy(32), tt.num(32)));
    EXPECT_TRUE(tt.isSubtype(tt.floatTy(), tt.num(32)));
    EXPECT_TRUE(tt.isSubtype(tt.intTy(64), tt.num(64)));
    EXPECT_TRUE(tt.isSubtype(tt.doubleTy(), tt.num(64)));
    EXPECT_TRUE(tt.isSubtype(tt.num(32), tt.reg(32)));
    EXPECT_TRUE(tt.isSubtype(tt.num(64), tt.reg(64)));
    EXPECT_TRUE(tt.isSubtype(tt.intTy(32), tt.reg(32)));
    // Pointers sit below reg64 only.
    EXPECT_TRUE(tt.isSubtype(tt.ptr(tt.intTy(8)), tt.reg(64)));
    EXPECT_FALSE(tt.isSubtype(tt.ptr(tt.intTy(8)), tt.reg(32)));
    EXPECT_FALSE(tt.isSubtype(tt.ptr(tt.intTy(8)), tt.num(64)));
    // Width mismatches are unrelated.
    EXPECT_FALSE(tt.isSubtype(tt.intTy(32), tt.num(64)));
    EXPECT_FALSE(tt.isSubtype(tt.intTy(64), tt.reg(32)));
}

TEST_F(TypeLatticeTest, PointerCovariance)
{
    const TypeRef p_i8 = tt.ptr(tt.intTy(8));
    const TypeRef p_num = tt.ptr(tt.num(8));
    const TypeRef p_top = tt.ptrAny();
    EXPECT_TRUE(tt.isSubtype(p_i8, p_num));
    EXPECT_TRUE(tt.isSubtype(p_i8, p_top));
    EXPECT_TRUE(tt.isSubtype(p_num, p_top));
    EXPECT_FALSE(tt.isSubtype(p_num, p_i8));
    EXPECT_FALSE(tt.isSubtype(p_top, p_i8));
}

TEST_F(TypeLatticeTest, JoinOfConflictingNumerics)
{
    EXPECT_EQ(tt.join(tt.intTy(32), tt.floatTy()), tt.num(32));
    EXPECT_EQ(tt.join(tt.intTy(64), tt.doubleTy()), tt.num(64));
    EXPECT_EQ(tt.join(tt.intTy(32), tt.intTy(64)), tt.top());
    EXPECT_EQ(tt.join(tt.floatTy(), tt.doubleTy()), tt.top());
}

TEST_F(TypeLatticeTest, JoinPointerWithInt64IsReg64)
{
    // The motivating example (Fig. 3): a union of char* and long
    // joins to reg64 under flow-insensitive inference.
    const TypeRef joined = tt.join(tt.ptr(tt.intTy(8)), tt.intTy(64));
    EXPECT_EQ(joined, tt.reg(64));
}

TEST_F(TypeLatticeTest, JoinPointersJoinsPointees)
{
    const TypeRef a = tt.ptr(tt.intTy(8));
    const TypeRef b = tt.ptr(tt.floatTy());
    EXPECT_EQ(tt.join(a, b), tt.ptr(tt.top()));
    const TypeRef c = tt.ptr(tt.intTy(32));
    const TypeRef d = tt.ptr(tt.floatTy());
    EXPECT_EQ(tt.join(c, d), tt.ptr(tt.num(32)));
}

TEST_F(TypeLatticeTest, MeetPointersMeetsPointees)
{
    const TypeRef a = tt.ptr(tt.num(32));
    const TypeRef b = tt.ptr(tt.intTy(32));
    EXPECT_EQ(tt.meet(a, b), b);
    EXPECT_EQ(tt.meet(tt.ptr(tt.intTy(8)), tt.ptr(tt.intTy(16))),
              tt.ptr(tt.bottom()));
}

TEST_F(TypeLatticeTest, MeetOfUnrelatedIsBottom)
{
    EXPECT_EQ(tt.meet(tt.intTy(32), tt.floatTy()), tt.bottom());
    EXPECT_EQ(tt.meet(tt.intTy(64), tt.ptr(tt.intTy(8))), tt.bottom());
    EXPECT_EQ(tt.meet(tt.intTy(32), tt.intTy(64)), tt.bottom());
}

TEST_F(TypeLatticeTest, ObjectRecordSubtyping)
{
    // A record with more fields is a subtype of one with fewer.
    const TypeRef wide = tt.object(
        {{0, tt.intTy(64)}, {8, tt.ptr(tt.intTy(8))}, {16, tt.intTy(32)}});
    const TypeRef narrow = tt.object({{0, tt.intTy(64)}});
    EXPECT_TRUE(tt.isSubtype(wide, narrow));
    EXPECT_FALSE(tt.isSubtype(narrow, wide));
}

TEST_F(TypeLatticeTest, ObjectJoinIntersectsFields)
{
    const TypeRef a = tt.object({{0, tt.intTy(64)}, {8, tt.intTy(32)}});
    const TypeRef b = tt.object({{0, tt.intTy(64)}, {16, tt.floatTy()}});
    const TypeRef j = tt.join(a, b);
    EXPECT_EQ(j, tt.object({{0, tt.intTy(64)}}));
}

TEST_F(TypeLatticeTest, ObjectMeetUnionsFields)
{
    const TypeRef a = tt.object({{0, tt.intTy(64)}});
    const TypeRef b = tt.object({{8, tt.floatTy()}});
    const TypeRef m = tt.meet(a, b);
    EXPECT_EQ(m, tt.object({{0, tt.intTy(64)}, {8, tt.floatTy()}}));
}

TEST_F(TypeLatticeTest, ObjectMeetConflictingFieldIsBottom)
{
    const TypeRef a = tt.object({{0, tt.intTy(32)}});
    const TypeRef b = tt.object({{0, tt.intTy(64)}});
    EXPECT_EQ(tt.meet(a, b), tt.bottom());
}

TEST_F(TypeLatticeTest, FunctionVariance)
{
    const TypeRef f1 = tt.func({tt.num(64)}, tt.intTy(32));
    const TypeRef f2 = tt.func({tt.intTy(64)}, tt.num(32));
    // f1 accepts more (num64 >: int64) and returns less general: f1 <: f2.
    EXPECT_TRUE(tt.isSubtype(f1, f2));
    EXPECT_FALSE(tt.isSubtype(f2, f1));
}

TEST_F(TypeLatticeTest, ArrayJoinRequiresSameLength)
{
    const TypeRef a4 = tt.array(tt.intTy(32), 4);
    const TypeRef b4 = tt.array(tt.floatTy(), 4);
    const TypeRef a8 = tt.array(tt.intTy(32), 8);
    EXPECT_EQ(tt.join(a4, b4), tt.array(tt.num(32), 4));
    EXPECT_EQ(tt.join(a4, a8), tt.top());
    EXPECT_EQ(tt.meet(a4, a8), tt.bottom());
}

TEST_F(TypeLatticeTest, FirstLayerEquality)
{
    EXPECT_TRUE(tt.firstLayerEqual(tt.ptr(tt.intTy(8)), tt.ptrAny()));
    EXPECT_TRUE(tt.firstLayerEqual(tt.intTy(32), tt.intTy(32)));
    EXPECT_FALSE(tt.firstLayerEqual(tt.intTy(32), tt.intTy(64)));
    EXPECT_FALSE(tt.firstLayerEqual(tt.ptr(tt.intTy(8)), tt.intTy(64)));
    EXPECT_FALSE(tt.firstLayerEqual(tt.floatTy(), tt.intTy(32)));
}

TEST_F(TypeLatticeTest, ToStringIsReadable)
{
    EXPECT_EQ(tt.toString(tt.intTy(64)), "int64");
    EXPECT_EQ(tt.toString(tt.ptr(tt.intTy(8))), "ptr(int8)");
    EXPECT_EQ(tt.toString(tt.top()), "top");
    EXPECT_EQ(tt.toString(tt.array(tt.floatTy(), 3)), "[float x 3]");
    EXPECT_EQ(tt.toString(tt.object({{0, tt.intTy(32)}})), "{0: int32}");
    EXPECT_EQ(tt.toString(tt.func({tt.intTy(64)}, tt.doubleTy())),
              "fn(int64) -> double");
}

// ---------------------------------------------------------------------
// Property tests: lattice laws over a randomized sample of types.
// ---------------------------------------------------------------------

class LatticeProperty : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    TypeRef
    randomType(Rng &rng, int depth)
    {
        const int roll = static_cast<int>(rng.below(depth > 2 ? 7 : 10));
        switch (roll) {
          case 0: return tt.intTy(8);
          case 1: return tt.intTy(32);
          case 2: return tt.intTy(64);
          case 3: return tt.floatTy();
          case 4: return tt.doubleTy();
          case 5: return tt.num(static_cast<int>(rng.below(2)) ? 32 : 64);
          case 6: return tt.reg(static_cast<int>(rng.below(2)) ? 32 : 64);
          case 7: return tt.ptr(randomType(rng, depth + 1));
          case 8:
            return tt.array(randomType(rng, depth + 1),
                            static_cast<std::uint32_t>(rng.below(4) + 1));
          default: {
            std::vector<TypeField> fields;
            const int n = static_cast<int>(rng.below(3)) + 1;
            for (int i = 0; i < n; ++i) {
                fields.push_back({static_cast<std::uint32_t>(i * 8),
                                  randomType(rng, depth + 1)});
            }
            return tt.object(std::move(fields));
          }
        }
    }

    TypeTable tt;
};

TEST_P(LatticeProperty, JoinMeetLaws)
{
    Rng rng(GetParam());
    for (int iter = 0; iter < 50; ++iter) {
        const TypeRef a = randomType(rng, 0);
        const TypeRef b = randomType(rng, 0);

        // Commutativity.
        EXPECT_EQ(tt.join(a, b), tt.join(b, a));
        EXPECT_EQ(tt.meet(a, b), tt.meet(b, a));

        // Idempotence.
        EXPECT_EQ(tt.join(a, a), a);
        EXPECT_EQ(tt.meet(a, a), a);

        // Upper/lower-bound property.
        const TypeRef j = tt.join(a, b);
        EXPECT_TRUE(tt.isSubtype(a, j))
            << tt.toString(a) << " !<: join=" << tt.toString(j);
        EXPECT_TRUE(tt.isSubtype(b, j))
            << tt.toString(b) << " !<: join=" << tt.toString(j);
        const TypeRef m = tt.meet(a, b);
        EXPECT_TRUE(tt.isSubtype(m, a))
            << "meet=" << tt.toString(m) << " !<: " << tt.toString(a);
        EXPECT_TRUE(tt.isSubtype(m, b))
            << "meet=" << tt.toString(m) << " !<: " << tt.toString(b);

        // Absorption: a join (a meet b) == a.
        EXPECT_EQ(tt.join(a, tt.meet(a, b)), a);
        EXPECT_EQ(tt.meet(a, tt.join(a, b)), a);

        // Subtype consistency: a <: b implies join == b and meet == a.
        if (tt.isSubtype(a, b)) {
            EXPECT_EQ(tt.join(a, b), b);
            EXPECT_EQ(tt.meet(a, b), a);
        }
    }
}

TEST_P(LatticeProperty, SubtypeIsPartialOrder)
{
    Rng rng(GetParam() + 1000);
    std::vector<TypeRef> samples;
    for (int i = 0; i < 12; ++i)
        samples.push_back(randomType(rng, 0));
    for (const TypeRef a : samples) {
        EXPECT_TRUE(tt.isSubtype(a, a));
        for (const TypeRef b : samples) {
            for (const TypeRef c : samples) {
                if (tt.isSubtype(a, b) && tt.isSubtype(b, c)) {
                    EXPECT_TRUE(tt.isSubtype(a, c))
                        << tt.toString(a) << " <: " << tt.toString(b)
                        << " <: " << tt.toString(c);
                }
            }
            if (tt.isSubtype(a, b) && tt.isSubtype(b, a)) {
                EXPECT_EQ(a, b);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticeProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

// ---------------------------------------------------------------------
// BoundPair (F-up / F-down) behaviour.
// ---------------------------------------------------------------------

class BoundPairTest : public ::testing::Test
{
  protected:
    TypeTable tt;
};

TEST_F(BoundPairTest, StartsUnknown)
{
    auto bp = BoundPair::unknown(tt);
    EXPECT_TRUE(bp.isNoHint(tt));
    EXPECT_EQ(bp.classify(tt), TypeClass::Unknown);
}

TEST_F(BoundPairTest, SingleHintIsPrecise)
{
    auto bp = BoundPair::unknown(tt);
    bp.addHint(tt, tt.intTy(64));
    EXPECT_EQ(bp.classify(tt), TypeClass::Precise);
    EXPECT_EQ(bp.upper, tt.intTy(64));
    EXPECT_EQ(bp.lower, tt.intTy(64));
}

TEST_F(BoundPairTest, RepeatedSameHintStaysPrecise)
{
    auto bp = BoundPair::unknown(tt);
    bp.addHint(tt, tt.ptr(tt.intTy(8)));
    bp.addHint(tt, tt.ptr(tt.intTy(8)));
    EXPECT_EQ(bp.classify(tt), TypeClass::Precise);
}

TEST_F(BoundPairTest, ConflictingHintsAreOver)
{
    auto bp = BoundPair::unknown(tt);
    bp.addHint(tt, tt.ptr(tt.intTy(8)));
    bp.addHint(tt, tt.intTy(64));
    EXPECT_EQ(bp.classify(tt), TypeClass::Over);
    EXPECT_EQ(bp.upper, tt.reg(64));
    EXPECT_EQ(bp.lower, tt.bottom());
}

TEST_F(BoundPairTest, MergePropagatesEvidence)
{
    auto a = BoundPair::unknown(tt);
    auto b = BoundPair::unknown(tt);
    b.addHint(tt, tt.intTy(32));
    a.merge(tt, b);
    EXPECT_EQ(a.classify(tt), TypeClass::Precise);
    EXPECT_EQ(a.upper, tt.intTy(32));
}

TEST_F(BoundPairTest, MergeUnknownIsNoOp)
{
    auto a = BoundPair::unknown(tt);
    a.addHint(tt, tt.floatTy());
    const auto before = a;
    a.merge(tt, BoundPair::unknown(tt));
    EXPECT_EQ(a.upper, before.upper);
    EXPECT_EQ(a.lower, before.lower);
}

TEST_F(BoundPairTest, AnyTypeClassifiesUnknown)
{
    const auto bp = BoundPair::anyType(tt);
    EXPECT_EQ(bp.classify(tt), TypeClass::Unknown);
}

TEST_F(BoundPairTest, ContainsTracksTruth)
{
    auto bp = BoundPair::unknown(tt);
    bp.addHint(tt, tt.ptr(tt.intTy(8)));
    bp.addHint(tt, tt.intTy(64));
    // Interval [bottom, reg64] contains both hypotheses.
    EXPECT_TRUE(tt.contains(bp.lower, bp.upper, tt.ptr(tt.intTy(8))));
    EXPECT_TRUE(tt.contains(bp.lower, bp.upper, tt.intTy(64)));
    EXPECT_FALSE(tt.contains(bp.lower, bp.upper, tt.intTy(32)));
}

} // namespace
} // namespace manta
