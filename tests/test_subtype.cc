/**
 * @file
 * The proving harness of the polymorphic subtyping core
 * (src/subtype/): property tests for the constraint algebra
 * (saturation idempotence, label variance, seeding/substitution
 * soundness), the engine-agreement differential suite (on every
 * standard-corpus project the subtype interval of every variable nests
 * inside the unification interval, and Unknown is never invented), the
 * interpreter ground-truth tripwire (the subtype engine introduces no
 * typed-deref or icall-containment violation the unifier did not
 * already have), and the ablation-flip scenario: a polymorphic
 * identity the unifier provably merges and the subtype engine keeps
 * precise per call site.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "analysis/acyclic.h"
#include "analysis/memobj.h"
#include "analysis/pointsto.h"
#include "clients/icall.h"
#include "core/hints.h"
#include "core/pipeline.h"
#include "core/unify.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "frontend/generator.h"
#include "fuzz/oracles.h"
#include "fuzz/sample.h"
#include "mir/interp.h"
#include "mir/printer.h"
#include "subtype/constraint.h"
#include "subtype/solver.h"

namespace manta {
namespace {

using subtype::CapLabel;
using subtype::ConstraintSystem;
using subtype::SubVarId;

// ---- Constraint algebra properties --------------------------------

class AlgebraTest : public ::testing::Test
{
  protected:
    TypeTable types_;
    ConstraintSystem cs_{types_};

    TypeRef i64() { return types_.intTy(64); }
    TypeRef p64() { return types_.ptr(types_.reg(64)); }

    static bool
    hasEdge(const ConstraintSystem &cs, SubVarId a, SubVarId b)
    {
        const auto &s = cs.succs(a);
        return std::find(s.begin(), s.end(), b) != s.end();
    }
};

TEST_F(AlgebraTest, ForwardEvidenceFlowsAlongEdges)
{
    const SubVarId a = cs_.makeVar();
    const SubVarId b = cs_.makeVar();
    cs_.addSub(a, b);
    cs_.addAtom(a, i64());
    cs_.solve();
    // a <: b: what a is evidences what b at least is.
    EXPECT_EQ(cs_.boundsOf(a).upper, i64());
    EXPECT_EQ(cs_.boundsOf(b).upper, i64());
    EXPECT_EQ(cs_.boundsOf(b).lower, i64());
}

TEST_F(AlgebraTest, BackwardEvidenceFlowsAgainstEdges)
{
    const SubVarId a = cs_.makeVar();
    const SubVarId b = cs_.makeVar();
    cs_.addSub(a, b);
    cs_.addAtom(b, p64());
    cs_.solve();
    // a <: b: evidence about b is an upper bound on a.
    EXPECT_EQ(cs_.boundsOf(a).upper, p64());
}

TEST_F(AlgebraTest, EvidenceIsTransitiveAlongChains)
{
    const SubVarId a = cs_.makeVar();
    const SubVarId b = cs_.makeVar();
    const SubVarId c = cs_.makeVar();
    cs_.addSub(a, b);
    cs_.addSub(b, c);
    cs_.addAtom(a, i64());
    cs_.solve();
    EXPECT_EQ(cs_.boundsOf(c).upper, i64());
    // And backward from the sink.
    cs_.addAtom(c, p64());
    cs_.solve();
    EXPECT_EQ(cs_.boundsOf(a).upper, types_.join(i64(), p64()));
}

TEST_F(AlgebraTest, AtomsFoldAsJoinUpperMeetLower)
{
    const SubVarId a = cs_.makeVar();
    cs_.addAtom(a, i64());
    cs_.addAtom(a, p64());
    cs_.solve();
    EXPECT_EQ(cs_.boundsOf(a).upper, types_.join(i64(), p64()));
    EXPECT_EQ(cs_.boundsOf(a).lower, types_.meet(i64(), p64()));
}

TEST_F(AlgebraTest, SelfAndDuplicateEdgesAreDropped)
{
    const SubVarId a = cs_.makeVar();
    const SubVarId b = cs_.makeVar();
    cs_.addSub(a, a);
    EXPECT_EQ(cs_.numEdges(), 0u);
    cs_.addSub(a, b);
    cs_.addSub(a, b);
    EXPECT_EQ(cs_.numEdges(), 1u);
}

TEST_F(AlgebraTest, DerivedVariablesAreMemoized)
{
    const SubVarId p = cs_.makeVar();
    const SubVarId l3 = cs_.derived(p, CapLabel::Field, 3);
    EXPECT_EQ(cs_.derived(p, CapLabel::Field, 3), l3);
    EXPECT_EQ(cs_.tryDerived(p, CapLabel::Field, 3), l3);
    EXPECT_EQ(cs_.tryDerived(p, CapLabel::Field, 4),
              subtype::kInvalidSubVar);
    EXPECT_NE(cs_.derived(p, CapLabel::Field, 4), l3);
}

TEST_F(AlgebraTest, CovariantLabelsSaturateForward)
{
    // p <: q derives p.l <: q.l for Load, Field and Out.
    for (const CapLabel label :
         {CapLabel::Load, CapLabel::Field, CapLabel::Out}) {
        EXPECT_TRUE(subtype::labelCovariant(label));
        TypeTable types;
        ConstraintSystem cs(types);
        const SubVarId p = cs.makeVar();
        const SubVarId q = cs.makeVar();
        const SubVarId dp = cs.derived(p, label, 1);
        const SubVarId dq = cs.derived(q, label, 1);
        cs.addSub(p, q);
        EXPECT_GT(cs.saturate(), 0u);
        EXPECT_TRUE(hasEdge(cs, dp, dq));
        EXPECT_FALSE(hasEdge(cs, dq, dp));
    }
}

TEST_F(AlgebraTest, ContravariantLabelsSaturateBackward)
{
    // p <: q derives q.l <: p.l for Store and In.
    for (const CapLabel label : {CapLabel::Store, CapLabel::In}) {
        EXPECT_FALSE(subtype::labelCovariant(label));
        TypeTable types;
        ConstraintSystem cs(types);
        const SubVarId p = cs.makeVar();
        const SubVarId q = cs.makeVar();
        const SubVarId dp = cs.derived(p, label, 2);
        const SubVarId dq = cs.derived(q, label, 2);
        cs.addSub(p, q);
        EXPECT_GT(cs.saturate(), 0u);
        EXPECT_TRUE(hasEdge(cs, dq, dp));
        EXPECT_FALSE(hasEdge(cs, dp, dq));
    }
}

TEST_F(AlgebraTest, SaturationMatchesOperandsExactly)
{
    // field<0> and field<8> of related parents never connect.
    const SubVarId p = cs_.makeVar();
    const SubVarId q = cs_.makeVar();
    const SubVarId f0 = cs_.derived(p, CapLabel::Field, 0);
    const SubVarId f8 = cs_.derived(q, CapLabel::Field, 8);
    cs_.addSub(p, q);
    EXPECT_EQ(cs_.saturate(), 0u);
    EXPECT_FALSE(hasEdge(cs_, f0, f8));
}

TEST_F(AlgebraTest, SaturationIsIdempotent)
{
    // A chain with mixed-variance children on every node.
    const SubVarId p = cs_.makeVar();
    const SubVarId q = cs_.makeVar();
    const SubVarId r = cs_.makeVar();
    for (const SubVarId v : {p, q, r}) {
        cs_.derived(v, CapLabel::Load, 0);
        cs_.derived(v, CapLabel::Store, 0);
        cs_.derived(v, CapLabel::In, 1);
    }
    cs_.addSub(p, q);
    cs_.addSub(q, r);
    const std::size_t first = cs_.saturate();
    EXPECT_GT(first, 0u);
    // Closure: re-saturating a closed system adds nothing, no matter
    // how often it is asked.
    EXPECT_EQ(cs_.saturate(), 0u);
    EXPECT_EQ(cs_.saturate(), 0u);
}

TEST_F(AlgebraTest, SeedingMatchesAtomFolding)
{
    // seed(v, bp, bp) is observationally the same as having folded the
    // underlying atoms directly - the substitution the summary
    // instantiation relies on.
    ConstraintSystem direct(types_);
    const SubVarId d = direct.makeVar();
    direct.addAtom(d, i64());
    direct.addAtom(d, p64());
    direct.solve();

    BoundPair folded = BoundPair::unknown(types_);
    folded.addHint(types_, i64());
    folded.addHint(types_, p64());
    const SubVarId s = cs_.makeVar();
    cs_.seed(s, folded, folded);
    cs_.solve();

    EXPECT_EQ(cs_.boundsOf(s).upper, direct.boundsOf(d).upper);
    EXPECT_EQ(cs_.boundsOf(s).lower, direct.boundsOf(d).lower);
}

TEST_F(AlgebraTest, SummaryInstantiationMatchesDirectEdges)
{
    // Calling through an In/Out interface mirror of `param <: ret`
    // gives the caller the same bounds as wiring the callee body in
    // directly.
    TypeTable t2;
    ConstraintSystem direct(t2);
    {
        const SubVarId arg = direct.makeVar();
        const SubVarId param = direct.makeVar();
        const SubVarId ret = direct.makeVar();
        const SubVarId res = direct.makeVar();
        direct.addSub(arg, param);
        direct.addSub(param, ret);
        direct.addSub(ret, res);
        direct.addAtom(arg, t2.intTy(64));
        direct.solve();
        EXPECT_EQ(direct.boundsOf(res).upper, t2.intTy(64));
    }

    const SubVarId arg = cs_.makeVar();
    const SubVarId res = cs_.makeVar();
    const SubVarId site = cs_.makeVar();
    const SubVarId in0 = cs_.derived(site, CapLabel::In, 0);
    const SubVarId out = cs_.derived(site, CapLabel::Out, 0);
    cs_.addSub(in0, out);  // the mapped interface edge of `id`
    cs_.addSub(arg, in0);
    cs_.addSub(out, res);
    cs_.addAtom(arg, i64());
    cs_.solve();
    EXPECT_EQ(cs_.boundsOf(res).upper, i64());
    EXPECT_EQ(cs_.boundsOf(res).lower, i64());
}

// ---- Engine agreement on the standard corpus ----------------------

/** Values both stages classify: arguments and instruction results. */
bool
isTypedValue(const Module &m, ValueId v)
{
    const ValueKind kind = m.value(v).kind;
    return kind == ValueKind::Argument || kind == ValueKind::InstResult;
}

struct NestingTally
{
    std::size_t violations = 0;
    std::size_t invented = 0;   ///< unify Unknown, subtype not.
    std::size_t narrower = 0;   ///< subtype interval strictly tighter.
    std::size_t flipped = 0;    ///< unify not Precise, subtype Precise.
};

NestingTally
tallyNesting(Module &m, const InferenceResult &uni,
             const InferenceResult &sub)
{
    NestingTally t;
    TypeTable &table = m.types();
    for (std::size_t i = 0; i < m.numValues(); ++i) {
        const ValueId v(static_cast<ValueId::RawType>(i));
        if (!isTypedValue(m, v))
            continue;
        const TypeClass uc = uni.valueClass(v);
        const TypeClass sc = sub.valueClass(v);
        if (uc == TypeClass::Unknown) {
            if (sc != TypeClass::Unknown)
                ++t.invented;
            continue;
        }
        if (sc == TypeClass::Unknown)
            continue;
        const BoundPair ub = uni.valueBounds(v);
        const BoundPair sb = sub.valueBounds(v);
        if (!table.isSubtype(sb.upper, ub.upper) ||
            !table.isSubtype(ub.lower, sb.lower)) {
            if (++t.violations <= 3) {
                ADD_FAILURE() << "interval of " << printValueRef(m, v)
                              << " escapes: subtype ["
                              << table.toString(sb.lower) << ", "
                              << table.toString(sb.upper) << "] vs unify ["
                              << table.toString(ub.lower) << ", "
                              << table.toString(ub.upper) << "]";
            }
            continue;
        }
        if (sb.upper != ub.upper || sb.lower != ub.lower)
            ++t.narrower;
        if (uc != TypeClass::Precise && sc == TypeClass::Precise)
            ++t.flipped;
    }
    return t;
}

TEST(EngineAgreement, IntervalsNestOnEveryStandardProject)
{
    HybridConfig uni_cfg = HybridConfig::fiOnly();
    uni_cfg.inferEngine = InferEngine::Unify;
    HybridConfig sub_cfg = HybridConfig::fiOnly();
    sub_cfg.inferEngine = InferEngine::Subtype;

    std::size_t narrower_total = 0;
    std::size_t flipped_total = 0;
    for (const ProjectProfile &profile : standardCorpus()) {
        PreparedProject project = prepareProject(profile);
        const InferenceResult uni = project.analyzer->infer(uni_cfg);
        const InferenceResult sub = project.analyzer->infer(sub_cfg);
        const NestingTally t = tallyNesting(project.module(), uni, sub);
        EXPECT_EQ(t.violations, 0u) << profile.name;
        EXPECT_EQ(t.invented, 0u) << profile.name;
        narrower_total += t.narrower;
        flipped_total += t.flipped;
    }
    // The precision ordering must be non-vacuous: somewhere in the
    // corpus the subtype engine is strictly tighter, and somewhere it
    // turns an over-approximated variable precise.
    EXPECT_GT(narrower_total, 0u);
    EXPECT_GT(flipped_total, 0u);
}

/**
 * Interpreter ground truth: a concrete run is the one oracle the
 * static engines cannot argue with. Collect the violation set of an
 * inference result - runtime-dereferenced values the engine inferred
 * precisely numeric, and observed indirect-call targets its FullTypes
 * verdict excludes - and require the subtype engine's set to be a
 * subset of the unifier's on every project (zero NEW violations; on
 * noise-free programs both sets are empty).
 */
std::set<std::uint64_t>
interpViolations(Module &m, const InferenceResult &full,
                 const InterpResult &run)
{
    std::set<std::uint64_t> out;
    TypeTable &table = m.types();
    for (const DerefRecord &d : run.derefs) {
        if (d.faulted || !isTypedValue(m, d.addr))
            continue;
        if (full.valueClass(d.addr) != TypeClass::Precise)
            continue;
        if (table.isNumeric(full.valueBounds(d.addr).upper))
            out.insert(d.addr.raw());
    }
    const IcallAnalysis icalls(m, &full);
    const IcallResult verdicts = icalls.run(IcallDiscipline::FullTypes);
    for (const auto &[site, callee] : run.icallsTaken) {
        const auto it = verdicts.targets.find(site);
        const bool kept =
            it != verdicts.targets.end() &&
            std::find(it->second.begin(), it->second.end(), callee) !=
                it->second.end();
        if (!kept)
            out.insert(0x100000000ull + (std::uint64_t(site.raw()) << 16) +
                       callee.raw());
    }
    return out;
}

TEST(EngineAgreement, SubtypeAddsNoInterpreterViolations)
{
    HybridConfig uni_cfg = HybridConfig::full();
    uni_cfg.inferEngine = InferEngine::Unify;
    HybridConfig sub_cfg = HybridConfig::full();
    sub_cfg.inferEngine = InferEngine::Subtype;

    for (const ProjectProfile &profile : standardCorpus()) {
        // Interpret the natural-CFG module before preprocessing.
        GeneratedProgram prog = generateProgram(profile.config);
        InterpOptions io;
        io.recordTrace = true;
        Interpreter interp(*prog.module, io);
        const InterpResult run = interp.runMain();

        makeAcyclic(*prog.module);
        MantaAnalyzer an(*prog.module, uni_cfg);
        const InferenceResult uni = an.infer(uni_cfg);
        const InferenceResult sub = an.infer(sub_cfg);

        const auto uv = interpViolations(*prog.module, uni, run);
        const auto sv = interpViolations(*prog.module, sub, run);
        for (const std::uint64_t key : sv) {
            EXPECT_TRUE(uv.count(key))
                << profile.name
                << ": subtype engine introduced interpreter violation "
                << key;
        }
    }
}

TEST(EngineAgreement, ModularMatchesWholeProgramUnderSubtype)
{
    ProjectProfile profile = standardCorpus()[6];  // openssh mix
    PreparedProject project = prepareProject(profile);

    HybridConfig modular = HybridConfig::full();
    modular.inferEngine = InferEngine::Subtype;
    modular.scheduleMode = ScheduleMode::ModularBottomUp;
    HybridConfig wp = HybridConfig::full();
    wp.inferEngine = InferEngine::Subtype;
    wp.scheduleMode = ScheduleMode::WholeProgram;

    const InferenceResult a = project.analyzer->infer(modular);
    const InferenceResult b = project.analyzer->infer(wp);

    ASSERT_EQ(a.overlay().size(), b.overlay().size());
    for (const auto &[v, bp] : b.overlay()) {
        const auto it = a.overlay().find(v);
        ASSERT_NE(it, a.overlay().end());
        EXPECT_EQ(it->second.upper, bp.upper);
        EXPECT_EQ(it->second.lower, bp.lower);
    }
    ASSERT_EQ(a.siteOverlay().size(), b.siteOverlay().size());
    for (const auto &[sv, bp] : b.siteOverlay()) {
        const auto it = a.siteOverlay().find(sv);
        ASSERT_NE(it, a.siteOverlay().end());
        EXPECT_EQ(it->second.upper, bp.upper);
        EXPECT_EQ(it->second.lower, bp.lower);
    }
}

TEST(EngineAgreement, EngineDiffOracleGreenOnKnownGoodSeeds)
{
    for (std::size_t i = 0; i < 6; ++i) {
        const fuzz::FuzzCase c = fuzz::sampleCase(fuzz::caseSeedFor(11, i));
        const fuzz::CaseResult r = fuzz::runCase(c);
        const auto idx =
            static_cast<std::size_t>(fuzz::OracleId::EngineDiff);
        EXPECT_GT(r.counters.runs[idx], 0u);
        EXPECT_EQ(r.counters.failures[idx], 0u) << "case " << i;
    }
}

// ---- The ablation flip: what the unifier cannot express -----------

class ScenarioTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        prog_ = generatePolyScenarios();
        makeAcyclic(*prog_.module);
    }

    Module &module() { return *prog_.module; }

    FuncId
    fn(const std::string &name) const
    {
        for (std::size_t f = 0; f < prog_.module->numFuncs(); ++f) {
            const FuncId fid(static_cast<FuncId::RawType>(f));
            if (prog_.module->str(prog_.module->func(fid).name) == name)
                return fid;
        }
        return FuncId::invalid();
    }

    /** Result of the direct call to `callee` inside `caller`. */
    ValueId
    callResult(const std::string &caller, const std::string &callee) const
    {
        const Module &m = *prog_.module;
        const FuncId target = fn(callee);
        const FuncId host = fn(caller);
        for (std::size_t i = 0; i < m.numInsts(); ++i) {
            const InstId id(static_cast<InstId::RawType>(i));
            const Instruction &inst = m.inst(id);
            if (inst.op != Opcode::Call || inst.callee != target)
                continue;
            if (m.block(inst.parent).func == host)
                return inst.result;
        }
        return ValueId::invalid();
    }

    GeneratedProgram prog_;
};

TEST_F(ScenarioTest, UnifierMergesThePolymorphicIdentity)
{
    MantaAnalyzer an(module(), HybridConfig::fiOnly());
    HybridConfig cfg = HybridConfig::fiOnly();
    cfg.inferEngine = InferEngine::Unify;
    const InferenceResult uni = an.infer(cfg);

    const ValueId rptr = callResult("driver_ptr", "id");
    const ValueId rint = callResult("driver_int", "id");
    ASSERT_TRUE(rptr.valid());
    ASSERT_TRUE(rint.valid());

    // Unification collapses @id's parameter, return and both call
    // results into one class holding pointer AND integer evidence:
    // both results degrade to over-approximated.
    EXPECT_EQ(uni.valueClass(rptr), TypeClass::Over);
    EXPECT_EQ(uni.valueClass(rint), TypeClass::Over);
}

TEST_F(ScenarioTest, SubtypeEngineSeparatesTheCallSites)
{
    MantaAnalyzer an(module(), HybridConfig::fiOnly());
    HybridConfig uni_cfg = HybridConfig::fiOnly();
    uni_cfg.inferEngine = InferEngine::Unify;
    HybridConfig sub_cfg = HybridConfig::fiOnly();
    sub_cfg.inferEngine = InferEngine::Subtype;
    const InferenceResult uni = an.infer(uni_cfg);
    const InferenceResult sub = an.infer(sub_cfg);
    TypeTable &table = module().types();

    const ValueId rptr = callResult("driver_ptr", "id");
    const ValueId rint = callResult("driver_int", "id");
    ASSERT_TRUE(rptr.valid());
    ASSERT_TRUE(rint.valid());

    // The flip the unifier cannot express: per-call-site instantiation
    // of @id's summary keeps the integer caller precisely integer...
    EXPECT_EQ(sub.valueClass(rint), TypeClass::Precise);
    EXPECT_EQ(sub.valueBounds(rint).upper, table.intTy(64));
    // ...and the pointer caller a pointer. The unifier merges both
    // call results into one class whose upper degrades to the bare
    // register class (join of int and ptr); the subtyping engine keeps
    // the pointer shape, a strictly narrower upper bound.
    const TypeRef sub_up = sub.valueBounds(rptr).upper;
    const TypeRef uni_up = uni.valueBounds(rptr).upper;
    EXPECT_TRUE(table.isPtr(sub_up)) << table.toString(sub_up);
    EXPECT_FALSE(table.isPtr(uni_up)) << table.toString(uni_up);
    EXPECT_TRUE(table.isSubtype(sub_up, uni_up));
    EXPECT_NE(sub_up, uni_up);
}

TEST_F(ScenarioTest, WalkerFieldEvidenceStaysInsideTheTruth)
{
    // The flow-insensitive stage in isolation: that is the subtyping
    // solver's own verdict, before the CS/FS refinement stages trade
    // recall for precision (they may legally commit one-sided
    // singletons, the paper's fsLost bucket).
    MantaAnalyzer an(module(), HybridConfig::fiOnly());
    HybridConfig cfg = HybridConfig::fiOnly();
    cfg.inferEngine = InferEngine::Subtype;
    const InferenceResult sub = an.infer(cfg);
    TypeTable &table = module().types();

    // Every truth-carrying value must be captured: its recorded truth
    // lies inside the engine's interval (recall never drops to an
    // incorrect verdict on the noise-free scenario).
    for (const auto &[v, truth_ty] : prog_.truth.valueTypes) {
        if (!isTypedValue(module(), v))
            continue;
        if (sub.valueClass(v) == TypeClass::Unknown)
            continue;
        const BoundPair bp = sub.valueBounds(v);
        EXPECT_TRUE(table.contains(bp.lower, bp.upper, truth_ty))
            << printValueRef(module(), v) << ": truth "
            << table.toString(truth_ty) << " outside ["
            << table.toString(bp.lower) << ", "
            << table.toString(bp.upper) << "]";
    }
}

TEST_F(ScenarioTest, SubtypeStrictlyBeatsUnifyOnTheScenarioPack)
{
    // Engine-vs-engine on the stage the engines implement (FI): the
    // ablation flip the issue demands. Identity-through-@id values
    // (%doubled, %through) are precisely int under per-call-site
    // instantiation but degrade to over-approximated reg64 under
    // class merging.
    MantaAnalyzer an(module(), HybridConfig::fiOnly());
    HybridConfig uni_cfg = HybridConfig::fiOnly();
    uni_cfg.inferEngine = InferEngine::Unify;
    HybridConfig sub_cfg = HybridConfig::fiOnly();
    sub_cfg.inferEngine = InferEngine::Subtype;

    const InferenceResult uni = an.infer(uni_cfg);
    const InferenceResult sub = an.infer(sub_cfg);
    const TypeEval ue = evalInference(module(), prog_.truth, uni);
    const TypeEval se = evalInference(module(), prog_.truth, sub);

    EXPECT_EQ(se.incorrect, 0u);
    EXPECT_GT(se.preciseCorrect, ue.preciseCorrect);
}

TEST_F(ScenarioTest, SolverStatsRecordPolymorphicInstantiation)
{
    Module &m = module();
    const MemObjects objects(m);
    PointsTo pts(m, objects, true, PtsSolver::Sparse);
    pts.run();
    const HintIndex hints(m, &pts);

    subtype::SubtypeInference inference(m, pts, hints);
    TypeEnv env(m.types());
    const StageStats stage = inference.run(env);
    EXPECT_GT(stage.total(), 0u);

    const subtype::SubtypeStats &stats = inference.stats();
    EXPECT_GT(stats.vars, 0u);
    EXPECT_GT(stats.edges, 0u);
    EXPECT_GT(stats.atoms, 0u);
    // @id and @walk both have usable summaries; @driver_ptr and
    // @driver_int instantiate them at three call sites in total.
    EXPECT_GE(stats.summaries, 2u);
    EXPECT_GE(stats.instantiations, 3u);
}

} // namespace
} // namespace manta
