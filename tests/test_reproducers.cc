/**
 * @file
 * Regression replay of promoted fuzz reproducers: every .mir file under
 * tests/reproducers/ is parsed and pushed through the truth-free oracle
 * battery (verifier, roundtrip, monotonic, pts_diff, static interp
 * checks) and must come back green. A file that starts failing again
 * means a fixed defect has regressed; the header comments in each file
 * carry the original oracle, seed, and replay command.
 *
 * The harness stays useful even when the directory is empty: discovery
 * is dynamic, so promoting a reproducer is just `cp` plus re-running
 * ctest (docs/TESTING.md describes the workflow).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "fuzz/oracles.h"
#include "mir/parser.h"

#ifndef MANTA_REPRO_DIR
#error "MANTA_REPRO_DIR must point at tests/reproducers"
#endif

namespace manta {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path>
reproducerFiles()
{
    std::vector<fs::path> files;
    const fs::path dir(MANTA_REPRO_DIR);
    if (!fs::exists(dir))
        return files;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.is_regular_file() && entry.path().extension() == ".mir")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(Reproducers, DirectoryIsDiscoverable)
{
    // The compile-time path must exist in the source tree; the corpus
    // inside it may legitimately be empty.
    EXPECT_TRUE(fs::exists(fs::path(MANTA_REPRO_DIR)))
        << "missing directory " << MANTA_REPRO_DIR;
}

TEST(Reproducers, AllParse)
{
    for (const fs::path &file : reproducerFiles()) {
        Module m;
        std::string error;
        EXPECT_TRUE(parseModule(slurp(file), m, error))
            << file.filename().string() << ": " << error;
    }
}

TEST(Reproducers, TruthFreeOraclesStayGreen)
{
    const auto files = reproducerFiles();
    for (const fs::path &file : files) {
        const fuzz::CaseResult r = fuzz::runTextOracles(slurp(file));
        for (const fuzz::OracleFailure &f : r.failures) {
            ADD_FAILURE() << file.filename().string() << ": oracle "
                          << fuzz::oracleName(f.oracle)
                          << " regressed: " << f.detail;
        }
    }
    // The promoted monotonicity reproducer ships with the repo, so the
    // sweep above is never vacuously green.
    EXPECT_GE(files.size(), 1u);
}

} // namespace
} // namespace manta
