/**
 * @file
 * Tests for the analysis substrate: CFG, call graph, acyclic
 * preprocessing, memory objects, points-to, DDG.
 */
#include <gtest/gtest.h>

#include "analysis/acyclic.h"
#include "analysis/callgraph.h"
#include "analysis/cfg.h"
#include "analysis/ddg.h"
#include "analysis/memobj.h"
#include "analysis/pointsto.h"
#include "mir/builder.h"
#include "mir/externals.h"
#include "mir/parser.h"
#include "mir/printer.h"
#include "mir/verifier.h"

namespace manta {
namespace {

TEST(Cfg, DiamondEdges)
{
    const Module m = parseModuleOrDie(R"(
func @f(%a:64) {
entry:
  %c = icmp.eq %a, 0:64
  br %c, left, right
left:
  jmp done
right:
  jmp done
done:
  ret
}
)");
    const FuncId fid = m.findFunc("f");
    const Cfg cfg(m, fid);
    const Function &fn = m.func(fid);
    EXPECT_EQ(cfg.succs(fn.blocks[0]).size(), 2u);
    EXPECT_EQ(cfg.preds(fn.blocks[3]).size(), 2u);
    EXPECT_FALSE(cfg.hasCycle());
    EXPECT_EQ(cfg.rpo().size(), 4u);
    EXPECT_EQ(cfg.rpo().front(), fn.blocks[0]);
    EXPECT_EQ(cfg.rpoIndex(fn.blocks[0]), 0u);
}

TEST(Cfg, DetectsLoop)
{
    const Module m = parseModuleOrDie(R"(
func @f(%n:64) {
entry:
  jmp head
head:
  %i = phi [0:64, entry], [%next, body]
  %c = icmp.lt %i, %n
  br %c, body, exit
body:
  %next = add %i, 1:64
  jmp head
exit:
  ret
}
)");
    const Cfg cfg(m, m.findFunc("f"));
    EXPECT_TRUE(cfg.hasCycle());
}

TEST(InstIndex, TracksUsersAndPositions)
{
    const Module m = parseModuleOrDie(R"(
func @f(%a:64) {
entry:
  %x = add %a, 1:64
  %y = add %x, %x
  ret %y
}
)");
    const InstIndex index(m);
    const Function &fn = m.func(m.findFunc("f"));
    const auto &insts = m.block(fn.blocks[0]).insts;
    EXPECT_EQ(index.positionInBlock(insts[0]), 0u);
    EXPECT_EQ(index.positionInBlock(insts[2]), 2u);
    const ValueId x = m.inst(insts[0]).result;
    EXPECT_EQ(index.users(x).size(), 2u); // both operands of %y
    const ValueId a = fn.params[0];
    EXPECT_EQ(index.users(a).size(), 1u);
}

TEST(CallGraph, EdgesAndOrder)
{
    const Module m = parseModuleOrDie(R"(
func @leaf(%x:64) {
entry:
  ret %x
}
func @mid(%x:64) {
entry:
  %r = call.64 @leaf(%x)
  ret %r
}
func @top(%x:64) {
entry:
  %r = call.64 @mid(%x)
  %s = call.64 @leaf(%r)
  ret %s
}
)");
    const CallGraph cg(m);
    const FuncId leaf = m.findFunc("leaf");
    const FuncId mid = m.findFunc("mid");
    const FuncId top = m.findFunc("top");
    EXPECT_TRUE(cg.isAcyclic());
    EXPECT_EQ(cg.callees(top).size(), 2u);
    EXPECT_EQ(cg.callers(leaf).size(), 2u);
    EXPECT_EQ(cg.callSitesOf(leaf).size(), 2u);
    EXPECT_EQ(cg.callSites(top, leaf).size(), 1u);

    const auto order = cg.bottomUpOrder();
    std::vector<std::size_t> pos(m.numFuncs());
    for (std::size_t i = 0; i < order.size(); ++i)
        pos[order[i].index()] = i;
    EXPECT_LT(pos[leaf.index()], pos[mid.index()]);
    EXPECT_LT(pos[mid.index()], pos[top.index()]);
}

TEST(CallGraph, DetectsRecursion)
{
    const Module m = parseModuleOrDie(R"(
func @self(%x:64) {
entry:
  %r = call.64 @self(%x)
  ret %r
}
)");
    const CallGraph cg(m);
    EXPECT_FALSE(cg.isAcyclic());
}

TEST(Acyclic, UnrollsSimpleLoop)
{
    Module m = parseModuleOrDie(R"(
func @f(%n:64) {
entry:
  jmp head
head:
  %i = phi [0:64, entry], [%next, body]
  %c = icmp.lt %i, %n
  br %c, body, exit
body:
  %next = add %i, 1:64
  jmp head
exit:
  ret
}
)");
    const auto stats = unrollLoops(m);
    EXPECT_EQ(stats.loopsUnrolled, 1u);
    EXPECT_GE(stats.blocksCloned, 2u);
    EXPECT_TRUE(verifyModule(m).empty())
        << printModule(m) << "\n"
        << (verifyModule(m).empty() ? "" : verifyModule(m).front());
    const Cfg cfg(m, m.findFunc("f"));
    EXPECT_FALSE(cfg.hasCycle());
    // The loop body now appears twice.
    std::size_t adds = 0;
    for (std::size_t i = 0; i < m.numInsts(); ++i) {
        if (m.inst(InstId(InstId::RawType(i))).op == Opcode::Add)
            ++adds;
    }
    EXPECT_EQ(adds, 2u);
}

TEST(Acyclic, UnrollsNestedLoops)
{
    Module m = parseModuleOrDie(R"(
func @f(%n:64) {
entry:
  jmp outer
outer:
  %i = phi [0:64, entry], [%i2, outer_latch]
  jmp inner
inner:
  %j = phi [0:64, outer], [%j2, inner_latch]
  %c = icmp.lt %j, %n
  br %c, inner_latch, outer_latch
inner_latch:
  %j2 = add %j, 1:64
  jmp inner
outer_latch:
  %i2 = add %i, 1:64
  %c2 = icmp.lt %i2, %n
  br %c2, outer, exit
exit:
  ret
}
)");
    unrollLoops(m);
    EXPECT_TRUE(verifyModule(m).empty())
        << (verifyModule(m).empty() ? "" : verifyModule(m).front());
    const Cfg cfg(m, m.findFunc("f"));
    EXPECT_FALSE(cfg.hasCycle());
}

TEST(Acyclic, LoopCarriedValueStillFlows)
{
    // The unrolled second iteration must receive the first iteration's
    // value through its phi.
    Module m = parseModuleOrDie(R"(
func @f(%n:64) {
entry:
  jmp head
head:
  %acc = phi [%n, entry], [%acc2, body]
  %c = icmp.lt %acc, 100:64
  br %c, body, exit
body:
  %acc2 = add %acc, %acc
  jmp head
exit:
  ret %acc
}
)");
    unrollLoops(m);
    ASSERT_TRUE(verifyModule(m).empty());
    // Find the cloned head's phi; one incoming must be %acc2 (original).
    const Function &fn = m.func(m.findFunc("f"));
    bool found_clone_phi = false;
    for (const BlockId bid : fn.blocks) {
        const BasicBlock &bb = m.block(bid);
        if (m.str(bb.name).rfind("head$u", 0) != 0)
            continue;
        for (const InstId iid : bb.insts) {
            const Instruction &inst = m.inst(iid);
            if (inst.op != Opcode::Phi)
                continue;
            found_clone_phi = true;
            ASSERT_EQ(inst.numOperands(), 1u);
            EXPECT_EQ(m.nameOf(m.operand(inst, 0)), "acc2");
        }
    }
    EXPECT_TRUE(found_clone_phi);
}

TEST(Acyclic, BreaksSelfRecursion)
{
    Module m = parseModuleOrDie(R"(
func @fact(%n:64) {
entry:
  %c = icmp.le %n, 1:64
  br %c, base, rec
base:
  ret 1:64
rec:
  %n1 = sub %n, 1:64
  %r = call.64 @fact(%n1)
  %p = mul %n, %r
  ret %p
}
)");
    const auto stats = breakRecursion(m);
    EXPECT_EQ(stats.recursiveCallsBroken, 1u);
    EXPECT_TRUE(verifyModule(m).empty());
    EXPECT_TRUE(CallGraph(m).isAcyclic());
}

TEST(Acyclic, BreaksMutualRecursion)
{
    Module m = parseModuleOrDie(R"(
func @even(%n:64) {
entry:
  %r = call.64 @odd(%n)
  ret %r
}
func @odd(%n:64) {
entry:
  %r = call.64 @even(%n)
  ret %r
}
)");
    const auto stats = breakRecursion(m);
    EXPECT_EQ(stats.recursiveCallsBroken, 2u);
    EXPECT_TRUE(CallGraph(m).isAcyclic());
}

TEST(Acyclic, NonRecursiveCallsUntouched)
{
    Module m = parseModuleOrDie(R"(
func @helper(%x:64) {
entry:
  ret %x
}
func @main(%x:64) {
entry:
  %r = call.64 @helper(%x)
  ret %r
}
)");
    const auto stats = breakRecursion(m);
    EXPECT_EQ(stats.recursiveCallsBroken, 0u);
    EXPECT_EQ(CallGraph(m).callees(m.findFunc("main")).size(), 1u);
}

TEST(MemObjects, OnePerSite)
{
    const Module m = parseModuleOrDie(R"(
global @g 16
func @f() {
entry:
  %p = alloca 8
  %q = alloca 24
  %h = call.64 @malloc(16:64)
  %e = call.64 @nvram_get(@g)
  ret
}
)");
    const MemObjects objs(m);
    // 1 global + 2 stack + 1 heap + 1 external.
    EXPECT_EQ(objs.numObjects(), 5u);
    const GlobalId g = m.findGlobal("g");
    const ObjectId go = objs.objectOfGlobal(g);
    ASSERT_TRUE(go.valid());
    EXPECT_EQ(objs.object(go).kind, ObjKind::Global);
    EXPECT_EQ(objs.object(go).sizeBytes, 16u);
    int stack = 0, heap = 0, external = 0;
    for (const ObjectId oid : objs.allObjects()) {
        switch (objs.object(oid).kind) {
          case ObjKind::Stack: ++stack; break;
          case ObjKind::Heap: ++heap; break;
          case ObjKind::External: ++external; break;
          default: break;
        }
    }
    EXPECT_EQ(stack, 2);
    EXPECT_EQ(heap, 1);
    EXPECT_EQ(external, 1);
}

class PointsToTest : public ::testing::Test
{
  protected:
    void
    analyze(const std::string &text)
    {
        module_ = parseModuleOrDie(text);
        objects_ = std::make_unique<MemObjects>(module_);
        pts_ = std::make_unique<PointsTo>(module_, *objects_);
        pts_->run();
    }

    ValueId
    m_param(const std::string &func, std::size_t index) const
    {
        const FuncId fid = module_.findFunc(func);
        if (!fid.valid())
            return ValueId::invalid();
        return module_.func(fid).params.at(index);
    }

    ValueId
    namedValue(const std::string &name) const
    {
        for (std::size_t v = 0; v < module_.numValues(); ++v) {
            const ValueId vid(static_cast<ValueId::RawType>(v));
            if (module_.str(module_.value(vid).name) == name)
                return vid;
        }
        return ValueId::invalid();
    }

    Module module_;
    std::unique_ptr<MemObjects> objects_;
    std::unique_ptr<PointsTo> pts_;
};

TEST_F(PointsToTest, AllocaAndCopy)
{
    analyze(R"(
func @f() {
entry:
  %p = alloca 8
  %q = copy %p
  ret
}
)");
    const auto &pl = pts_->locs(namedValue("p"));
    const auto &ql = pts_->locs(namedValue("q"));
    ASSERT_EQ(pl.size(), 1u);
    EXPECT_EQ(pl, ql);
    EXPECT_EQ(pl.begin()->offset, 0);
}

TEST_F(PointsToTest, ConstantOffsetIsFieldSensitive)
{
    analyze(R"(
func @f() {
entry:
  %p = alloca 16
  %f8 = add %p, 8:64
  ret
}
)");
    const auto &fl = pts_->locs(namedValue("f8"));
    ASSERT_EQ(fl.size(), 1u);
    EXPECT_EQ(fl.begin()->offset, 8);
}

TEST_F(PointsToTest, SymbolicIndexCollapses)
{
    analyze(R"(
func @f(%i:64) {
entry:
  %p = alloca 64
  %e = add %p, %i
  ret
}
)");
    const auto &el = pts_->locs(namedValue("e"));
    ASSERT_EQ(el.size(), 1u);
    EXPECT_TRUE(el.begin()->collapsed());
}

TEST_F(PointsToTest, PtrMinusPtrHasNoLocs)
{
    analyze(R"(
func @f() {
entry:
  %p = alloca 16
  %q = alloca 16
  %d = sub %p, %q
  ret
}
)");
    EXPECT_TRUE(pts_->locs(namedValue("d")).empty());
}

TEST_F(PointsToTest, LoadSeesStoredPointer)
{
    analyze(R"(
func @f() {
entry:
  %slot = alloca 8
  %h = call.64 @malloc(16:64)
  store %slot, %h
  %l = load.64 %slot
  ret
}
)");
    const auto &hl = pts_->locs(namedValue("h"));
    const auto &ll = pts_->locs(namedValue("l"));
    ASSERT_EQ(hl.size(), 1u);
    EXPECT_EQ(hl, ll);
}

TEST_F(PointsToTest, FieldsAreSeparate)
{
    analyze(R"(
func @f() {
entry:
  %s = alloca 16
  %f0 = copy %s
  %f8 = add %s, 8:64
  %a = call.64 @malloc(8:64)
  %b = call.64 @malloc(8:64)
  store %f0, %a
  store %f8, %b
  %l0 = load.64 %f0
  %l8 = load.64 %f8
  ret
}
)");
    const auto &l0 = pts_->locs(namedValue("l0"));
    const auto &l8 = pts_->locs(namedValue("l8"));
    ASSERT_EQ(l0.size(), 1u);
    ASSERT_EQ(l8.size(), 1u);
    EXPECT_NE(*l0.begin(), *l8.begin());
    EXPECT_EQ(l0, pts_->locs(namedValue("a")));
    EXPECT_EQ(l8, pts_->locs(namedValue("b")));
}

TEST_F(PointsToTest, CollapsedStoreReachesAllFields)
{
    analyze(R"(
func @f(%i:64) {
entry:
  %s = alloca 16
  %any = add %s, %i
  %h = call.64 @malloc(8:64)
  store %any, %h
  %f0 = copy %s
  %l = load.64 %f0
  ret
}
)");
    EXPECT_EQ(pts_->locs(namedValue("l")), pts_->locs(namedValue("h")));
}

TEST_F(PointsToTest, CrossFunctionBinding)
{
    analyze(R"(
func @sink(%ptr:64) {
entry:
  %l = load.64 %ptr
  ret %l
}
func @main() {
entry:
  %slot = alloca 8
  %h = call.64 @malloc(16:64)
  store %slot, %h
  %r = call.64 @sink(%slot)
  ret
}
)");
    // The formal parameter sees the caller's stack slot...
    const ValueId ptr = m_param("sink", 0);
    ASSERT_TRUE(ptr.valid());
    EXPECT_EQ(pts_->locs(ptr), pts_->locs(namedValue("slot")));
    // ...and the call result sees the heap object through the return.
    EXPECT_EQ(pts_->locs(namedValue("r")), pts_->locs(namedValue("h")));

}

TEST_F(PointsToTest, StrcpyCopiesBufferContents)
{
    analyze(R"(
func @f() {
entry:
  %src = alloca 16
  %dst = alloca 16
  %h = call.64 @malloc(8:64)
  store %src, %h
  %r = call.64 @strcpy(%dst, %src)
  %l = load.64 %dst
  ret
}
)");
    const auto &ll = pts_->locs(namedValue("l"));
    const auto &hl = pts_->locs(namedValue("h"));
    ASSERT_EQ(hl.size(), 1u);
    EXPECT_TRUE(ll.count(*hl.begin()));
    // strcpy returns its destination.
    EXPECT_EQ(pts_->locs(namedValue("r")), pts_->locs(namedValue("dst")));
}

class DdgTest : public PointsToTest
{
  protected:
    void
    build(const std::string &text)
    {
        analyze(text);
        ddg_ = std::make_unique<Ddg>(module_, *pts_);
    }

    bool
    hasEdge(const std::string &from, const std::string &to,
            DepKind kind) const
    {
        const ValueId f = namedValue(from);
        const ValueId t = namedValue(to);
        for (const auto idx : ddg_->outEdges(f)) {
            const auto &e = ddg_->edge(idx);
            if (e.to == t && e.kind == kind && !e.pruned)
                return true;
        }
        return false;
    }

    std::unique_ptr<Ddg> ddg_;
};

TEST_F(DdgTest, SsaAndPtrArithEdges)
{
    build(R"(
func @f(%a:64) {
entry:
  %x = copy %a
  %y = add %x, 8:64
  %z = mul %y, %y
  ret %z
}
)");
    EXPECT_TRUE(hasEdge("x", "y", DepKind::PtrArith));
    EXPECT_TRUE(hasEdge("y", "z", DepKind::Ssa));
    EXPECT_FALSE(hasEdge("x", "z", DepKind::Ssa));
}

TEST_F(DdgTest, MemoryEdgeThroughPointsTo)
{
    build(R"(
func @f() {
entry:
  %slot = alloca 8
  %v = add 1:64, 2:64
  store %slot, %v
  %l = load.64 %slot
  ret %l
}
)");
    EXPECT_TRUE(hasEdge("v", "l", DepKind::Memory));
}

TEST_F(DdgTest, NoMemoryEdgeBetweenDistinctObjects)
{
    build(R"(
func @f() {
entry:
  %a = alloca 8
  %b = alloca 8
  %v = add 1:64, 2:64
  store %a, %v
  %l = load.64 %b
  ret %l
}
)");
    EXPECT_FALSE(hasEdge("v", "l", DepKind::Memory));
}

TEST_F(DdgTest, CallEdgesLabeledWithSite)
{
    build(R"(
func @callee(%p:64) {
entry:
  ret %p
}
func @main(%a:64) {
entry:
  %r = call.64 @callee(%a)
  ret %r
}
)");
    const ValueId a = namedValue("a");
    bool saw_call_arg = false, saw_call_ret = false;
    for (const auto idx : ddg_->outEdges(a)) {
        if (ddg_->edge(idx).kind == DepKind::CallArg) {
            saw_call_arg = true;
            EXPECT_TRUE(ddg_->edge(idx).site.valid());
        }
    }
    const ValueId r = namedValue("r");
    for (const auto idx : ddg_->inEdges(r)) {
        if (ddg_->edge(idx).kind == DepKind::CallRet)
            saw_call_ret = true;
    }
    EXPECT_TRUE(saw_call_arg);
    EXPECT_TRUE(saw_call_ret);
}

TEST_F(DdgTest, TaintFlowsFromExternalSource)
{
    build(R"(
global @key 8
func @f() {
entry:
  %t = call.64 @nvram_get(@key)
  %buf = alloca 64
  %r = call.64 @strcpy(%buf, %t)
  %l = load.8 %buf
  ret
}
)");
    // Content of buf derives from %t via the strcpy pseudo-store.
    EXPECT_TRUE(hasEdge("t", "l", DepKind::Memory));
}

TEST_F(DdgTest, PruningHidesEdges)
{
    build(R"(
func @f(%a:64) {
entry:
  %y = add %a, 8:64
  ret %y
}
)");
    const ValueId a = namedValue("a");
    ASSERT_FALSE(ddg_->outEdges(a).empty());
    const auto idx = ddg_->outEdges(a).front();
    EXPECT_FALSE(ddg_->edge(idx).pruned);
    ddg_->prune(idx);
    EXPECT_TRUE(ddg_->edge(idx).pruned);
    EXPECT_EQ(ddg_->numPruned(), 1u);
    ddg_->resetPruning();
    EXPECT_EQ(ddg_->numPruned(), 0u);
}

} // namespace
} // namespace manta
