/**
 * @file
 * Tests for the interprocedural taint engine (src/taint/) and its
 * checker family: seeded-flow detection on the fixed leak scenario
 * pack, the sanitizer kill, the type gate (barrier + endpoint
 * suppression) and its MANTA_TAINT_NOTYPE ablation flip under both
 * inference engines, per-function summary correctness, bit-identity
 * between the ModularBottomUp and WholeProgram schedules and under
 * print/parse roundtrips (run at MANTA_JOBS=1 and 8 by the ctest
 * matrix), byte-identical SARIF across inference engines, and the
 * campaign-level precision contract of the taint family.
 */
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/acyclic.h"
#include "frontend/generator.h"
#include "lint/campaign.h"
#include "lint/run.h"
#include "mir/parser.h"
#include "mir/printer.h"
#include "taint/taint.h"

namespace manta {
namespace {

/** One analyzed copy of the leak scenario pack. */
struct World
{
    GeneratedProgram program;
    std::unique_ptr<MantaAnalyzer> analyzer;
    std::unique_ptr<InferenceResult> inference;

    Module &module() { return *program.module; }
};

World
makeWorld(InferEngine engine)
{
    World w;
    w.program = generateLeakScenarios();
    makeAcyclic(*w.program.module);
    HybridConfig cfg = HybridConfig::full();
    cfg.inferEngine = engine;
    w.analyzer = std::make_unique<MantaAnalyzer>(*w.program.module, cfg);
    w.inference =
        std::make_unique<InferenceResult>(w.analyzer->infer(cfg));
    return w;
}

taint::TaintOptions
baseOptions()
{
    // Explicit options: the tests must not depend on MANTA_TAINT* in
    // the ambient environment.
    taint::TaintOptions opts;
    opts.useTypes = true;
    opts.sanitizers = true;
    opts.maxFactsPerValue = 256;
    opts.mode = ScheduleMode::ModularBottomUp;
    return opts;
}

const char *
checkerName(TaintChecker checker)
{
    switch (checker) {
    case TaintChecker::AddrLeak:
        return "addr-leak";
    case TaintChecker::TaintDeref:
        return "taint-deref";
    case TaintChecker::FormatString:
        return "format-string";
    }
    return "";
}

FuncId
funcNamed(const Module &m, const std::string &name)
{
    for (std::size_t f = 0; f < m.numFuncs(); ++f) {
        const FuncId fid(static_cast<FuncId::RawType>(f));
        if (m.str(m.func(fid).name) == name)
            return fid;
    }
    return FuncId::invalid();
}

/** Flows (any suppression state) whose sink sits in `func`. */
std::size_t
flowsInFunction(const World &w, const taint::TaintResult &result,
                const std::string &func, bool include_suppressed)
{
    const Module &m = *w.program.module;
    const FuncId fid = funcNamed(m, func);
    std::size_t count = 0;
    for (const taint::TaintFlow &flow : result.flows) {
        if (!include_suppressed && flow.suppressed)
            continue;
        if (m.block(m.inst(flow.sinkInst).parent).func == fid)
            ++count;
    }
    return count;
}

// ---------------------------------------------------------------------
// Seeded flows on the scenario pack.
// ---------------------------------------------------------------------

TEST(TaintScenarios, TypedRunMatchesSeeds)
{
    World w = makeWorld(InferEngine::Unify);
    const taint::TaintResult result =
        taint::runTaint(*w.analyzer, w.inference.get(), baseOptions());

    std::map<std::string, std::set<std::uint32_t>> reported;
    for (const taint::TaintFlow &flow : result.flows) {
        if (!flow.suppressed) {
            reported[taint::flowChecker(flow)].insert(
                w.module().inst(flow.sinkInst).srcTag);
        }
    }
    ASSERT_FALSE(w.program.truth.taintSeeds.empty());
    for (const TaintSeed &seed : w.program.truth.taintSeeds) {
        const bool hit =
            reported[checkerName(seed.checker)].count(seed.tag) != 0;
        EXPECT_EQ(hit, seed.real)
            << checkerName(seed.checker) << " tag " << seed.tag;
    }
}

TEST(TaintScenarios, EndpointGateRecordsSuppressedLeakDecoy)
{
    // The leak decoy's flow reaches its sink (strlen's result carries
    // the StackAddr fact it was introduced with) but the endpoint gate
    // marks it suppressed: the printed interval commits to numeric.
    World w = makeWorld(InferEngine::Unify);
    const taint::TaintResult result =
        taint::runTaint(*w.analyzer, w.inference.get(), baseOptions());
    EXPECT_EQ(flowsInFunction(w, result, "leak_decoy", true), 1u);
    EXPECT_EQ(flowsInFunction(w, result, "leak_decoy", false), 0u);
    EXPECT_GT(result.stats.suppressed, 0u);
}

TEST(TaintScenarios, BarrierStopsNumericMiddles)
{
    // The deref and format decoys never reach their sinks with types:
    // the strlen-derived middle is numeric-committed, and facts do not
    // propagate out of it.
    World w = makeWorld(InferEngine::Unify);
    const taint::TaintResult result =
        taint::runTaint(*w.analyzer, w.inference.get(), baseOptions());
    EXPECT_EQ(flowsInFunction(w, result, "deref_decoy", true), 0u);
    EXPECT_EQ(flowsInFunction(w, result, "fmt_decoy", true), 0u);
    EXPECT_GT(result.stats.barrierValues, 0u);
}

TEST(TaintScenarios, SanitizerKillsAtoiFlows)
{
    World w = makeWorld(InferEngine::Unify);

    taint::TaintOptions opts = baseOptions();
    const taint::TaintResult typed =
        taint::runTaint(*w.analyzer, w.inference.get(), opts);
    EXPECT_EQ(flowsInFunction(w, typed, "sanitized", true), 0u);

    // The kill is independent of the type gate: still no flow with the
    // ablation on.
    opts.useTypes = false;
    const taint::TaintResult untyped =
        taint::runTaint(*w.analyzer, w.inference.get(), opts);
    EXPECT_EQ(flowsInFunction(w, untyped, "sanitized", true), 0u);
    EXPECT_GT(untyped.stats.sanitizedEdges, 0u);

    // Switching sanitizers off (and the barrier, which would otherwise
    // stop the numeric atoi result) lets Input reach the dereference.
    opts.sanitizers = false;
    const taint::TaintResult unsanitized =
        taint::runTaint(*w.analyzer, w.inference.get(), opts);
    EXPECT_GT(flowsInFunction(w, unsanitized, "sanitized", true), 0u);
}

// ---------------------------------------------------------------------
// The ablation flip, on both inference engines.
// ---------------------------------------------------------------------

class TaintAblationTest : public ::testing::TestWithParam<InferEngine>
{};

TEST_P(TaintAblationTest, NoTypeLosesPrecisionOnSeededDecoys)
{
    World w = makeWorld(GetParam());

    taint::TaintOptions opts = baseOptions();
    const taint::TaintResult typed =
        taint::runTaint(*w.analyzer, w.inference.get(), opts);
    opts.useTypes = false;
    const taint::TaintResult untyped =
        taint::runTaint(*w.analyzer, w.inference.get(), opts);

    std::size_t decoys_reported_typed = 0;
    std::size_t decoys_reported_untyped = 0;
    std::size_t reals_reported_typed = 0;
    std::size_t reals_seeded = 0;
    std::size_t decoys_seeded = 0;
    const auto tags = [&](const taint::TaintResult &r) {
        std::set<std::uint32_t> t;
        for (const taint::TaintFlow &flow : r.flows) {
            if (!flow.suppressed)
                t.insert(w.module().inst(flow.sinkInst).srcTag);
        }
        return t;
    };
    const std::set<std::uint32_t> typed_tags = tags(typed);
    const std::set<std::uint32_t> untyped_tags = tags(untyped);
    for (const TaintSeed &seed : w.program.truth.taintSeeds) {
        if (seed.real) {
            ++reals_seeded;
            reals_reported_typed += typed_tags.count(seed.tag);
            // Recall never drops with types: every real seeded flow
            // survives the gate.
            EXPECT_TRUE(untyped_tags.count(seed.tag)) << seed.tag;
        } else {
            ++decoys_seeded;
            decoys_reported_typed += typed_tags.count(seed.tag);
            decoys_reported_untyped += untyped_tags.count(seed.tag);
        }
    }
    // Typed: all reals, no decoys. Untyped: every decoy becomes a
    // false positive -- the measurable precision loss the ablation
    // exists to demonstrate, on either inference engine.
    ASSERT_GT(reals_seeded, 0u);
    ASSERT_GT(decoys_seeded, 0u);
    EXPECT_EQ(decoys_reported_typed, 0u);
    EXPECT_EQ(reals_reported_typed, reals_seeded);
    EXPECT_EQ(decoys_reported_untyped, decoys_seeded);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, TaintAblationTest,
                         ::testing::Values(InferEngine::Unify,
                                           InferEngine::Subtype),
                         [](const auto &info) {
                             return info.param == InferEngine::Unify
                                        ? "Unify"
                                        : "Subtype";
                         });

// ---------------------------------------------------------------------
// Summaries.
// ---------------------------------------------------------------------

TEST(TaintSummaries, InterproceduralParamToRet)
{
    World w = makeWorld(InferEngine::Unify);
    const taint::TaintResult result =
        taint::runTaint(*w.analyzer, w.inference.get(), baseOptions());

    const FuncId pass = funcNamed(w.module(), "pass");
    ASSERT_TRUE(pass.valid());
    ASSERT_LT(pass.raw(), result.summaries.size());
    const taint::FnTaintSummary &summary = result.summaries[pass.raw()];
    EXPECT_EQ(summary.paramToRet & 1u, 1u);
    // The StackAddr fact from @leak_chain's buffer reaches @pass's
    // return at the fixpoint.
    EXPECT_FALSE(summary.retFacts.empty());

    // And the interprocedural leak itself is reported.
    EXPECT_EQ(flowsInFunction(w, result, "leak_chain", false), 1u);
}

// ---------------------------------------------------------------------
// Identity: schedules, jobs (via the ctest env matrix), roundtrip,
// engines. canonicalText is the identity artifact.
// ---------------------------------------------------------------------

TEST(TaintIdentityTest, ModularMatchesWholeProgram)
{
    World w = makeWorld(InferEngine::Unify);
    taint::TaintOptions opts = baseOptions();
    const taint::TaintResult modular =
        taint::runTaint(*w.analyzer, w.inference.get(), opts);
    opts.mode = ScheduleMode::WholeProgram;
    const taint::TaintResult wp =
        taint::runTaint(*w.analyzer, w.inference.get(), opts);
    EXPECT_EQ(modular.canonicalText(w.module()),
              wp.canonicalText(w.module()));
    EXPECT_EQ(modular.summaryText(w.module()),
              wp.summaryText(w.module()));
}

TEST(TaintIdentityTest, ModularMatchesWholeProgramOnGeneratedCorpus)
{
    // A salted random program exercises call graphs, recursion and
    // memory edges far beyond the scenario pack.
    GenConfig config;
    config.seed = 99;
    config.numFunctions = 14;
    config.leakRate = 0.25;
    config.leakDecoyRate = 0.25;
    config.realBugRate = 0.05;
    GeneratedProgram program = generateProgram(config);
    makeAcyclic(*program.module);
    MantaAnalyzer analyzer(*program.module, HybridConfig::full());
    const InferenceResult inference = analyzer.infer();

    taint::TaintOptions opts = baseOptions();
    const taint::TaintResult modular =
        taint::runTaint(analyzer, &inference, opts);
    opts.mode = ScheduleMode::WholeProgram;
    const taint::TaintResult wp = taint::runTaint(analyzer, &inference, opts);
    EXPECT_GT(modular.stats.flows + modular.stats.suppressed, 0u);
    EXPECT_EQ(modular.canonicalText(*program.module),
              wp.canonicalText(*program.module));
}

TEST(TaintIdentityTest, RoundtripStable)
{
    World w = makeWorld(InferEngine::Unify);
    const taint::TaintResult before =
        taint::runTaint(*w.analyzer, w.inference.get(), baseOptions());
    const std::string text = printModule(w.module());

    Module reparsed = parseModuleOrDie(text);
    MantaAnalyzer analyzer(reparsed, HybridConfig::full());
    const InferenceResult inference = analyzer.infer();
    const taint::TaintResult after =
        taint::runTaint(analyzer, &inference, baseOptions());
    EXPECT_EQ(before.canonicalText(w.module()),
              after.canonicalText(reparsed));
}

TEST(TaintIdentityTest, CanonicalTextIdenticalAcrossInferEngines)
{
    // Propagation ignores engine-specific DDG pruning, and the
    // scenario pack's endpoints are engine-robust (pointer-typed reals,
    // signature-committed numeric decoys), so even the gated artifact
    // is byte-identical between unify and subtype.
    World uni = makeWorld(InferEngine::Unify);
    World sub = makeWorld(InferEngine::Subtype);
    const taint::TaintResult u =
        taint::runTaint(*uni.analyzer, uni.inference.get(), baseOptions());
    const taint::TaintResult s =
        taint::runTaint(*sub.analyzer, sub.inference.get(), baseOptions());
    EXPECT_EQ(u.canonicalText(uni.module()), s.canonicalText(sub.module()));
}

// ---------------------------------------------------------------------
// SARIF identity across inference engines.
// ---------------------------------------------------------------------

TEST(TaintSarifTest, ByteIdenticalAcrossInferEngines)
{
    const auto sarif_for = [](InferEngine engine) {
        World w = makeWorld(engine);
        lint::LintOptions opts;
        opts.enabled = {"addr-leak", "taint-deref", "format-string"};
        opts.taintNoTypeOverride = 0;
        const lint::LintResult lint = lint::runLint(
            *w.analyzer, w.inference.get(), &w.program.truth, opts);
        std::vector<lint::SarifRun> runs(1);
        runs[0].artifact = "leak-scenarios.mir";
        runs[0].diagnostics = lint.diagnostics;
        return lint::sarifLog(runs, lint.rules);
    };
    const std::string uni = sarif_for(InferEngine::Unify);
    const std::string sub = sarif_for(InferEngine::Subtype);
    EXPECT_FALSE(uni.empty());
    EXPECT_EQ(uni, sub);
    // The taint family actually reported something, with flow steps.
    EXPECT_NE(uni.find("\"ruleId\": \"addr-leak\""), std::string::npos);
    EXPECT_NE(uni.find("flow source"), std::string::npos);
}

// ---------------------------------------------------------------------
// Campaign-level contract: the taint family scores, and the ablation
// drops its precision.
// ---------------------------------------------------------------------

TEST(TaintCampaign, TaintFamilyPrecisionAndAblationFlip)
{
    lint::LintCampaignOptions options;
    options.count = 8;
    options.stable = true;

    options.taintNoTypeOverride = 0;
    const lint::LintCampaignResult typed = lint::runLintCampaign(options);
    options.taintNoTypeOverride = 1;
    const lint::LintCampaignResult ablated = lint::runLintCampaign(options);

    const auto family = [](const lint::LintCampaignResult &result) {
        std::size_t diags = 0, matched = 0, reference = 0;
        for (const lint::LintCheckerSummary &summary : result.checkers) {
            if (summary.id == "addr-leak" || summary.id == "taint-deref" ||
                summary.id == "format-string") {
                diags += summary.diagnostics;
                matched += summary.matched;
                reference += summary.referenceDiagnostics;
            }
        }
        return std::make_tuple(diags, matched, reference);
    };
    const auto [typed_diags, typed_matched, typed_ref] = family(typed);
    const auto [ablated_diags, ablated_matched, ablated_ref] =
        family(ablated);

    // The corpus seeds taint flows, and typed precision clears the
    // 0.9 bar (BENCH_lint.json commits the full-size run).
    ASSERT_GT(typed_diags, 0u);
    ASSERT_GT(typed_ref, 0u);
    const double typed_precision =
        static_cast<double>(typed_matched) /
        static_cast<double>(typed_diags);
    EXPECT_GE(typed_precision, 0.9);

    // The ablation reports strictly more (the decoys) while matching
    // the same typed reference: measurable precision loss.
    ASSERT_GT(ablated_diags, typed_diags);
    const double ablated_precision =
        static_cast<double>(ablated_matched) /
        static_cast<double>(ablated_diags);
    EXPECT_LT(ablated_precision, typed_precision);
}

} // namespace
} // namespace manta
