/**
 * @file
 * Tests for the baseline emulations: their defining behavioural
 * signatures (RetDec never abstains, Ghidra stays regional, Retypd
 * times out under budget, DIRTY always predicts) and the bug-tool
 * emulations' pattern-matching behaviour.
 */
#include <gtest/gtest.h>

#include "analysis/acyclic.h"
#include "baselines/bugtools.h"
#include "baselines/learned.h"
#include "baselines/typetools.h"
#include "eval/harness.h"
#include "frontend/generator.h"
#include "mir/parser.h"

namespace manta {
namespace {

const char *kSpillProgram = R"(
func @helper(%p:64) {
entry:
  %slot = alloca 8
  store %slot, %p
  jmp next
next:
  %l = load.64 %slot
  %r = call.64 @strlen(%l)
  ret %r
}
)";

TEST(RetdecLike, NeverAbstains)
{
    Module m = parseModuleOrDie(kSpillProgram);
    const BaselineOutcome out = runRetdecLike(m);
    for (std::size_t v = 0; v < m.numValues(); ++v) {
        const ValueId vid(static_cast<ValueId::RawType>(v));
        const ValueKind kind = m.value(vid).kind;
        if (kind != ValueKind::Argument && kind != ValueKind::InstResult)
            continue;
        EXPECT_TRUE(out.types.count(vid) > 0) << "v" << v;
    }
}

TEST(RetdecLike, DefaultsUnresolvedToInt32)
{
    Module m = parseModuleOrDie(kSpillProgram);
    const BaselineOutcome out = runRetdecLike(m);
    TypeTable &tt = m.types();
    // The pointer parameter has no local direct hint: defaults to i32.
    const ValueId p = m.func(m.findFunc("helper")).params[0];
    ASSERT_TRUE(out.types.count(p));
    EXPECT_EQ(out.types.at(p), tt.intTy(32));
}

TEST(GhidraLike, RegionalPropagationOnly)
{
    Module m = parseModuleOrDie(kSpillProgram);
    const BaselineOutcome out = runGhidraLike(m);
    TypeTable &tt = m.types();
    // The reload crosses a block boundary: Ghidra cannot connect the
    // strlen hint back to the parameter.
    const ValueId p = m.func(m.findFunc("helper")).params[0];
    const auto it = out.types.find(p);
    if (it != out.types.end()) {
        EXPECT_FALSE(tt.isPtr(it->second));
    }
}

TEST(GhidraLike, InBlockSlotTrackingWorks)
{
    Module m = parseModuleOrDie(R"(
func @f() {
entry:
  %h = call.64 @malloc(8:64)
  %slot = alloca 8
  store %slot, %h
  %l = load.64 %slot
  ret %l
}
)");
    const BaselineOutcome out = runGhidraLike(m);
    TypeTable &tt = m.types();
    // Same-block store/load: the malloc pointer reaches the reload.
    ValueId l;
    for (std::size_t v = 0; v < m.numValues(); ++v) {
        const ValueId vid(static_cast<ValueId::RawType>(v));
        if (m.str(m.value(vid).name) == "l")
            l = vid;
    }
    ASSERT_TRUE(out.types.count(l));
    EXPECT_TRUE(tt.isPtr(out.types.at(l)));
}

TEST(RetypdLike, TimesOutUnderBudget)
{
    GenConfig cfg;
    cfg.seed = 31;
    cfg.numFunctions = 40;
    GeneratedProgram prog = generateProgram(cfg);
    const BaselineOutcome small_budget =
        runRetypdLike(*prog.module, 1000);
    EXPECT_TRUE(small_budget.timedOut);
    EXPECT_TRUE(small_budget.types.empty());
    const BaselineOutcome big_budget =
        runRetypdLike(*prog.module, 1u << 30);
    EXPECT_FALSE(big_budget.timedOut);
    EXPECT_FALSE(big_budget.types.empty());
}

TEST(RetypdLike, LiteAndRealEnginesOwnDistinctNames)
{
    // The budget-capped closure surrogate must present as
    // "Retypd-lite" in every table; the real polymorphic subtyping
    // engine (src/subtype/) owns the bare "Retypd" column.
    GenConfig cfg;
    cfg.seed = 31;
    cfg.numFunctions = 6;
    GeneratedProgram prog = generateProgram(cfg);
    makeAcyclic(*prog.module);

    const BaselineOutcome lite = runRetypdLike(*prog.module);
    EXPECT_EQ(lite.name, "Retypd-lite");

    const BaselineOutcome real = runRetypdReal(*prog.module);
    EXPECT_EQ(real.name, "Retypd");
    EXPECT_FALSE(real.timedOut);
    EXPECT_FALSE(real.types.empty());
}

TEST(RetypdLike, WidensNumericsToRegisterClass)
{
    Module m = parseModuleOrDie(R"(
func @f(%a:64) {
entry:
  %x = mul %a, 3:64
  ret %x
}
)");
    const BaselineOutcome out = runRetypdLike(m);
    TypeTable &tt = m.types();
    for (const auto &[v, t] : out.types) {
        if (tt.isNumeric(t)) {
            EXPECT_EQ(tt.kind(t), TypeKind::Num) << tt.toString(t);
        }
    }
}

TEST(DirtyModel, TrainsAndAlwaysPredicts)
{
    const DirtyModel model = trainDirtyModel(4);
    EXPECT_GT(model.numSamples(), 100u);

    GenConfig cfg;
    cfg.seed = 424242; // unseen
    cfg.numFunctions = 15;
    GeneratedProgram prog = generateProgram(cfg);
    const BaselineOutcome out = model.predict(*prog.module);
    std::size_t variables = 0;
    for (std::size_t v = 0; v < prog.module->numValues(); ++v) {
        const ValueKind kind =
            prog.module->value(ValueId(ValueId::RawType(v))).kind;
        variables += kind == ValueKind::Argument ||
                     kind == ValueKind::InstResult;
    }
    EXPECT_EQ(out.types.size(), variables);
}

TEST(DirtyModel, BeatsChanceOnUnseenPrograms)
{
    const DirtyModel model = trainDirtyModel(6);
    GenConfig cfg;
    cfg.seed = 515151;
    cfg.numFunctions = 25;
    GeneratedProgram prog = generateProgram(cfg);
    makeAcyclic(*prog.module);
    const BaselineOutcome out = model.predict(*prog.module);
    const TypeEval eval =
        evalTypeMap(*prog.module, prog.truth, out.types);
    // Five classes: chance is ~20-35% depending on priors; the model
    // must do clearly better.
    EXPECT_GT(eval.precision(), 0.4);
}

TEST(DirtyModel, FeatureExtractionIsStable)
{
    Module m = parseModuleOrDie(R"(
func @f(%a:64) {
entry:
  %x = load.64 %a
  ret %x
}
)");
    const ValueId a = m.func(m.findFunc("f")).params[0];
    const auto f1 = DirtyModel::features(m, a);
    const auto f2 = DirtyModel::features(m, a);
    EXPECT_EQ(f1, f2);
    EXPECT_TRUE(f1[0]);  // width 64
    EXPECT_TRUE(f1[3]);  // is argument
    EXPECT_TRUE(f1[15]); // used as load address
}

class BugToolTest : public ::testing::Test
{
  protected:
    void
    load(const std::string &text)
    {
        module_ = parseModuleOrDie(text);
        makeAcyclic(module_);
        analyzer_ =
            std::make_unique<MantaAnalyzer>(module_, HybridConfig::full());
    }

    Module module_;
    std::unique_ptr<MantaAnalyzer> analyzer_;
};

TEST_F(BugToolTest, CweCheckerFlagsPatternsWithoutTaint)
{
    // A perfectly safe literal copy into a stack buffer still triggers
    // the pattern matcher (its FP class).
    load(R"(
string @cfg "mode=1"
func @f() {
entry:
  %buf = alloca 64
  %r = call.64 @strcpy(%buf, @cfg)
  ret
}
)");
    const BugToolOutcome out = runCweCheckerLike(*analyzer_);
    ASSERT_EQ(out.reports.size(), 1u);
    EXPECT_EQ(out.reports[0].kind, CheckerKind::BOF);
}

TEST_F(BugToolTest, CweCheckerIgnoresLiteralSystem)
{
    load(R"(
string @cmd "reboot"
func @f() {
entry:
  %r = call.32 @system(@cmd)
  ret
}
)");
    EXPECT_TRUE(runCweCheckerLike(*analyzer_).reports.empty());
}

TEST_F(BugToolTest, CweCheckerUafIgnoresOrdering)
{
    // Use BEFORE free still reported: no ordering reasoning (FP).
    load(R"(
func @f() {
entry:
  %h = call.64 @malloc(8:64)
  %v = load.64 %h
  call @free(%h)
  ret
}
)");
    const BugToolOutcome out = runCweCheckerLike(*analyzer_);
    EXPECT_FALSE(out.reports.empty());
}

TEST_F(BugToolTest, SatcReportsKeywordProximity)
{
    // No actual taint flow, but a keyword literal shares the function
    // with a sink: SaTC reports it.
    load(R"(
string @kw "wan_ifname"
func @f(%x:64) {
entry:
  %r1 = call.64 @strlen(@kw)
  %buf = alloca 32
  %r2 = call.32 @system(%buf)
  ret
}
)");
    const BugToolOutcome out = runSatcLike(*analyzer_);
    EXPECT_FALSE(out.reports.empty());
}

TEST_F(BugToolTest, ArbiterPrunesEverything)
{
    // A genuine cross-function CMI: the under-constrained filter
    // rejects it (source and sink in different blocks/functions).
    load(R"(
string @key "cmd"
func @run(%c:64) {
entry:
  %r = call.32 @system(%c)
  ret
}
func @main() {
entry:
  %t = call.64 @nvram_get(@key)
  %r = call.32 @run(%t)
  ret
}
)");
    const BugToolOutcome out = runArbiterLike(*analyzer_);
    EXPECT_TRUE(out.reports.empty());
}

} // namespace
} // namespace manta
