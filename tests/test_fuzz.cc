/**
 * @file
 * Tests for the differential fuzzing harness itself: sampler
 * determinism, synthesized-module well-formedness, the oracle battery
 * on known-good seeds, fault injection (the chaos flags must make the
 * matching oracle fire), and the reproducer shrinker.
 */
#include <gtest/gtest.h>

#include <set>

#include "fuzz/campaign.h"
#include "fuzz/oracles.h"
#include "fuzz/sample.h"
#include "fuzz/shrink.h"
#include "mir/parser.h"
#include "mir/printer.h"
#include "mir/verifier.h"
#include "support/chaos.h"

namespace manta {
namespace {

using fuzz::OracleId;

bool
failedOracle(const fuzz::CaseResult &r, OracleId which)
{
    return r.counters.failures[static_cast<std::size_t>(which)] > 0;
}

TEST(FuzzSample, CaseSeedsAreDistinctAndDeterministic)
{
    std::set<std::uint64_t> seen;
    for (std::size_t i = 0; i < 256; ++i) {
        const std::uint64_t s = fuzz::caseSeedFor(1, i);
        EXPECT_EQ(s, fuzz::caseSeedFor(1, i));
        EXPECT_TRUE(seen.insert(s).second) << "collision at index " << i;
    }
    // Different base seeds diverge immediately.
    EXPECT_NE(fuzz::caseSeedFor(1, 0), fuzz::caseSeedFor(2, 0));
}

TEST(FuzzSample, SampleCaseIsPureInItsSeed)
{
    for (std::uint64_t seed : {0x1234ull, 0xdeadbeefull, 7ull}) {
        const fuzz::FuzzCase a = fuzz::sampleCase(seed);
        const fuzz::FuzzCase b = fuzz::sampleCase(seed);
        EXPECT_EQ(a.synthesized, b.synthesized);
        EXPECT_EQ(a.strict, b.strict);
        EXPECT_EQ(a.config.seed, b.config.seed);
        EXPECT_EQ(a.config.numFunctions, b.config.numFunctions);
        EXPECT_EQ(a.config.stmtsPerFunction, b.config.stmtsPerFunction);
    }
}

TEST(FuzzSample, StrictCasesDisableSoundnessNoise)
{
    std::size_t strict_seen = 0;
    for (std::size_t i = 0; i < 64; ++i) {
        const fuzz::FuzzCase c = fuzz::sampleCase(fuzz::caseSeedFor(3, i));
        if (c.synthesized || !c.strict)
            continue;
        ++strict_seen;
        EXPECT_EQ(c.config.polymorphicRate, 0.0);
        EXPECT_EQ(c.config.recycleRate, 0.0);
        EXPECT_EQ(c.config.errorCompareRate, 0.0);
        EXPECT_EQ(c.config.maskRate, 0.0);
    }
    EXPECT_GT(strict_seen, 0u);
}

TEST(FuzzSample, NoCaseInjectsRealBugs)
{
    // The harness fuzzes the toolchain, not the bug detector: every
    // generated program must be bug-free so the interp oracle can
    // demand a clean (or benignly-null-dereferencing) run.
    for (std::size_t i = 0; i < 64; ++i) {
        const fuzz::FuzzCase c = fuzz::sampleCase(fuzz::caseSeedFor(9, i));
        EXPECT_EQ(c.config.realBugRate, 0.0);
        EXPECT_EQ(c.config.decoyRate, 0.0);
    }
}

TEST(FuzzSample, SynthesizedModulesVerifyAndRoundTrip)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 99ull, 0xabcdefull}) {
        const auto m = fuzz::synthesizeModule(seed);
        ASSERT_NE(m, nullptr);
        EXPECT_TRUE(verifyModule(*m).empty()) << "seed " << seed;
        const std::string text = printModule(*m);
        Module reparsed;
        std::string error;
        ASSERT_TRUE(parseModule(text, reparsed, error))
            << "seed " << seed << ": " << error;
        EXPECT_EQ(printModule(reparsed), text);
    }
}

TEST(FuzzSample, MaterializeIsDeterministic)
{
    const fuzz::FuzzCase c = fuzz::sampleCase(fuzz::caseSeedFor(4, 2));
    const fuzz::CaseProgram a = fuzz::materialize(c);
    const fuzz::CaseProgram b = fuzz::materialize(c);
    EXPECT_EQ(printModule(*a.module), printModule(*b.module));
    EXPECT_EQ(a.hasTruth, b.hasTruth);
}

TEST(FuzzOracles, NamesRoundTrip)
{
    for (std::size_t i = 0; i < fuzz::kNumOracles; ++i) {
        const OracleId id = static_cast<OracleId>(i);
        OracleId back;
        ASSERT_TRUE(fuzz::oracleFromName(fuzz::oracleName(id), back));
        EXPECT_EQ(back, id);
    }
    OracleId ignored;
    EXPECT_FALSE(fuzz::oracleFromName("no_such_oracle", ignored));
}

TEST(FuzzOracles, KnownGoodSeedsPassTheFullBattery)
{
    for (std::size_t i = 0; i < 8; ++i) {
        const std::uint64_t seed = fuzz::caseSeedFor(1, i);
        const fuzz::CaseResult r = fuzz::runCase(fuzz::sampleCase(seed));
        for (const fuzz::OracleFailure &f : r.failures) {
            ADD_FAILURE() << "seed 0x" << std::hex << seed << std::dec
                          << ": " << fuzz::oracleName(f.oracle) << ": "
                          << f.detail;
        }
        EXPECT_GT(r.insts, 0u);
    }
}

TEST(FuzzOracles, VerdictsAreDeterministic)
{
    const fuzz::FuzzCase c = fuzz::sampleCase(fuzz::caseSeedFor(2, 5));
    const fuzz::CaseResult a = fuzz::runCase(c);
    const fuzz::CaseResult b = fuzz::runCase(c);
    EXPECT_EQ(a.failures.size(), b.failures.size());
    EXPECT_EQ(a.counters.runs, b.counters.runs);
    EXPECT_EQ(a.counters.failures, b.counters.failures);
    EXPECT_EQ(a.insts, b.insts);
}

/** Find a generator-backed (ground-truth-carrying) case. */
fuzz::FuzzCase
firstGeneratedCase(std::uint64_t base, bool want_strict)
{
    for (std::size_t i = 0; i < 256; ++i) {
        const fuzz::FuzzCase c = fuzz::sampleCase(fuzz::caseSeedFor(base, i));
        if (!c.synthesized && c.strict == want_strict)
            return c;
    }
    ADD_FAILURE() << "no generated case in 256 samples";
    return fuzz::sampleCase(fuzz::caseSeedFor(base, 0));
}

TEST(FuzzChaos, BrokenMeetIsCaughtAndShrinksSmall)
{
    // Flip the lattice meet to a join: the ground-truth oracle must
    // fire within a small campaign of strict generated cases, and the
    // shrinker must bring one such failure under the 30-instruction
    // acceptance bar. Not every case exercises the corrupted bounds, so
    // scan a fixed window instead of pinning one seed.
    ChaosScope broken(chaosBreakMeet());
    std::size_t caught = 0;
    std::size_t best = SIZE_MAX;
    for (std::size_t i = 0; i < 64 && caught < 4; ++i) {
        const fuzz::FuzzCase c = fuzz::sampleCase(fuzz::caseSeedFor(1, i));
        if (c.synthesized || !c.strict)
            continue;
        const fuzz::CaseResult r = fuzz::runCase(c);
        if (!failedOracle(r, OracleId::GroundTruth))
            continue;
        ++caught;
        const fuzz::CaseShrinkResult shrunk =
            fuzz::shrinkCase(c, OracleId::GroundTruth, 600);
        // The shrunk case must still trip the oracle.
        EXPECT_TRUE(failedOracle(fuzz::runCase(shrunk.shrunkCase),
                                 OracleId::GroundTruth));
        best = std::min(best, shrunk.insts);
        if (best <= 30)
            break;
    }
    ASSERT_GT(caught, 0u) << "chaos meet went undetected in 64 cases";
    EXPECT_LE(best, 30u)
        << "no reproducer shrank below the acceptance bar";
}

TEST(FuzzChaos, BrokenSparsePtsIsCaughtByTheDiffOracle)
{
    const fuzz::FuzzCase victim = firstGeneratedCase(12, /*strict=*/false);
    ChaosScope broken(chaosBreakPts());
    const fuzz::CaseResult r = fuzz::runCase(victim);
    ASSERT_FALSE(r.ok()) << "chaos pts went undetected";
    EXPECT_TRUE(failedOracle(r, OracleId::PtsDiff));

    // pts_diff is truth-free, so text-level ddmin applies and must
    // strictly reduce the module.
    const std::string text =
        printModule(*fuzz::materialize(victim).module);
    ASSERT_TRUE(fuzz::textFailsOracle(text, OracleId::PtsDiff));
    const fuzz::ShrinkResult s = fuzz::shrinkText(
        text,
        [](const std::string &t) {
            return fuzz::textFailsOracle(t, OracleId::PtsDiff);
        },
        300);
    EXPECT_TRUE(s.changed);
    EXPECT_GT(s.evals, 0u);
    ASSERT_TRUE(fuzz::textFailsOracle(s.text, OracleId::PtsDiff));
}

TEST(FuzzShrink, DdminMinimizesAgainstASyntheticPredicate)
{
    // Synthetic oracle: "the module still defines %keep". ddmin must
    // strip everything else that is individually removable.
    const fuzz::FuzzCase c = firstGeneratedCase(13, /*strict=*/false);
    std::string text = printModule(*fuzz::materialize(c).module);
    text += "\nfunc @shrink_anchor() {\nentry:\n"
            "  %keep = copy 42:64\n  ret %keep\n}\n";
    auto fails = [](const std::string &t) {
        Module m;
        std::string error;
        if (!parseModule(t, m, error))
            return false;
        return t.find("%keep = copy 42:64") != std::string::npos;
    };
    ASSERT_TRUE(fails(text));
    const fuzz::ShrinkResult s = fuzz::shrinkText(text, fails, 400);
    EXPECT_TRUE(s.changed);
    EXPECT_TRUE(fails(s.text));
    // Everything but the anchor function's skeleton is removable.
    EXPECT_LE(s.insts, 4u) << s.text;
}

TEST(FuzzCampaign, RepeatedRunsAreIdentical)
{
    fuzz::CampaignOptions opts;
    opts.seed = 21;
    opts.count = 16;
    opts.jobs = 2;
    opts.shrink = false;
    opts.writeJson = false;
    opts.writeReproducers = false;
    const fuzz::CampaignResult a = fuzz::runCampaign(opts);
    const fuzz::CampaignResult b = fuzz::runCampaign(opts);
    EXPECT_EQ(a.cases, b.cases);
    EXPECT_EQ(a.failedCases, b.failedCases);
    EXPECT_EQ(a.totalInsts, b.totalInsts);
    EXPECT_EQ(a.counters.runs, b.counters.runs);
    EXPECT_EQ(a.counters.failures, b.counters.failures);
}

TEST(FuzzCampaign, ReplayMatchesCampaignVerdict)
{
    const std::uint64_t seed = fuzz::caseSeedFor(21, 3);
    fuzz::FuzzCase c;
    const fuzz::CaseResult r = fuzz::replayCase(seed, &c);
    EXPECT_EQ(c.caseSeed, seed);
    EXPECT_TRUE(r.ok());
    // The advertised replay command names the same seed.
    const std::string cmd = fuzz::replayCommand(seed);
    EXPECT_NE(cmd.find("--replay"), std::string::npos);
    EXPECT_NE(cmd.find("fuzz_driver"), std::string::npos);
}

} // namespace
} // namespace manta
