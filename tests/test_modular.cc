/**
 * @file
 * Tests for the modular bottom-up engine: callgraph condensation
 * (analysis/scc.h), wave planning (core/modular.h), and the central
 * contract that ScheduleMode::ModularBottomUp produces bit-identical
 * refinement overlays to ScheduleMode::WholeProgram.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/acyclic.h"
#include "analysis/callgraph.h"
#include "analysis/scc.h"
#include "core/modular.h"
#include "core/pipeline.h"
#include "core/refine_flow.h"
#include "frontend/corpus.h"
#include "mir/parser.h"

namespace manta {
namespace {

// ---- Condensation -------------------------------------------------

class SccTest : public ::testing::Test
{
  protected:
    void
    load(const std::string &text)
    {
        module_ = parseModuleOrDie(text);
    }

    FuncId
    fn(const std::string &name) const
    {
        for (std::size_t f = 0; f < module_.numFuncs(); ++f) {
            const FuncId fid(static_cast<FuncId::RawType>(f));
            if (module_.str(module_.func(fid).name) == name)
                return fid;
        }
        return FuncId::invalid();
    }

    Module module_;
};

TEST_F(SccTest, CondensesMutualRecursionSelfLoopsAndLeaves)
{
    // a <-> b (mutual recursion), c -> c (self loop), d (leaf),
    // main -> a, c, d.
    load(R"(
func @a() {
entry:
  %r = call.64 @b()
  ret %r
}
func @b() {
entry:
  %r = call.64 @a()
  ret %r
}
func @c() {
entry:
  %r = call.64 @c()
  ret %r
}
func @d() {
entry:
  ret 1:64
}
func @main() {
entry:
  %x = call.64 @a()
  %y = call.64 @c()
  %z = call.64 @d()
  ret %z
}
)");
    const CallGraph graph(module_);
    const SccGraph sccs(graph, module_.numFuncs());

    // {a,b}, {c}, {d}, {main} - plus possible external shells.
    EXPECT_EQ(sccs.sccOf(fn("a")), sccs.sccOf(fn("b")));
    EXPECT_NE(sccs.sccOf(fn("a")), sccs.sccOf(fn("c")));
    EXPECT_NE(sccs.sccOf(fn("a")), sccs.sccOf(fn("main")));

    const std::uint32_t ab = sccs.sccOf(fn("a"));
    EXPECT_TRUE(sccs.isRecursive(ab));
    EXPECT_FALSE(sccs.isTrivial(ab));
    EXPECT_EQ(sccs.members(ab).size(), 2u);

    const std::uint32_t c = sccs.sccOf(fn("c"));
    EXPECT_TRUE(sccs.isRecursive(c));
    EXPECT_FALSE(sccs.isTrivial(c));
    EXPECT_EQ(sccs.members(c).size(), 1u);

    const std::uint32_t d = sccs.sccOf(fn("d"));
    EXPECT_FALSE(sccs.isRecursive(d));
    EXPECT_TRUE(sccs.isTrivial(d));

    // Bottom-up waves: the leaves come first, main strictly after its
    // callees.
    EXPECT_EQ(sccs.waveOf(ab), 0u);
    EXPECT_EQ(sccs.waveOf(c), 0u);
    EXPECT_EQ(sccs.waveOf(d), 0u);
    EXPECT_GT(sccs.waveOf(sccs.sccOf(fn("main"))), 0u);

    // Condensation edges: main's SCC sees three distinct callee SCCs.
    const auto &callees = sccs.calleeSccs(sccs.sccOf(fn("main")));
    EXPECT_EQ(callees.size(), 3u);
    for (const std::uint32_t callee : callees)
        EXPECT_TRUE(std::find(sccs.callerSccs(callee).begin(),
                              sccs.callerSccs(callee).end(),
                              sccs.sccOf(fn("main"))) !=
                    sccs.callerSccs(callee).end());
}

TEST_F(SccTest, DegenerateWholeModuleScc)
{
    // Every function calls the next, cyclically: one SCC, one wave.
    load(R"(
func @a() {
entry:
  %r = call.64 @b()
  ret %r
}
func @b() {
entry:
  %r = call.64 @c()
  ret %r
}
func @c() {
entry:
  %r = call.64 @a()
  ret %r
}
)");
    const CallGraph graph(module_);
    const SccGraph sccs(graph, module_.numFuncs());
    const std::uint32_t scc = sccs.sccOf(fn("a"));
    EXPECT_EQ(sccs.sccOf(fn("b")), scc);
    EXPECT_EQ(sccs.sccOf(fn("c")), scc);
    EXPECT_EQ(sccs.members(scc).size(), 3u);
    EXPECT_TRUE(sccs.isRecursive(scc));
    EXPECT_EQ(sccs.waveOf(scc), 0u);
    EXPECT_TRUE(sccs.calleeSccs(scc).empty());
    // The closure of any member is the whole cycle.
    const auto frontier = sccs.closure({fn("b")});
    EXPECT_EQ(frontier, callClosure(graph, module_, {fn("b")}));
    EXPECT_GE(frontier.size(), 3u);
}

TEST_F(SccTest, ClosureMatchesCallClosure)
{
    // On a generated project the condensation-based frontier must equal
    // the function-graph closure for every singleton dirty set.
    GeneratedProgram prog = buildProject(standardCorpus().front());
    Module &module = *prog.module;
    const CallGraph graph(module);
    const SccGraph sccs(graph, module.numFuncs());
    for (std::size_t f = 0; f < module.numFuncs(); ++f) {
        const FuncId fid(static_cast<FuncId::RawType>(f));
        const std::vector<FuncId> dirty = {fid};
        EXPECT_EQ(sccs.closure(dirty), callClosure(graph, module, dirty))
            << "frontier mismatch for function " << f;
    }
}

// ---- Wave planning ------------------------------------------------

TEST(ModularScheduleTest, PlanCoversEveryMissOnceInBottomUpWaves)
{
    GeneratedProgram prog = buildProject(standardCorpus()[1]);
    Module &module = *prog.module;
    makeAcyclic(module);
    const CallGraph graph(module);
    const ModularSchedule schedule(module, graph);

    // Worklist: every value in the module; misses: every other one.
    std::vector<ValueId> candidates;
    for (std::size_t v = 0; v < module.numValues(); ++v)
        candidates.push_back(ValueId(static_cast<ValueId::RawType>(v)));
    std::vector<std::size_t> misses;
    for (std::size_t k = 0; k < candidates.size(); k += 2)
        misses.push_back(k);

    const auto waves = schedule.plan(candidates, misses, 7);
    std::set<std::size_t> seen;
    std::uint32_t last_wave = 0;
    for (const auto &wave : waves) {
        ASSERT_FALSE(wave.packs.empty());
        std::uint32_t wave_id = 0;
        bool first = true;
        for (const auto &pack : wave.packs) {
            ASSERT_FALSE(pack.ks.empty());
            EXPECT_LE(pack.ks.size(), 7u);
            EXPECT_TRUE(std::is_sorted(pack.ks.begin(), pack.ks.end()));
            for (const std::size_t k : pack.ks) {
                EXPECT_TRUE(seen.insert(k).second)
                    << "miss position scheduled twice";
                const std::uint32_t vw = schedule.waveOfValue(
                    candidates[misses[k]].raw());
                if (first) {
                    wave_id = vw;
                    first = false;
                }
                EXPECT_EQ(vw, wave_id)
                    << "pack mixes candidates from different waves";
            }
        }
        EXPECT_GE(wave_id, last_wave) << "waves not bottom-up";
        last_wave = wave_id;
    }
    EXPECT_EQ(seen.size(), misses.size());
}

// ---- Bit-identity against the whole-program path ------------------

class ModularIdentityTest : public ::testing::TestWithParam<int>
{};

TEST_P(ModularIdentityTest, OverlaysMatchWholeProgram)
{
    const ProjectProfile profile = standardCorpus()[GetParam()];
    GeneratedProgram prog = buildProject(profile);
    makeAcyclic(*prog.module);
    MantaAnalyzer analyzer(*prog.module);

    HybridConfig modular = HybridConfig::full();
    modular.scheduleMode = ScheduleMode::ModularBottomUp;
    HybridConfig wp = HybridConfig::full();
    wp.scheduleMode = ScheduleMode::WholeProgram;

    const InferenceResult a = analyzer.infer(modular);
    const InferenceResult b = analyzer.infer(wp);

    // The modular engine reorders (and summary-shares) only the
    // read-only walk phase; every refined bound must be bit-identical.
    ASSERT_EQ(a.overlay().size(), b.overlay().size());
    for (const auto &[v, bp] : a.overlay()) {
        const auto it = b.overlay().find(v);
        ASSERT_NE(it, b.overlay().end());
        EXPECT_EQ(bp.upper, it->second.upper);
        EXPECT_EQ(bp.lower, it->second.lower);
    }
    ASSERT_EQ(a.siteOverlay().size(), b.siteOverlay().size());
    for (const auto &[sv, bp] : a.siteOverlay()) {
        const auto it = b.siteOverlay().find(sv);
        ASSERT_NE(it, b.siteOverlay().end());
        EXPECT_EQ(bp.upper, it->second.upper);
        EXPECT_EQ(bp.lower, it->second.lower);
    }

    // And the modular run really exercised the machinery under test.
    EXPECT_GT(a.profile().sccCount, 0u);
    EXPECT_GT(a.profile().sccWaves, 0u);
    EXPECT_EQ(b.profile().sccCount, 0u);
}

// All 14 standard corpus projects: the acceptance bar for the modular
// engine is bit-identity on every one of them.
INSTANTIATE_TEST_SUITE_P(Corpus, ModularIdentityTest,
                         ::testing::Range(0, 14));

// ---- Flat-index size gate -----------------------------------------

TEST(FlatIndexGate, ThresholdIsPinnedAndSmallModulesAreIneligible)
{
    // The flattened hint/CFG indexes are a whole-module pass; below
    // this instruction count their setup costs more than the flat hot
    // loop saves, which is exactly the tiny-module regression the gate
    // exists to prevent. Moving the threshold is a deliberate
    // performance decision - re-measure bench/micro_refine before
    // editing this pin.
    EXPECT_EQ(FlowRefinement::kFlatIndexMinInsts, 500u);

    Module small = parseModuleOrDie(R"(
func @main() {
entry:
  %a = add 1:64, 2:64
  ret %a
}
)");
    ASSERT_LT(small.numInsts(), FlowRefinement::kFlatIndexMinInsts);
    EXPECT_FALSE(FlowRefinement::flatIndexEligible(small));

    // A standard-corpus project sits far above the gate.
    GeneratedProgram prog = buildProject(standardCorpus()[0]);
    ASSERT_GE(prog.module->numInsts(), FlowRefinement::kFlatIndexMinInsts);
    EXPECT_TRUE(FlowRefinement::flatIndexEligible(*prog.module));
}

TEST(FlatIndexGate, TinyModuleModularRunStillMatchesWholeProgram)
{
    // Below the gate the modular batch walk answers through the
    // interpreted path; its bounds must stay bit-identical to the
    // whole-program schedule (the gate is performance-only).
    Module m = parseModuleOrDie(R"(
func @use(%p:64) {
entry:
  %v = load.64 %p
  ret %v
}
func @main() {
entry:
  %slot = alloca 8
  store %slot, 7:64
  %r = call.64 @use(%slot)
  ret %r
}
)");
    ASSERT_FALSE(FlowRefinement::flatIndexEligible(m));
    makeAcyclic(m);
    MantaAnalyzer analyzer(m);

    HybridConfig modular = HybridConfig::full();
    modular.scheduleMode = ScheduleMode::ModularBottomUp;
    HybridConfig wp = HybridConfig::full();
    wp.scheduleMode = ScheduleMode::WholeProgram;

    const InferenceResult a = analyzer.infer(modular);
    const InferenceResult b = analyzer.infer(wp);
    ASSERT_EQ(a.overlay().size(), b.overlay().size());
    for (const auto &[v, bp] : a.overlay()) {
        const auto it = b.overlay().find(v);
        ASSERT_NE(it, b.overlay().end());
        EXPECT_EQ(bp.upper, it->second.upper);
        EXPECT_EQ(bp.lower, it->second.lower);
    }
}

} // namespace
} // namespace manta
