/**
 * @file
 * Tests for the work-stealing TaskPool: submission, exception
 * propagation, parallelFor coverage, the 1-worker degenerate case,
 * nested parallelism, MANTA_JOBS parsing, and the StageLedger.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/task_pool.h"
#include "support/timer.h"

namespace manta {
namespace {

TEST(TaskPoolTest, SubmitReturnsFutureValue)
{
    TaskPool pool(2);
    auto doubled = pool.submit([]() { return 21 * 2; });
    auto text = pool.submit([]() { return std::string("manta"); });
    EXPECT_EQ(doubled.get(), 42);
    EXPECT_EQ(text.get(), "manta");
}

TEST(TaskPoolTest, ExceptionFromWorkerPropagatesThroughFuture)
{
    TaskPool pool(2);
    auto failing = pool.submit([]() -> int {
        throw std::runtime_error("boom in worker");
    });
    EXPECT_THROW(
        {
            try {
                failing.get();
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "boom in worker");
                throw;
            }
        },
        std::runtime_error);

    // The worker that threw must still be alive and serving tasks.
    auto after = pool.submit([]() { return 7; });
    EXPECT_EQ(after.get(), 7);
}

TEST(TaskPoolTest, ParallelForCoversManyMoreTasksThanWorkers)
{
    TaskPool pool(3);
    constexpr std::size_t kCount = 500;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallelFor(kCount, [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(TaskPoolTest, ParallelForRethrowsLowestIndexedException)
{
    TaskPool pool(4);
    std::atomic<int> completed{0};
    try {
        pool.parallelFor(100, [&](std::size_t i) {
            if (i == 13 || i == 77)
                throw std::out_of_range("failed at " + std::to_string(i));
            completed.fetch_add(1);
        });
        FAIL() << "expected an exception";
    } catch (const std::out_of_range &e) {
        EXPECT_STREQ(e.what(), "failed at 13");
    }
    // Healthy iterations all ran despite the failures.
    EXPECT_EQ(completed.load(), 98);
}

TEST(TaskPoolTest, OneWorkerDegenerateCase)
{
    TaskPool pool(1);
    EXPECT_EQ(pool.jobs(), 1u);

    std::atomic<int> sum{0};
    pool.parallelFor(50, [&](std::size_t i) {
        sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 49 * 50 / 2);

    auto value = pool.submit([]() { return 5; });
    EXPECT_EQ(value.get(), 5);
}

TEST(TaskPoolTest, ParallelForZeroCountIsANoop)
{
    TaskPool pool(2);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(TaskPoolTest, NestedParallelForDoesNotDeadlock)
{
    // Every worker blocks inside an outer iteration; the nested loops
    // still finish because the submitting thread claims iterations
    // itself.
    TaskPool pool(2);
    std::atomic<int> inner_total{0};
    pool.parallelFor(4, [&](std::size_t) {
        pool.parallelFor(8, [&](std::size_t) {
            inner_total.fetch_add(1);
        });
    });
    EXPECT_EQ(inner_total.load(), 32);
}

TEST(TaskPoolTest, DefaultJobsHonorsEnvironment)
{
    ::setenv("MANTA_JOBS", "3", 1);
    EXPECT_EQ(defaultJobs(), 3u);
    ::setenv("MANTA_JOBS", "not-a-number", 1);
    EXPECT_GE(defaultJobs(), 1u);  // falls back to hardware
    ::unsetenv("MANTA_JOBS");
    EXPECT_GE(defaultJobs(), 1u);

    ::setenv("MANTA_JOBS", "2", 1);
    TaskPool pool;  // 0 == defaultJobs()
    EXPECT_EQ(pool.jobs(), 2u);
    ::unsetenv("MANTA_JOBS");
}

TEST(StageLedgerTest, AccumulatesAcrossConcurrentScopes)
{
    StageLedger ledger;
    TaskPool pool(4);
    pool.parallelFor(64, [&](std::size_t i) {
        const StageLedger::Scope scope(
            ledger, i % 2 == 0 ? "even" : "odd");
        // Body intentionally trivial; billing just has to be exact
        // in count, not magnitude.
    });
    ledger.add("even", 1.0);
    EXPECT_GE(ledger.total("even"), 1.0);
    EXPECT_GE(ledger.total("odd"), 0.0);
    EXPECT_EQ(ledger.total("never-billed"), 0.0);

    const auto totals = ledger.totals();
    ASSERT_EQ(totals.size(), 2u);
    EXPECT_EQ(totals[0].first, "even");  // sorted by stage name
    EXPECT_EQ(totals[1].first, "odd");
}

TEST(StageLedgerTest, ScopedSecondsAddsToSink)
{
    double sink = 0.0;
    {
        const ScopedSeconds clock(sink);
    }
    EXPECT_GE(sink, 0.0);
    const double first = sink;
    {
        const ScopedSeconds clock(sink);
    }
    EXPECT_GE(sink, first);
}

} // namespace
} // namespace manta
