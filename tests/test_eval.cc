/**
 * @file
 * Tests for the evaluation metrics (Section 6 definitions) and the
 * bench harness plumbing.
 */
#include <gtest/gtest.h>

#include "analysis/acyclic.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "mir/parser.h"

namespace manta {
namespace {

class MetricsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        module_ = parseModuleOrDie(R"(
func @f(%a:64, %b:64, %c:64, %d:64) {
entry:
  ret
}
)");
        TypeTable &tt = module_.types();
        const auto &params = module_.func(module_.findFunc("f")).params;
        truth_.valueTypes[params[0]] = tt.ptr(tt.intTy(8));
        truth_.valueTypes[params[1]] = tt.intTy(64);
        truth_.valueTypes[params[2]] = tt.doubleTy();
        truth_.valueTypes[params[3]] = tt.intTy(64);
    }

    ValueId param(std::size_t i)
    {
        return module_.func(module_.findFunc("f")).params[i];
    }

    Module module_;
    GroundTruth truth_;
};

TEST_F(MetricsTest, EvaluatedParamsSkipsMainAndUntruthed)
{
    const auto params = evaluatedParams(module_, truth_);
    EXPECT_EQ(params.size(), 4u);
    GroundTruth empty;
    EXPECT_TRUE(evaluatedParams(module_, empty).empty());
}

TEST_F(MetricsTest, TypeMapScoring)
{
    TypeTable &tt = module_.types();
    std::unordered_map<ValueId, TypeRef> predictions;
    predictions[param(0)] = tt.ptr(tt.intTy(8)); // exact: precise
    predictions[param(1)] = tt.reg(64);          // supertype: captured
    predictions[param(2)] = tt.intTy(32);        // wrong: incorrect
    // param(3) absent: unknown.

    const TypeEval eval = evalTypeMap(module_, truth_, predictions);
    EXPECT_EQ(eval.total, 4u);
    EXPECT_EQ(eval.preciseCorrect, 1u);
    EXPECT_EQ(eval.captured, 1u);
    EXPECT_EQ(eval.incorrect, 1u);
    EXPECT_EQ(eval.unknown, 1u);
    EXPECT_DOUBLE_EQ(eval.precision(), 0.25);
    EXPECT_DOUBLE_EQ(eval.recall(), 0.75);
}

TEST_F(MetricsTest, FirstLayerPointerMatchCountsPrecise)
{
    TypeTable &tt = module_.types();
    std::unordered_map<ValueId, TypeRef> predictions;
    // ptr(top) vs truth ptr(int8): first-layer equal -> precise.
    predictions[param(0)] = tt.ptrAny();
    const TypeEval eval = evalTypeMap(module_, truth_, predictions);
    EXPECT_EQ(eval.preciseCorrect, 1u);
}

TEST_F(MetricsTest, InferenceScoringUsesIntervals)
{
    TypeTable &tt = module_.types();
    auto result = InferenceResult::fromTypeMap(module_, truth_.valueTypes);
    const TypeEval eval = evalInference(module_, truth_, result);
    // Oracle bounds match ground truth everywhere.
    EXPECT_EQ(eval.preciseCorrect, eval.total);
    EXPECT_DOUBLE_EQ(eval.precision(), 1.0);
    EXPECT_DOUBLE_EQ(eval.recall(), 1.0);
    (void)tt;
}

TEST_F(MetricsTest, BugEvalSeparatesRealFromFalse)
{
    GroundTruth truth;
    truth.seeds.push_back(BugSeed{10, CheckerKind::CMI, true});
    truth.seeds.push_back(BugSeed{11, CheckerKind::NPD, false});
    truth.seeds.push_back(BugSeed{12, CheckerKind::BOF, true});

    std::vector<BugReport> reports;
    reports.push_back(
        BugReport{CheckerKind::CMI, InstId(1), InstId(2), 10, ""});
    reports.push_back(
        BugReport{CheckerKind::NPD, InstId(3), InstId(4), 11, ""});
    reports.push_back(
        BugReport{CheckerKind::UAF, InstId(5), InstId(6), 0, ""});

    const BugEval eval = evalBugs(reports, truth);
    EXPECT_EQ(eval.reports, 3u);
    EXPECT_EQ(eval.falsePositives, 2u); // decoy + untagged
    EXPECT_EQ(eval.realBugsFound, 1u);
    EXPECT_EQ(eval.realBugsInjected, 2u);
    EXPECT_NEAR(eval.fpr(), 2.0 / 3.0, 1e-9);
}

TEST_F(MetricsTest, SliceEvalF1)
{
    std::vector<BugReport> tool = {
        BugReport{CheckerKind::CMI, InstId(1), InstId(2), 0, ""},
        BugReport{CheckerKind::CMI, InstId(3), InstId(4), 0, ""},
    };
    std::vector<BugReport> reference = {
        BugReport{CheckerKind::CMI, InstId(1), InstId(2), 0, ""},
        BugReport{CheckerKind::BOF, InstId(7), InstId(8), 0, ""},
    };
    const SliceEval eval = evalSlices(tool, reference);
    EXPECT_EQ(eval.matched, 1u);
    EXPECT_DOUBLE_EQ(eval.precision(), 0.5);
    EXPECT_DOUBLE_EQ(eval.recall(), 0.5);
    EXPECT_DOUBLE_EQ(eval.f1(), 0.5);
}

TEST_F(MetricsTest, SliceEvalEmptySets)
{
    const SliceEval eval = evalSlices({}, {});
    EXPECT_DOUBLE_EQ(eval.f1(), 0.0);
}

TEST(IcallEvalTest, PrecisionAndRecallAgainstReference)
{
    Module m = parseModuleOrDie(R"(
func @a(%x:64) {
entry:
  ret %x
}
func @b(%x:64) {
entry:
  ret %x
}
func @c(%x:64) {
entry:
  ret %x
}
func @main() {
entry:
  %t = copy @a
  %u = copy @b
  %v = copy @c
  %r = icall.64 %t(1:64)
  ret
}
)");
    // One icall site; candidates = {a, b, c}.
    const auto sites = IcallAnalysis(m, nullptr).icallSites();
    ASSERT_EQ(sites.size(), 1u);
    IcallResult reference;
    reference.targets[sites[0]] = {m.findFunc("a")};
    IcallResult tool;
    tool.targets[sites[0]] = {m.findFunc("a"), m.findFunc("b")};

    const IcallEval eval = evalIcall(m, tool, reference);
    // Feasible {a}: kept -> recall 1. Infeasible {b, c}: pruned c only
    // -> precision 0.5.
    EXPECT_DOUBLE_EQ(eval.recall, 1.0);
    EXPECT_DOUBLE_EQ(eval.precision, 0.5);
    EXPECT_DOUBLE_EQ(eval.aict, 2.0);
    EXPECT_DOUBLE_EQ(tool.aict(), 2.0);
}

TEST(HarnessTest, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 100.0}), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(HarnessTest, PrepareProjectBuildsSubstrates)
{
    ProjectProfile profile = standardCorpus().front();
    profile.config.numFunctions = 15;
    PreparedProject project = prepareProject(profile);
    EXPECT_EQ(project.name, "vsftpd");
    EXPECT_GT(project.module().numInsts(), 50u);
    EXPECT_GT(project.analyzer->ddg().numEdges(), 20u);
}

TEST(HarnessTest, OracleInferenceIsPrecise)
{
    ProjectProfile profile = standardCorpus().front();
    profile.config.numFunctions = 12;
    PreparedProject project = prepareProject(profile);
    InferenceResult oracle = oracleInference(project);
    const TypeEval eval =
        evalInference(project.module(), project.truth(), oracle);
    EXPECT_DOUBLE_EQ(eval.precision(), 1.0);
}

TEST(HarnessTest, DetectBugsRestoresPruning)
{
    ProjectProfile profile = standardCorpus().front();
    profile.config.numFunctions = 12;
    profile.config.realBugRate = 0.3;
    PreparedProject project = prepareProject(profile);
    InferenceResult types = project.analyzer->infer();
    detectBugs(project, &types);
    EXPECT_EQ(project.analyzer->ddg().numPruned(), 0u);
}

} // namespace
} // namespace manta
