/**
 * @file
 * Tests for the MIR interpreter: arithmetic/control-flow semantics,
 * memory modelling, external simulation, runtime fault detection, and
 * dynamic confirmation of statically injected bugs.
 */
#include <gtest/gtest.h>

#include "frontend/firmware.h"
#include "frontend/generator.h"
#include "mir/interp.h"
#include "mir/parser.h"

namespace manta {
namespace {

InterpResult
runText(const std::string &text, std::vector<std::int64_t> args = {},
        InterpOptions opts = {})
{
    Module m = parseModuleOrDie(text);
    Interpreter interp(m, std::move(opts));
    return interp.run(m.findFunc("main"), args);
}

TEST(Interp, ArithmeticAndReturn)
{
    const auto r = runText(R"(
func @main(%a:64, %b:64) {
entry:
  %s = add %a, %b
  %p = mul %s, 3:64
  %d = sub %p, 1:64
  ret %d
}
)",
                           {4, 6});
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.returnValue, 29);
}

TEST(Interp, BranchesAndPhi)
{
    const char *prog = R"(
func @main(%a:64) {
entry:
  %c = icmp.lt %a, 10:64
  br %c, small, big
small:
  jmp done
big:
  jmp done
done:
  %r = phi [1:64, small], [2:64, big]
  ret %r
}
)";
    EXPECT_EQ(runText(prog, {5}).returnValue, 1);
    EXPECT_EQ(runText(prog, {50}).returnValue, 2);
}

TEST(Interp, SignedComparisonOnNarrowWidths)
{
    const auto r = runText(R"(
func @main() {
entry:
  %neg = copy -5:32
  %c = icmp.lt %neg, 3:32
  %w = zext.64 %c
  ret %w
}
)");
    EXPECT_EQ(r.returnValue, 1);
}

TEST(Interp, LoopExecutes)
{
    const auto r = runText(R"(
func @main(%n:64) {
entry:
  jmp head
head:
  %i = phi [0:64, entry], [%i2, body]
  %acc = phi [0:64, entry], [%acc2, body]
  %c = icmp.lt %i, %n
  br %c, body, exit
body:
  %acc2 = add %acc, %i
  %i2 = add %i, 1:64
  jmp head
exit:
  ret %acc
}
)",
                           {5});
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.returnValue, 10); // 0+1+2+3+4
}

TEST(Interp, MemoryRoundTrip)
{
    const auto r = runText(R"(
func @main() {
entry:
  %p = alloca 16
  store %p, 4242:64
  %f8 = add %p, 8:64
  store %f8, 17:64
  %a = load.64 %p
  %b = load.64 %f8
  %s = add %a, %b
  ret %s
}
)");
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.returnValue, 4259);
    EXPECT_TRUE(r.events.empty());
}

TEST(Interp, CallsAndRecursionBudget)
{
    const auto r = runText(R"(
func @fact(%n:64) {
entry:
  %c = icmp.le %n, 1:64
  br %c, base, rec
base:
  ret 1:64
rec:
  %n1 = sub %n, 1:64
  %r = call.64 @fact(%n1)
  %p = mul %n, %r
  ret %p
}
func @main() {
entry:
  %r = call.64 @fact(6:64)
  ret %r
}
)");
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.returnValue, 720);
}

TEST(Interp, IndirectCallsResolve)
{
    const auto r = runText(R"(
func @double(%x:64) {
entry:
  %r = mul %x, 2:64
  ret %r
}
func @main() {
entry:
  %slot = alloca 8
  store %slot, @double
  %fn = load.64 %slot
  %r = icall.64 %fn(21:64)
  ret %r
}
)");
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.returnValue, 42);
}

TEST(Interp, DetectsNullDeref)
{
    const auto r = runText(R"(
func @main() {
entry:
  %p = copy 0:64
  %v = load.64 %p
  ret %v
}
)");
    EXPECT_EQ(r.count(RuntimeEvent::Kind::NullDeref), 1u);
}

TEST(Interp, DetectsOutOfBounds)
{
    const auto r = runText(R"(
func @main() {
entry:
  %p = alloca 8
  %q = add %p, 64:64
  store %q, 1:64
  ret
}
)");
    EXPECT_EQ(r.count(RuntimeEvent::Kind::OutOfBounds), 1u);
}

TEST(Interp, DetectsUseAfterFreeAndDoubleFree)
{
    const auto r = runText(R"(
func @main() {
entry:
  %h = call.64 @malloc(16:64)
  call @free(%h)
  %v = load.64 %h
  call @free(%h)
  ret
}
)");
    EXPECT_GE(r.count(RuntimeEvent::Kind::UseAfterFree), 2u);
}

TEST(Interp, DetectsTaintedOverflow)
{
    InterpOptions opts;
    opts.taintPayload = std::string(100, 'A');
    const auto r = runText(R"(
string @key "name"
func @main() {
entry:
  %t = call.64 @nvram_get(@key)
  %buf = alloca 16
  %r = call.64 @strcpy(%buf, %t)
  ret
}
)",
                           {}, opts);
    EXPECT_EQ(r.count(RuntimeEvent::Kind::BufferOverflow), 1u);
}

TEST(Interp, SafeCopyIsClean)
{
    const auto r = runText(R"(
string @msg "hi"
func @main() {
entry:
  %buf = alloca 64
  %r = call.64 @strcpy(%buf, @msg)
  %n = call.64 @strlen(%buf)
  ret %n
}
)");
    EXPECT_TRUE(r.events.empty());
    EXPECT_EQ(r.returnValue, 2);
}

TEST(Interp, CommandSinkRecordsPayload)
{
    Module m = parseModuleOrDie(R"(
string @key "cmd"
func @main() {
entry:
  %t = call.64 @nvram_get(@key)
  %r = call.32 @system(%t)
  ret
}
)");
    InterpOptions opts;
    opts.taintPayload = "rm -rf /;";
    Interpreter interp(m, opts);
    const auto r = interp.run(m.findFunc("main"));
    EXPECT_EQ(r.count(RuntimeEvent::Kind::CommandExec), 1u);
    ASSERT_EQ(interp.executedCommands().size(), 1u);
    EXPECT_EQ(interp.executedCommands()[0], "rm -rf /;");
}

TEST(Interp, AtoiParsesSimulatedString)
{
    InterpOptions opts;
    opts.taintPayload = "1234";
    const auto r = runText(R"(
string @key "port"
func @main() {
entry:
  %t = call.64 @nvram_get(@key)
  %n = call.32 @atoi(%t)
  %w = zext.64 %n
  ret %w
}
)",
                           {}, opts);
    EXPECT_EQ(r.returnValue, 1234);
}

TEST(Interp, BudgetStopsRunawayLoops)
{
    InterpOptions opts;
    opts.maxSteps = 1000;
    const auto r = runText(R"(
func @main() {
entry:
  jmp head
head:
  %x = add 1:64, 2:64
  jmp head
}
)",
                           {}, opts);
    EXPECT_FALSE(r.completed);
    EXPECT_GE(r.steps, 1000u);
}

TEST(Interp, WidthCastsTruncateAndExtend)
{
    // trunc drops high bits; zext reads the narrow value unsigned,
    // sext sign-extends it. 0x1ff truncated to 8 bits is 0xff, which
    // zext reads as 255 and sext as -1.
    const char *prog = R"(
func @main(%x:64) {
entry:
  %n = trunc.8 %x
  %z = zext.64 %n
  %s = sext.64 %n
  %d = sub %z, %s
  ret %d
}
)";
    // z = 255, s = -1 -> z - s = 256.
    EXPECT_EQ(runText(prog, {0x1ff}).returnValue, 256);
    // Positive narrow values agree under both extensions.
    EXPECT_EQ(runText(prog, {0x17}).returnValue, 0);
}

TEST(Interp, TruncThenSextRoundTripsNegatives)
{
    const auto r = runText(R"(
func @main() {
entry:
  %wide = copy -5:64
  %n = trunc.32 %wide
  %back = sext.64 %n
  ret %back
}
)");
    EXPECT_EQ(r.returnValue, -5);
}

TEST(Interp, IcmpIsSignedAtOperandWidth)
{
    // Comparison sign-extends from the operand width first: 128:8 is
    // -128 and 255:8 is -1, so both compare below small positives.
    const char *prog = R"(
func @main(%a:8, %b:8) {
entry:
  %c = icmp.lt %a, %b
  %w = zext.64 %c
  ret %w
}
)";
    EXPECT_EQ(runText(prog, {128, 127}).returnValue, 1);  // -128 < 127
    EXPECT_EQ(runText(prog, {255, 0}).returnValue, 1);    // -1 < 0
    EXPECT_EQ(runText(prog, {0, 255}).returnValue, 0);    // 0 < -1 is false
}

TEST(Interp, IcmpSigned32BitBoundary)
{
    // 2147483648:32 is INT32_MIN after masking to the operand width.
    const auto r = runText(R"(
func @main() {
entry:
  %c = icmp.lt 2147483648:32, 2147483647:32
  %w = zext.64 %c
  ret %w
}
)");
    EXPECT_EQ(r.returnValue, 1);
}

TEST(Interp, IcmpEqualityAtBoundaries)
{
    // Equality also respects operand width: 256:8 wraps to 0.
    const char *prog = R"(
func @main() {
entry:
  %e = icmp.eq 256:8, 0:8
  %n = icmp.ne 255:8, -1:8
  %we = zext.64 %e
  %wn = zext.64 %n
  %s = add %we, %wn
  ret %s
}
)";
    EXPECT_EQ(runText(prog).returnValue, 1);  // eq fires, ne does not
}

TEST(Interp, IndirectCallDispatchSelectsStoredTarget)
{
    // A two-entry dispatch slot: the branch decides which function
    // address the slot holds, and the icall follows it.
    const char *prog = R"(
func @double(%x:64) {
entry:
  %r = mul %x, 2:64
  ret %r
}
func @negate(%x:64) {
entry:
  %r = sub 0:64, %x
  ret %r
}
func @main(%sel:64) {
entry:
  %slot = alloca 8
  %c = icmp.eq %sel, 0:64
  br %c, first, second
first:
  store %slot, @double
  jmp go
second:
  store %slot, @negate
  jmp go
go:
  %fn = load.64 %slot
  %r = icall.64 %fn(21:64)
  ret %r
}
)";
    EXPECT_EQ(runText(prog, {0}).returnValue, 42);
    EXPECT_EQ(runText(prog, {1}).returnValue, -21);
}

TEST(Interp, IndirectCallOnNonFunctionFaults)
{
    const auto r = runText(R"(
func @main() {
entry:
  %bogus = copy 12345:64
  %r = icall.64 %bogus(1:64)
  ret %r
}
)");
    EXPECT_EQ(r.count(RuntimeEvent::Kind::BadIndirect), 1u);
}

TEST(Interp, TraceRecordsDerefSitesOnce)
{
    // recordTrace notes each executed load/store site once with its
    // address operand; in-bounds accesses are not flagged as faulted.
    InterpOptions opts;
    opts.recordTrace = true;
    const auto r = runText(R"(
func @main() {
entry:
  %p = alloca 16
  store %p, 7:64
  %a = load.64 %p
  %b = load.64 %p
  %s = add %a, %b
  ret %s
}
)",
                           {}, opts);
    EXPECT_EQ(r.returnValue, 14);
    EXPECT_EQ(r.derefs.size(), 3u);  // one store site + two load sites
    for (const DerefRecord &d : r.derefs) {
        EXPECT_TRUE(d.site.valid());
        EXPECT_TRUE(d.addr.valid());
        EXPECT_FALSE(d.faulted);
    }
}

TEST(Interp, TraceFlagsFaultingDeref)
{
    InterpOptions opts;
    opts.recordTrace = true;
    const auto r = runText(R"(
func @main() {
entry:
  %p = copy 0:64
  %v = load.64 %p
  ret %v
}
)",
                           {}, opts);
    ASSERT_EQ(r.derefs.size(), 1u);
    EXPECT_TRUE(r.derefs[0].faulted);
}

TEST(Interp, TraceRecordsResolvedIndirectCalls)
{
    InterpOptions opts;
    opts.recordTrace = true;
    Module m = parseModuleOrDie(R"(
func @double(%x:64) {
entry:
  %r = mul %x, 2:64
  ret %r
}
func @main() {
entry:
  %slot = alloca 8
  store %slot, @double
  %fn = load.64 %slot
  %r = icall.64 %fn(21:64)
  ret %r
}
)");
    Interpreter interp(m, opts);
    const auto r = interp.run(m.findFunc("main"));
    ASSERT_EQ(r.icallsTaken.size(), 1u);
    EXPECT_EQ(r.icallsTaken[0].second, m.findFunc("double"));
}

TEST(Interp, TraceOffByDefault)
{
    const auto r = runText(R"(
func @main() {
entry:
  %p = alloca 8
  store %p, 1:64
  %v = load.64 %p
  ret %v
}
)");
    EXPECT_TRUE(r.derefs.empty());
    EXPECT_TRUE(r.icallsTaken.empty());
}

TEST(Interp, GeneratedProgramsExecute)
{
    // Generated programs (pre-unrolling, with natural loops) must run
    // under the interpreter without wild (non-injected) faults.
    for (const std::uint64_t seed : {61ull, 62ull, 63ull}) {
        GenConfig cfg;
        cfg.seed = seed;
        cfg.numFunctions = 15;
        GeneratedProgram prog = generateProgram(cfg);
        Interpreter interp(*prog.module);
        const auto r = interp.run(prog.module->findFunc("main"));
        EXPECT_GT(r.steps, 0u);
        // No bugs injected: only benign event kinds may fire (loads of
        // uninitialized dispatch slots may produce BadIndirect when a
        // branch leaves the slot empty; everything else must be clean).
        for (const RuntimeEvent &e : r.events) {
            EXPECT_TRUE(e.kind == RuntimeEvent::Kind::BadIndirect ||
                        e.kind == RuntimeEvent::Kind::CommandExec)
                << "seed " << seed << ": " << e.detail;
        }
    }
}

TEST(Interp, ConfirmsInjectedFirmwareBugs)
{
    // Dynamic confirmation (the paper's PoC workflow): executing a
    // firmware image with an adversarial payload triggers a subset of
    // the injected vulnerabilities at their tagged sites.
    FirmwareProfile profile = firmwareFleet()[1];
    profile.config.numFunctions = 40;
    GeneratedProgram image = buildFirmware(profile);
    InterpOptions opts;
    opts.taintPayload = std::string(200, 'A') + ";reboot";
    opts.maxSteps = 500000;
    Interpreter interp(*image.module, opts);
    const auto r = interp.run(image.module->findFunc("main"));

    std::size_t confirmed = 0;
    for (const RuntimeEvent &e : r.events) {
        if (e.srcTag != 0 && image.truth.isRealBugTag(e.srcTag))
            ++confirmed;
    }
    EXPECT_GT(confirmed, 0u)
        << "no injected bug dynamically confirmed in " << r.steps
        << " steps";
}

} // namespace
} // namespace manta
