/**
 * @file
 * Tests for the MIR interpreter: arithmetic/control-flow semantics,
 * memory modelling, external simulation, runtime fault detection, and
 * dynamic confirmation of statically injected bugs.
 */
#include <gtest/gtest.h>

#include "frontend/firmware.h"
#include "frontend/generator.h"
#include "mir/interp.h"
#include "mir/parser.h"

namespace manta {
namespace {

InterpResult
runText(const std::string &text, std::vector<std::int64_t> args = {},
        InterpOptions opts = {})
{
    Module m = parseModuleOrDie(text);
    Interpreter interp(m, std::move(opts));
    return interp.run(m.findFunc("main"), args);
}

TEST(Interp, ArithmeticAndReturn)
{
    const auto r = runText(R"(
func @main(%a:64, %b:64) {
entry:
  %s = add %a, %b
  %p = mul %s, 3:64
  %d = sub %p, 1:64
  ret %d
}
)",
                           {4, 6});
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.returnValue, 29);
}

TEST(Interp, BranchesAndPhi)
{
    const char *prog = R"(
func @main(%a:64) {
entry:
  %c = icmp.lt %a, 10:64
  br %c, small, big
small:
  jmp done
big:
  jmp done
done:
  %r = phi [1:64, small], [2:64, big]
  ret %r
}
)";
    EXPECT_EQ(runText(prog, {5}).returnValue, 1);
    EXPECT_EQ(runText(prog, {50}).returnValue, 2);
}

TEST(Interp, SignedComparisonOnNarrowWidths)
{
    const auto r = runText(R"(
func @main() {
entry:
  %neg = copy -5:32
  %c = icmp.lt %neg, 3:32
  %w = zext.64 %c
  ret %w
}
)");
    EXPECT_EQ(r.returnValue, 1);
}

TEST(Interp, LoopExecutes)
{
    const auto r = runText(R"(
func @main(%n:64) {
entry:
  jmp head
head:
  %i = phi [0:64, entry], [%i2, body]
  %acc = phi [0:64, entry], [%acc2, body]
  %c = icmp.lt %i, %n
  br %c, body, exit
body:
  %acc2 = add %acc, %i
  %i2 = add %i, 1:64
  jmp head
exit:
  ret %acc
}
)",
                           {5});
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.returnValue, 10); // 0+1+2+3+4
}

TEST(Interp, MemoryRoundTrip)
{
    const auto r = runText(R"(
func @main() {
entry:
  %p = alloca 16
  store %p, 4242:64
  %f8 = add %p, 8:64
  store %f8, 17:64
  %a = load.64 %p
  %b = load.64 %f8
  %s = add %a, %b
  ret %s
}
)");
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.returnValue, 4259);
    EXPECT_TRUE(r.events.empty());
}

TEST(Interp, CallsAndRecursionBudget)
{
    const auto r = runText(R"(
func @fact(%n:64) {
entry:
  %c = icmp.le %n, 1:64
  br %c, base, rec
base:
  ret 1:64
rec:
  %n1 = sub %n, 1:64
  %r = call.64 @fact(%n1)
  %p = mul %n, %r
  ret %p
}
func @main() {
entry:
  %r = call.64 @fact(6:64)
  ret %r
}
)");
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.returnValue, 720);
}

TEST(Interp, IndirectCallsResolve)
{
    const auto r = runText(R"(
func @double(%x:64) {
entry:
  %r = mul %x, 2:64
  ret %r
}
func @main() {
entry:
  %slot = alloca 8
  store %slot, @double
  %fn = load.64 %slot
  %r = icall.64 %fn(21:64)
  ret %r
}
)");
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.returnValue, 42);
}

TEST(Interp, DetectsNullDeref)
{
    const auto r = runText(R"(
func @main() {
entry:
  %p = copy 0:64
  %v = load.64 %p
  ret %v
}
)");
    EXPECT_EQ(r.count(RuntimeEvent::Kind::NullDeref), 1u);
}

TEST(Interp, DetectsOutOfBounds)
{
    const auto r = runText(R"(
func @main() {
entry:
  %p = alloca 8
  %q = add %p, 64:64
  store %q, 1:64
  ret
}
)");
    EXPECT_EQ(r.count(RuntimeEvent::Kind::OutOfBounds), 1u);
}

TEST(Interp, DetectsUseAfterFreeAndDoubleFree)
{
    const auto r = runText(R"(
func @main() {
entry:
  %h = call.64 @malloc(16:64)
  call @free(%h)
  %v = load.64 %h
  call @free(%h)
  ret
}
)");
    EXPECT_GE(r.count(RuntimeEvent::Kind::UseAfterFree), 2u);
}

TEST(Interp, DetectsTaintedOverflow)
{
    InterpOptions opts;
    opts.taintPayload = std::string(100, 'A');
    const auto r = runText(R"(
string @key "name"
func @main() {
entry:
  %t = call.64 @nvram_get(@key)
  %buf = alloca 16
  %r = call.64 @strcpy(%buf, %t)
  ret
}
)",
                           {}, opts);
    EXPECT_EQ(r.count(RuntimeEvent::Kind::BufferOverflow), 1u);
}

TEST(Interp, SafeCopyIsClean)
{
    const auto r = runText(R"(
string @msg "hi"
func @main() {
entry:
  %buf = alloca 64
  %r = call.64 @strcpy(%buf, @msg)
  %n = call.64 @strlen(%buf)
  ret %n
}
)");
    EXPECT_TRUE(r.events.empty());
    EXPECT_EQ(r.returnValue, 2);
}

TEST(Interp, CommandSinkRecordsPayload)
{
    Module m = parseModuleOrDie(R"(
string @key "cmd"
func @main() {
entry:
  %t = call.64 @nvram_get(@key)
  %r = call.32 @system(%t)
  ret
}
)");
    InterpOptions opts;
    opts.taintPayload = "rm -rf /;";
    Interpreter interp(m, opts);
    const auto r = interp.run(m.findFunc("main"));
    EXPECT_EQ(r.count(RuntimeEvent::Kind::CommandExec), 1u);
    ASSERT_EQ(interp.executedCommands().size(), 1u);
    EXPECT_EQ(interp.executedCommands()[0], "rm -rf /;");
}

TEST(Interp, AtoiParsesSimulatedString)
{
    InterpOptions opts;
    opts.taintPayload = "1234";
    const auto r = runText(R"(
string @key "port"
func @main() {
entry:
  %t = call.64 @nvram_get(@key)
  %n = call.32 @atoi(%t)
  %w = zext.64 %n
  ret %w
}
)",
                           {}, opts);
    EXPECT_EQ(r.returnValue, 1234);
}

TEST(Interp, BudgetStopsRunawayLoops)
{
    InterpOptions opts;
    opts.maxSteps = 1000;
    const auto r = runText(R"(
func @main() {
entry:
  jmp head
head:
  %x = add 1:64, 2:64
  jmp head
}
)",
                           {}, opts);
    EXPECT_FALSE(r.completed);
    EXPECT_GE(r.steps, 1000u);
}

TEST(Interp, GeneratedProgramsExecute)
{
    // Generated programs (pre-unrolling, with natural loops) must run
    // under the interpreter without wild (non-injected) faults.
    for (const std::uint64_t seed : {61ull, 62ull, 63ull}) {
        GenConfig cfg;
        cfg.seed = seed;
        cfg.numFunctions = 15;
        GeneratedProgram prog = generateProgram(cfg);
        Interpreter interp(*prog.module);
        const auto r = interp.run(prog.module->findFunc("main"));
        EXPECT_GT(r.steps, 0u);
        // No bugs injected: only benign event kinds may fire (loads of
        // uninitialized dispatch slots may produce BadIndirect when a
        // branch leaves the slot empty; everything else must be clean).
        for (const RuntimeEvent &e : r.events) {
            EXPECT_TRUE(e.kind == RuntimeEvent::Kind::BadIndirect ||
                        e.kind == RuntimeEvent::Kind::CommandExec)
                << "seed " << seed << ": " << e.detail;
        }
    }
}

TEST(Interp, ConfirmsInjectedFirmwareBugs)
{
    // Dynamic confirmation (the paper's PoC workflow): executing a
    // firmware image with an adversarial payload triggers a subset of
    // the injected vulnerabilities at their tagged sites.
    FirmwareProfile profile = firmwareFleet()[1];
    profile.config.numFunctions = 40;
    GeneratedProgram image = buildFirmware(profile);
    InterpOptions opts;
    opts.taintPayload = std::string(200, 'A') + ";reboot";
    opts.maxSteps = 500000;
    Interpreter interp(*image.module, opts);
    const auto r = interp.run(image.module->findFunc("main"));

    std::size_t confirmed = 0;
    for (const RuntimeEvent &e : r.events) {
        if (e.srcTag != 0 && image.truth.isRealBugTag(e.srcTag))
            ++confirmed;
    }
    EXPECT_GT(confirmed, 0u)
        << "no injected bug dynamically confirmed in " << r.steps
        << " steps";
}

} // namespace
} // namespace manta
