/**
 * @file
 * Table-driven coverage of every HybridConfig environment override.
 *
 * The process environment is global mutable state, so the knobs'
 * default-readers cache their answer on first use and the pipeline
 * tests pin configs explicitly. What CAN be tested exhaustively is the
 * parsing layer those readers delegate to (support/env.h): one rule
 * per knob shape, including the invalid-value fallback-with-warning
 * contract:
 *
 *   MANTA_WP        envFlagTruthy   ScheduleMode::WholeProgram
 *   MANTA_WALK_REF  envFlagTruthy   WalkEngine::Reference
 *   MANTA_PTS_DENSE envFlagTruthy   PtsSolver::Dense
 *   MANTA_JOBS      parseEnvLong    worker count (>= 1)
 *   MANTA_INFER     parseEnvChoice  InferEngine::{Unify,Subtype}
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "analysis/pointsto.h"
#include "core/ddg_walk.h"
#include "core/pipeline.h"
#include "support/env.h"

namespace manta {
namespace {

// ---- Flag knobs: MANTA_WP, MANTA_WALK_REF, MANTA_PTS_DENSE --------

TEST(EnvFlag, UnsetAndEmptyAndZeroAreOff)
{
    EXPECT_FALSE(envFlagTruthy(nullptr));
    EXPECT_FALSE(envFlagTruthy(""));
    EXPECT_FALSE(envFlagTruthy("0"));
}

TEST(EnvFlag, AnyOtherValueIsOn)
{
    // The documented contract for all three flag knobs: set, non-empty
    // and not exactly "0" means on - including values a user might
    // reach for instinctively.
    for (const char *value :
         {"1", "2", "true", "yes", "on", "TRUE", " 0", "00"}) {
        EXPECT_TRUE(envFlagTruthy(value)) << "\"" << value << "\"";
    }
}

// ---- MANTA_JOBS: positive decimal with warned fallback ------------

TEST(EnvJobs, UnsetOrEmptyFallsBackSilently)
{
    EXPECT_EQ(parseEnvLong("MANTA_JOBS", nullptr, 8), 8);
    EXPECT_EQ(parseEnvLong("MANTA_JOBS", "", 8), 8);
}

TEST(EnvJobs, ValidDecimalsParse)
{
    EXPECT_EQ(parseEnvLong("MANTA_JOBS", "1", 8), 1);
    EXPECT_EQ(parseEnvLong("MANTA_JOBS", "64", 8), 64);
}

TEST(EnvJobs, InvalidValuesWarnAndFallBack)
{
    // Garbage, sub-minimum, negative and trailing-junk values must all
    // yield the fallback (the warning goes to stderr; capture it to
    // assert it names the variable).
    struct Case
    {
        const char *value;
    };
    for (const Case &c : {Case{"zero"}, Case{"0"}, Case{"-4"}, Case{"3x"},
                          Case{"1.5"}}) {
        ::testing::internal::CaptureStderr();
        EXPECT_EQ(parseEnvLong("MANTA_JOBS", c.value, 8), 8)
            << "\"" << c.value << "\"";
        const std::string warning =
            ::testing::internal::GetCapturedStderr();
        EXPECT_NE(warning.find("MANTA_JOBS"), std::string::npos)
            << "\"" << c.value << "\" fell back without naming the knob";
    }
}

TEST(EnvJobs, MinimumIsConfigurable)
{
    EXPECT_EQ(parseEnvLong("MANTA_X", "5", 9, 6), 9);
    EXPECT_EQ(parseEnvLong("MANTA_X", "6", 9, 6), 6);
}

// ---- MANTA_INFER: enumerated engine choice ------------------------

const char *const kEngines[] = {"unify", "subtype"};

TEST(EnvInfer, BothEngineNamesResolve)
{
    EXPECT_EQ(parseEnvChoice("MANTA_INFER", "unify", kEngines, 2, 0), 0u);
    EXPECT_EQ(parseEnvChoice("MANTA_INFER", "subtype", kEngines, 2, 0), 1u);
}

TEST(EnvInfer, UnsetOrEmptyFallsBackSilently)
{
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(parseEnvChoice("MANTA_INFER", nullptr, kEngines, 2, 0), 0u);
    EXPECT_EQ(parseEnvChoice("MANTA_INFER", "", kEngines, 2, 0), 0u);
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST(EnvInfer, UnknownEngineWarnsAndFallsBack)
{
    for (const char *value : {"retypd", "SUBTYPE", "subtype ", "both"}) {
        ::testing::internal::CaptureStderr();
        EXPECT_EQ(parseEnvChoice("MANTA_INFER", value, kEngines, 2, 0), 0u)
            << "\"" << value << "\"";
        const std::string warning =
            ::testing::internal::GetCapturedStderr();
        EXPECT_NE(warning.find("MANTA_INFER"), std::string::npos);
        // The warning must list the valid spellings so the fix is
        // one read away.
        EXPECT_NE(warning.find("subtype"), std::string::npos);
    }
}

// ---- The live readers, end to end ---------------------------------

TEST(EnvDefaults, LiveReadersAgreeWithTheInheritedEnvironment)
{
    // The cached default-readers must equal the documented rule applied
    // to whatever environment this process inherited. Written against
    // the inherited value (not a fixed expectation) so the same binary
    // also validates the readers under the CI differential runs
    // (MANTA_WP=1, MANTA_WALK_REF=1, MANTA_INFER=subtype).
    EXPECT_EQ(defaultScheduleMode(),
              envFlagTruthy(std::getenv("MANTA_WP"))
                  ? ScheduleMode::WholeProgram
                  : ScheduleMode::ModularBottomUp);
    EXPECT_EQ(defaultWalkEngine(),
              envFlagTruthy(std::getenv("MANTA_WALK_REF"))
                  ? WalkEngine::Reference
                  : WalkEngine::Fast);
    EXPECT_EQ(PointsTo::defaultSolver(),
              envFlagTruthy(std::getenv("MANTA_PTS_DENSE"))
                  ? PtsSolver::Dense
                  : PtsSolver::Sparse);
    const char *infer = std::getenv("MANTA_INFER");
    const bool subtype = infer && std::string(infer) == "subtype";
    EXPECT_EQ(defaultInferEngine(),
              subtype ? InferEngine::Subtype : InferEngine::Unify);
    // And HybridConfig must pick the reader's answer up as its default.
    EXPECT_EQ(HybridConfig::full().inferEngine, defaultInferEngine());
}

} // namespace
} // namespace manta
