/**
 * @file
 * Table-driven coverage of every HybridConfig environment override.
 *
 * The process environment is global mutable state, so the knobs'
 * default-readers cache their answer on first use and the pipeline
 * tests pin configs explicitly. What CAN be tested exhaustively is the
 * parsing layer those readers delegate to (support/env.h): one rule
 * per knob shape, including the invalid-value fallback-with-warning
 * contract:
 *
 *   MANTA_WP        envFlagTruthy   ScheduleMode::WholeProgram
 *   MANTA_WALK_REF  envFlagTruthy   WalkEngine::Reference
 *   MANTA_PTS_DENSE envFlagTruthy   PtsSolver::Dense
 *   MANTA_JOBS      parseEnvLong    worker count (>= 1)
 *   MANTA_INFER     parseEnvChoice  InferEngine::{Unify,Subtype}
 *   MANTA_TAINT_NOTYPE      envFlagTruthy   taint ablation flip
 *   MANTA_TAINT_MAX_FACTS   parseEnvLong    capped-join bound (>= 1)
 *   MANTA_TAINT_SANITIZERS  parseEnvChoice  {on,off}
 *
 * The chaos switches (MANTA_FUZZ_BREAK_MEET, MANTA_FUZZ_BREAK_PTS)
 * share the flag-truthiness rule but latch at static-init time; their
 * live state is covered through the ChaosScope test override.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "analysis/pointsto.h"
#include "core/ddg_walk.h"
#include "core/pipeline.h"
#include "support/chaos.h"
#include "support/env.h"
#include "taint/taint.h"

namespace manta {
namespace {

// ---- Flag knobs: MANTA_WP, MANTA_WALK_REF, MANTA_PTS_DENSE --------

TEST(EnvFlag, UnsetAndEmptyAndZeroAreOff)
{
    EXPECT_FALSE(envFlagTruthy(nullptr));
    EXPECT_FALSE(envFlagTruthy(""));
    EXPECT_FALSE(envFlagTruthy("0"));
}

TEST(EnvFlag, AnyOtherValueIsOn)
{
    // The documented contract for all three flag knobs: set, non-empty
    // and not exactly "0" means on - including values a user might
    // reach for instinctively.
    for (const char *value :
         {"1", "2", "true", "yes", "on", "TRUE", " 0", "00"}) {
        EXPECT_TRUE(envFlagTruthy(value)) << "\"" << value << "\"";
    }
}

// ---- MANTA_JOBS: positive decimal with warned fallback ------------

TEST(EnvJobs, UnsetOrEmptyFallsBackSilently)
{
    EXPECT_EQ(parseEnvLong("MANTA_JOBS", nullptr, 8), 8);
    EXPECT_EQ(parseEnvLong("MANTA_JOBS", "", 8), 8);
}

TEST(EnvJobs, ValidDecimalsParse)
{
    EXPECT_EQ(parseEnvLong("MANTA_JOBS", "1", 8), 1);
    EXPECT_EQ(parseEnvLong("MANTA_JOBS", "64", 8), 64);
}

TEST(EnvJobs, InvalidValuesWarnAndFallBack)
{
    // Garbage, sub-minimum, negative and trailing-junk values must all
    // yield the fallback (the warning goes to stderr; capture it to
    // assert it names the variable).
    struct Case
    {
        const char *value;
    };
    for (const Case &c : {Case{"zero"}, Case{"0"}, Case{"-4"}, Case{"3x"},
                          Case{"1.5"}}) {
        ::testing::internal::CaptureStderr();
        EXPECT_EQ(parseEnvLong("MANTA_JOBS", c.value, 8), 8)
            << "\"" << c.value << "\"";
        const std::string warning =
            ::testing::internal::GetCapturedStderr();
        EXPECT_NE(warning.find("MANTA_JOBS"), std::string::npos)
            << "\"" << c.value << "\" fell back without naming the knob";
    }
}

TEST(EnvJobs, MinimumIsConfigurable)
{
    EXPECT_EQ(parseEnvLong("MANTA_X", "5", 9, 6), 9);
    EXPECT_EQ(parseEnvLong("MANTA_X", "6", 9, 6), 6);
}

// ---- MANTA_INFER: enumerated engine choice ------------------------

const char *const kEngines[] = {"unify", "subtype"};

TEST(EnvInfer, BothEngineNamesResolve)
{
    EXPECT_EQ(parseEnvChoice("MANTA_INFER", "unify", kEngines, 2, 0), 0u);
    EXPECT_EQ(parseEnvChoice("MANTA_INFER", "subtype", kEngines, 2, 0), 1u);
}

TEST(EnvInfer, UnsetOrEmptyFallsBackSilently)
{
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(parseEnvChoice("MANTA_INFER", nullptr, kEngines, 2, 0), 0u);
    EXPECT_EQ(parseEnvChoice("MANTA_INFER", "", kEngines, 2, 0), 0u);
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST(EnvInfer, UnknownEngineWarnsAndFallsBack)
{
    for (const char *value : {"retypd", "SUBTYPE", "subtype ", "both"}) {
        ::testing::internal::CaptureStderr();
        EXPECT_EQ(parseEnvChoice("MANTA_INFER", value, kEngines, 2, 0), 0u)
            << "\"" << value << "\"";
        const std::string warning =
            ::testing::internal::GetCapturedStderr();
        EXPECT_NE(warning.find("MANTA_INFER"), std::string::npos);
        // The warning must list the valid spellings so the fix is
        // one read away.
        EXPECT_NE(warning.find("subtype"), std::string::npos);
    }
}

// ---- MANTA_TAINT* knobs: one per parsing shape --------------------

TEST(EnvTaint, MaxFactsParsesWithWarnedFallback)
{
    // Valid values parse; the minimum is 1 (a zero cap would make the
    // capped join drop every fact and trivially converge).
    EXPECT_EQ(parseEnvLong("MANTA_TAINT_MAX_FACTS", "1", 256, 1), 1);
    EXPECT_EQ(parseEnvLong("MANTA_TAINT_MAX_FACTS", "4096", 256, 1), 4096);
    EXPECT_EQ(parseEnvLong("MANTA_TAINT_MAX_FACTS", nullptr, 256, 1), 256);
    for (const char *value : {"lots", "0", "-1", "8x"}) {
        ::testing::internal::CaptureStderr();
        EXPECT_EQ(parseEnvLong("MANTA_TAINT_MAX_FACTS", value, 256, 1), 256)
            << "\"" << value << "\"";
        const std::string warning =
            ::testing::internal::GetCapturedStderr();
        EXPECT_NE(warning.find("MANTA_TAINT_MAX_FACTS"), std::string::npos)
            << "\"" << value << "\" fell back without naming the knob";
    }
}

TEST(EnvTaint, SanitizerChoiceParsesWithWarnedFallback)
{
    const char *const kChoices[] = {"on", "off"};
    EXPECT_EQ(parseEnvChoice("MANTA_TAINT_SANITIZERS", "on", kChoices, 2, 0),
              0u);
    EXPECT_EQ(parseEnvChoice("MANTA_TAINT_SANITIZERS", "off", kChoices, 2, 0),
              1u);
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(
        parseEnvChoice("MANTA_TAINT_SANITIZERS", nullptr, kChoices, 2, 0),
        0u);
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
    for (const char *value : {"ON", "true", "none"}) {
        ::testing::internal::CaptureStderr();
        EXPECT_EQ(
            parseEnvChoice("MANTA_TAINT_SANITIZERS", value, kChoices, 2, 0),
            0u)
            << "\"" << value << "\"";
        const std::string warning =
            ::testing::internal::GetCapturedStderr();
        EXPECT_NE(warning.find("MANTA_TAINT_SANITIZERS"),
                  std::string::npos);
        EXPECT_NE(warning.find("off"), std::string::npos);
    }
}

TEST(EnvTaint, LiveReadersAgreeWithTheInheritedEnvironment)
{
    // Same style as EnvDefaults below: assert against the inherited
    // environment so the binary stays valid under the CI ablation runs
    // (MANTA_TAINT_NOTYPE=1 etc).
    EXPECT_EQ(taint::defaultTaintNoType(),
              envFlagTruthy(std::getenv("MANTA_TAINT_NOTYPE")));
    const char *raw_max = std::getenv("MANTA_TAINT_MAX_FACTS");
    EXPECT_EQ(taint::defaultTaintMaxFacts(),
              static_cast<std::size_t>(
                  parseEnvLong("MANTA_TAINT_MAX_FACTS", raw_max, 256, 1)));
    const char *const kChoices[] = {"on", "off"};
    const char *raw_san = std::getenv("MANTA_TAINT_SANITIZERS");
    EXPECT_EQ(taint::defaultTaintSanitizers(),
              parseEnvChoice("MANTA_TAINT_SANITIZERS", raw_san, kChoices, 2,
                             0) == 0u);
    // And TaintOptions::fromEnv must pick all three up, plus the
    // shared schedule knob.
    const taint::TaintOptions opts = taint::TaintOptions::fromEnv();
    EXPECT_EQ(opts.useTypes, !taint::defaultTaintNoType());
    EXPECT_EQ(opts.maxFactsPerValue, taint::defaultTaintMaxFacts());
    EXPECT_EQ(opts.sanitizers, taint::defaultTaintSanitizers());
    EXPECT_EQ(opts.mode, defaultScheduleMode());
}

// ---- Chaos switches: env-latched flags with a test override -------

TEST(EnvChaos, FlagsLatchTheInheritedEnvironment)
{
    // The constructor applies the same truthiness rule as
    // envFlagTruthy to the environment captured at static-init.
    EXPECT_EQ(chaosBreakMeet().enabled(),
              envFlagTruthy(std::getenv("MANTA_FUZZ_BREAK_MEET")));
    EXPECT_EQ(chaosBreakPts().enabled(),
              envFlagTruthy(std::getenv("MANTA_FUZZ_BREAK_PTS")));
}

TEST(EnvChaos, ScopeFlipsAndRestores)
{
    const bool meet_before = chaosBreakMeet().enabled();
    const bool pts_before = chaosBreakPts().enabled();
    {
        ChaosScope meet(chaosBreakMeet());
        ChaosScope pts(chaosBreakPts());
        EXPECT_TRUE(chaosBreakMeet().enabled());
        EXPECT_TRUE(chaosBreakPts().enabled());
    }
    EXPECT_EQ(chaosBreakMeet().enabled(), meet_before);
    EXPECT_EQ(chaosBreakPts().enabled(), pts_before);
}

// ---- The live readers, end to end ---------------------------------

TEST(EnvDefaults, LiveReadersAgreeWithTheInheritedEnvironment)
{
    // The cached default-readers must equal the documented rule applied
    // to whatever environment this process inherited. Written against
    // the inherited value (not a fixed expectation) so the same binary
    // also validates the readers under the CI differential runs
    // (MANTA_WP=1, MANTA_WALK_REF=1, MANTA_INFER=subtype).
    EXPECT_EQ(defaultScheduleMode(),
              envFlagTruthy(std::getenv("MANTA_WP"))
                  ? ScheduleMode::WholeProgram
                  : ScheduleMode::ModularBottomUp);
    EXPECT_EQ(defaultWalkEngine(),
              envFlagTruthy(std::getenv("MANTA_WALK_REF"))
                  ? WalkEngine::Reference
                  : WalkEngine::Fast);
    EXPECT_EQ(PointsTo::defaultSolver(),
              envFlagTruthy(std::getenv("MANTA_PTS_DENSE"))
                  ? PtsSolver::Dense
                  : PtsSolver::Sparse);
    const char *infer = std::getenv("MANTA_INFER");
    const bool subtype = infer && std::string(infer) == "subtype";
    EXPECT_EQ(defaultInferEngine(),
              subtype ? InferEngine::Subtype : InferEngine::Unify);
    // And HybridConfig must pick the reader's answer up as its default.
    EXPECT_EQ(HybridConfig::full().inferEngine, defaultInferEngine());
}

} // namespace
} // namespace manta
