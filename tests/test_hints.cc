/**
 * @file
 * Unit tests for the type-revealing hint rules (Table 1, rule 4) and
 * the flow-insensitive unification rules (Table 1, rules 1-3),
 * exercised one rule at a time on minimal programs.
 */
#include <gtest/gtest.h>

#include "analysis/memobj.h"
#include "analysis/pointsto.h"
#include "core/hints.h"
#include "core/unify.h"
#include "mir/parser.h"

namespace manta {
namespace {

class HintTest : public ::testing::Test
{
  protected:
    void
    load(const std::string &text)
    {
        module_ = parseModuleOrDie(text);
        objects_ = std::make_unique<MemObjects>(module_);
        pts_ = std::make_unique<PointsTo>(module_, *objects_);
        pts_->run();
        hints_ = std::make_unique<HintIndex>(module_, pts_.get());
    }

    ValueId
    val(const std::string &name) const
    {
        for (std::size_t v = 0; v < module_.numValues(); ++v) {
            const ValueId vid(static_cast<ValueId::RawType>(v));
            if (module_.str(module_.value(vid).name) == name)
                return vid;
        }
        return ValueId::invalid();
    }

    /** All hint types attached to a value. */
    std::vector<std::string>
    hintStrings(const std::string &name) const
    {
        std::vector<std::string> out;
        for (const TypeHint &h : hints_->of(val(name)))
            out.push_back(module_.types().toString(h.type));
        return out;
    }

    bool
    hasHint(const std::string &name, const std::string &type) const
    {
        for (const auto &t : hintStrings(name)) {
            if (t == type)
                return true;
        }
        return false;
    }

    Module module_;
    std::unique_ptr<MemObjects> objects_;
    std::unique_ptr<PointsTo> pts_;
    std::unique_ptr<HintIndex> hints_;
};

TEST_F(HintTest, LoadRevealsPointerToCell)
{
    load(R"(
func @f(%p:64) {
entry:
  %v = load.32 %p
  ret
}
)");
    EXPECT_TRUE(hasHint("p", "ptr(reg32)"));
}

TEST_F(HintTest, StoreRevealsPointerOfStoredWidth)
{
    load(R"(
func @f(%p:64) {
entry:
  store %p, 7:64
  ret
}
)");
    EXPECT_TRUE(hasHint("p", "ptr(reg64)"));
}

TEST_F(HintTest, FloatArithmeticRevealsDouble)
{
    load(R"(
func @f(%a:64, %b:64) {
entry:
  %s = fadd %a, %b
  ret
}
)");
    EXPECT_TRUE(hasHint("a", "double"));
    EXPECT_TRUE(hasHint("s", "double"));
}

TEST_F(HintTest, MultiplicativeOpsRevealInt)
{
    load(R"(
func @f(%a:64, %b:32) {
entry:
  %m = mul %a, %a
  %s = shl %b, 2:32
  ret
}
)");
    EXPECT_TRUE(hasHint("a", "int64"));
    EXPECT_TRUE(hasHint("b", "int32"));
}

TEST_F(HintTest, MaskingRevealsNothing)
{
    load(R"(
func @f(%p:64) {
entry:
  %m = and %p, -16:64
  ret
}
)");
    EXPECT_TRUE(hintStrings("p").empty());
    EXPECT_TRUE(hintStrings("m").empty());
}

TEST_F(HintTest, ExternalSignaturesRevealArgsAndReturn)
{
    load(R"(
func @f(%s:64) {
entry:
  %n = call.64 @strlen(%s)
  ret
}
)");
    EXPECT_TRUE(hasHint("s", "ptr(int8)"));
    EXPECT_TRUE(hasHint("n", "int64"));
}

TEST_F(HintTest, CmpWithNonZeroConstantRevealsErrorIdiom)
{
    load(R"(
func @f(%p:64) {
entry:
  %c = icmp.eq %p, -1:64
  ret
}
)");
    // The constant itself becomes int64; the pointer is only polluted
    // through the unification rule, not a direct hint.
    EXPECT_TRUE(hintStrings("p").empty());
    bool const_hint = false;
    for (std::size_t i = 0; i < module_.numInsts(); ++i) {
        for (const TypeHint &h :
             hints_->at(InstId(static_cast<InstId::RawType>(i)))) {
            if (module_.value(h.value).kind == ValueKind::Constant)
                const_hint = true;
        }
    }
    EXPECT_TRUE(const_hint);
}

TEST_F(HintTest, NullCompareRevealsNothing)
{
    load(R"(
func @f(%p:64) {
entry:
  %c = icmp.eq %p, 0:64
  ret
}
)");
    std::size_t total = 0;
    for (std::size_t i = 0; i < module_.numInsts(); ++i)
        total += hints_->at(InstId(static_cast<InstId::RawType>(i))).size();
    EXPECT_EQ(total, 0u);
}

TEST_F(HintTest, PointerArithRevealsBaseViaPointsTo)
{
    load(R"(
func @f() {
entry:
  %base = alloca 32
  %p = add %base, 8:64
  ret
}
)");
    EXPECT_TRUE(hasHint("base", "ptr(top)"));
    EXPECT_TRUE(hasHint("p", "ptr(top)"));
}

TEST_F(HintTest, StringLiteralsRevealCharPointer)
{
    load(R"(
string @msg "hi"
func @f() {
entry:
  %x = copy @msg
  ret
}
)");
    // The GlobalAddr value itself (operand of the copy) carries the hint.
    bool found = false;
    for (std::size_t v = 0; v < module_.numValues(); ++v) {
        const ValueId vid(static_cast<ValueId::RawType>(v));
        if (module_.value(vid).kind != ValueKind::GlobalAddr)
            continue;
        for (const TypeHint &h : hints_->of(vid))
            found |= module_.types().toString(h.type) == "ptr(int8)";
    }
    EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------
// Unification rules.
// ---------------------------------------------------------------------

class UnifyTest : public HintTest
{
  protected:
    TypeEnv &
    env()
    {
        if (!env_) {
            env_ = std::make_unique<TypeEnv>(module_.types());
            FlowInsensitiveInference fi(module_, *pts_, *hints_);
            fi.run(*env_);
        }
        return *env_;
    }

    std::unique_ptr<TypeEnv> env_;
};

TEST_F(UnifyTest, CopyRuleSharesClass)
{
    load(R"(
func @f(%a:64) {
entry:
  %b = copy %a
  %c = copy %b
  ret
}
)");
    EXPECT_TRUE(env().sameClass(TypeVar::of(val("a")),
                                TypeVar::of(val("c"))));
}

TEST_F(UnifyTest, LoadStoreRuleUnifiesThroughFields)
{
    load(R"(
func @f() {
entry:
  %slot = alloca 8
  %h = call.64 @malloc(8:64)
  store %slot, %h
  %l = load.64 %slot
  ret
}
)");
    EXPECT_TRUE(env().sameClass(TypeVar::of(val("h")),
                                TypeVar::of(val("l"))));
    // The field variable participates too.
    const ObjectId slot_obj = pts_->locs(val("slot")).begin()->obj;
    EXPECT_TRUE(env().sameClass(TypeVar::of(val("h")),
                                TypeVar::field(slot_obj, 0)));
}

TEST_F(UnifyTest, CallBindingUnifiesActualAndFormal)
{
    load(R"(
func @callee(%x:64) {
entry:
  ret %x
}
func @caller(%a:64) {
entry:
  %r = call.64 @callee(%a)
  ret %r
}
)");
    const ValueId formal = module_.func(module_.findFunc("callee")).params[0];
    EXPECT_TRUE(env().sameClass(TypeVar::of(val("a")),
                                TypeVar::of(formal)));
    EXPECT_TRUE(env().sameClass(TypeVar::of(val("r")),
                                TypeVar::of(formal)));
}

TEST_F(UnifyTest, CmpRuleMergesOperands)
{
    load(R"(
func @f(%a:64, %b:64) {
entry:
  %c = icmp.lt %a, %b
  ret
}
)");
    EXPECT_TRUE(env().sameClass(TypeVar::of(val("a")),
                                TypeVar::of(val("b"))));
}

TEST_F(UnifyTest, ErrorCompareProducesOverApproximation)
{
    load(R"(
func @f() {
entry:
  %h = call.64 @malloc(8:64)
  %c = icmp.eq %h, -1:64
  ret
}
)");
    // ptr hint (malloc) + int hint (-1 at the compare) in one class.
    EXPECT_EQ(env().classifyOf(TypeVar::of(val("h"))), TypeClass::Over);
}

TEST_F(UnifyTest, UnifyObjTypeMergesFieldsOfCopiedPointers)
{
    load(R"(
func @f() {
entry:
  %a = call.64 @malloc(16:64)
  %b = call.64 @malloc(16:64)
  store %a, 1:64
  store %b, 2:64
  %pick = copy %a
  %alias = copy %b
  %u = phi [%pick, entry], [%pick, entry]
  ret
}
)");
    // Phi/copy over pointers triggers UnifyObjType: offset-0 fields of
    // both objects share a class once the values unify somewhere.
    const ObjectId oa = pts_->locs(val("a")).begin()->obj;
    (void)oa;
    SUCCEED(); // structural smoke: rule exercised without crashing
}

TEST_F(UnifyTest, CollapsedOffsetAliasesAllFields)
{
    load(R"(
func @f(%i:64) {
entry:
  %buf = alloca 32
  %e = add %buf, %i
  store %e, 7:64
  %f0 = copy %buf
  %l = load.64 %f0
  ret
}
)");
    // The symbolic store lands in the unknown-offset bucket, which
    // unifies with the concrete offset-0 field.
    const ObjectId obj = pts_->locs(val("buf")).begin()->obj;
    EXPECT_TRUE(env().sameClass(TypeVar::field(obj, Loc::unknownOffset),
                                TypeVar::field(obj, 0)));
}

} // namespace
} // namespace manta
