/**
 * @file
 * Unit tests for the support layer: ids, rng, graph, table.
 */
#include <gtest/gtest.h>

#include <set>

#include "support/graph.h"
#include "support/ids.h"
#include "support/rng.h"
#include "support/table.h"

namespace manta {
namespace {

struct TestTag {};
using TestId = Id<TestTag>;

TEST(Ids, DefaultIsInvalid)
{
    TestId id;
    EXPECT_FALSE(id.valid());
    EXPECT_EQ(id, TestId::invalid());
}

TEST(Ids, RoundTripsRawValue)
{
    TestId id(42);
    EXPECT_TRUE(id.valid());
    EXPECT_EQ(id.raw(), 42u);
    EXPECT_EQ(id.index(), 42u);
}

TEST(Ids, ComparesByRaw)
{
    EXPECT_LT(TestId(1), TestId(2));
    EXPECT_NE(TestId(1), TestId(2));
    EXPECT_EQ(TestId(7), TestId(7));
}

TEST(Ids, Hashable)
{
    std::unordered_map<TestId, int> map;
    map[TestId(3)] = 30;
    map[TestId(4)] = 40;
    EXPECT_EQ(map.at(TestId(3)), 30);
    EXPECT_EQ(map.at(TestId(4)), 40);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.below(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.range(-2, 2));
    EXPECT_EQ(seen.size(), 5u);
    EXPECT_EQ(*seen.begin(), -2);
    EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(11);
    for (int i = 0; i < 32; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, WeightedRespectsZeroWeights)
{
    Rng rng(13);
    for (int i = 0; i < 200; ++i) {
        const auto pick = rng.weighted({0, 5, 0, 3});
        EXPECT_TRUE(pick == 1 || pick == 3);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(15);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Graph, ReversePostOrderLinearChain)
{
    Digraph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    const auto order = g.reversePostOrder(0);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 0u);
    EXPECT_EQ(order[3], 3u);
}

TEST(Graph, ReversePostOrderSkipsUnreachable)
{
    Digraph g(3);
    g.addEdge(0, 1);
    const auto order = g.reversePostOrder(0);
    EXPECT_EQ(order.size(), 2u);
}

TEST(Graph, DiamondTopologicalProperty)
{
    Digraph g(4);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(1, 3);
    g.addEdge(2, 3);
    const auto order = g.reversePostOrder(0);
    ASSERT_EQ(order.size(), 4u);
    std::vector<std::size_t> position(4);
    for (std::size_t i = 0; i < order.size(); ++i)
        position[order[i]] = i;
    EXPECT_LT(position[0], position[1]);
    EXPECT_LT(position[0], position[2]);
    EXPECT_LT(position[1], position[3]);
    EXPECT_LT(position[2], position[3]);
}

TEST(Graph, SccFindsCycle)
{
    Digraph g(5);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 1); // cycle {1,2}
    g.addEdge(2, 3);
    g.addEdge(4, 0);
    std::size_t num = 0;
    const auto ids = g.sccIds(&num);
    EXPECT_EQ(num, 4u);
    EXPECT_EQ(ids[1], ids[2]);
    EXPECT_NE(ids[0], ids[1]);
    EXPECT_NE(ids[3], ids[1]);
}

TEST(Graph, BackEdgesDetected)
{
    Digraph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 0); // back edge to the entry
    const auto back = g.backEdges(0);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].first, 2u);
    EXPECT_EQ(back[0].second, 0u);
}

TEST(Graph, SelfLoopIsBackEdge)
{
    Digraph g(2);
    g.addEdge(0, 0);
    g.addEdge(0, 1);
    const auto back = g.backEdges(0);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].first, 0u);
    EXPECT_EQ(back[0].second, 0u);
}

TEST(Graph, AcyclicHasNoBackEdges)
{
    Digraph g(4);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(1, 3);
    g.addEdge(2, 3);
    EXPECT_TRUE(g.backEdges(0).empty());
}

TEST(Graph, TopoOrderCoversAllNodes)
{
    Digraph g(6);
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    g.addEdge(4, 5);
    const auto order = g.topoOrder();
    EXPECT_EQ(order.size(), 6u);
    std::set<std::uint32_t> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), 6u);
}

TEST(Table, RendersAlignedColumns)
{
    AsciiTable t;
    t.setHeader({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("| longer"), std::string::npos);
    // Every line has the same width.
    std::size_t width = 0;
    std::size_t start = 0;
    while (start < out.size()) {
        const auto end = out.find('\n', start);
        const std::size_t len = end - start;
        if (width == 0)
            width = len;
        EXPECT_EQ(len, width);
        start = end + 1;
    }
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtPercent(0.787, 1), "78.7%");
    EXPECT_EQ(fmtPercent(1.0, 0), "100%");
}

} // namespace
} // namespace manta
