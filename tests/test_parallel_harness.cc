/**
 * @file
 * Tests for the ParallelHarness determinism contract: indexed result
 * slots, and bit-identical metrics between the parallel and the
 * sequential evaluation path on a fixed-seed corpus.
 */
#include <gtest/gtest.h>

#include <stdexcept>

#include "eval/harness.h"
#include "eval/metrics.h"
#include "eval/parallel.h"

namespace manta {
namespace {

/** A small fixed-seed corpus (shrunk for test runtime). */
std::vector<ProjectProfile>
testCorpus()
{
    auto profiles = standardCorpus();
    profiles.resize(4);
    for (auto &profile : profiles)
        profile.config.numFunctions = 12;
    return profiles;
}

/** Everything a bench row derives from one project, exactly-comparable. */
struct ProjectMetrics
{
    StageStats finalStats;
    TypeEval eval;
    std::size_t vars = 0;

    bool
    operator==(const ProjectMetrics &other) const
    {
        return finalStats.precise == other.finalStats.precise &&
               finalStats.over == other.finalStats.over &&
               finalStats.unknown == other.finalStats.unknown &&
               eval.total == other.eval.total &&
               eval.preciseCorrect == other.eval.preciseCorrect &&
               eval.captured == other.eval.captured &&
               eval.unknown == other.eval.unknown &&
               eval.incorrect == other.eval.incorrect &&
               vars == other.vars;
    }
};

ProjectMetrics
measure(PreparedProject &project)
{
    ProjectMetrics m;
    const InferenceResult result =
        project.analyzer->infer(HybridConfig::full());
    m.finalStats = result.finalStats();
    m.eval = evalInference(project.module(), project.truth(), result);
    m.vars = evaluatedParams(project.module(), project.truth()).size();
    return m;
}

TEST(ParallelHarnessTest, MapKeepsIndexOrder)
{
    ParallelHarness harness(4);
    auto squares = harness.map(100, [](std::size_t i) {
        return i * i;
    });
    ASSERT_EQ(squares.size(), 100u);
    for (std::size_t i = 0; i < squares.size(); ++i)
        EXPECT_EQ(squares[i], i * i);
}

TEST(ParallelHarnessTest, MapPropagatesTaskException)
{
    ParallelHarness harness(2);
    EXPECT_THROW(harness.map(10,
                             [](std::size_t i) -> int {
                                 if (i == 3)
                                     throw std::runtime_error("task 3");
                                 return 0;
                             }),
                 std::runtime_error);
}

TEST(ParallelHarnessTest, ParallelMatchesSequentialBitExactly)
{
    const auto profiles = testCorpus();

    // Sequential reference: the plain loop the bench binaries used to
    // run.
    std::vector<ProjectMetrics> sequential;
    for (const auto &profile : profiles) {
        PreparedProject project = prepareProject(profile);
        sequential.push_back(measure(project));
    }

    // Parallel run with more workers than projects to force real
    // concurrency.
    ParallelHarness harness(4);
    auto parallel = harness.mapProjects(
        profiles, [](PreparedProject &project, std::size_t) {
            return measure(project);
        });

    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t i = 0; i < parallel.size(); ++i)
        EXPECT_TRUE(parallel[i] == sequential[i]) << "project " << i;
}

TEST(ParallelHarnessTest, OneWorkerMatchesManyWorkers)
{
    const auto profiles = testCorpus();
    auto run = [&](std::size_t jobs) {
        ParallelHarness harness(jobs);
        return harness.mapProjects(
            profiles, [](PreparedProject &project, std::size_t) {
                return measure(project);
            });
    };
    const auto one = run(1);
    const auto many = run(3);
    ASSERT_EQ(one.size(), many.size());
    for (std::size_t i = 0; i < one.size(); ++i)
        EXPECT_TRUE(one[i] == many[i]) << "project " << i;
}

TEST(ParallelHarnessTest, LedgerBillsPrepareAndAnalyze)
{
    ParallelHarness harness(2);
    auto profiles = testCorpus();
    profiles.resize(2);
    harness.mapProjects(profiles,
                        [](PreparedProject &, std::size_t) { return 0; });
    EXPECT_GT(harness.ledger().total("prepare"), 0.0);
    EXPECT_GE(harness.ledger().total("analyze"), 0.0);
}

TEST(ParallelHarnessTest, FirmwareFleetPreparesInOrder)
{
    auto fleet = firmwareFleet();
    fleet.resize(2);
    for (auto &profile : fleet)
        profile.config.numFunctions = 10;
    ParallelHarness harness(2);
    auto names = harness.mapFirmware(
        fleet, [](PreparedProject &project, std::size_t) {
            return project.name;
        });
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], fleet[0].name);
    EXPECT_EQ(names[1], fleet[1].name);
}

TEST(ParallelHarnessTest, PerStageProfileTimesAreRecorded)
{
    auto profile = standardCorpus().front();
    profile.config.numFunctions = 12;
    PreparedProject project = prepareProject(profile);
    const InferenceResult result =
        project.analyzer->infer(HybridConfig::full());
    const InferenceProfile &p = result.profile();
    EXPECT_GT(p.fiSeconds, 0.0);
    EXPECT_GE(p.csSeconds, 0.0);
    EXPECT_GE(p.fsSeconds, 0.0);
    // Stage times are contained in the end-to-end reading.
    EXPECT_LE(p.fiSeconds + p.csSeconds + p.fsSeconds,
              p.seconds + 1e-6);
}

} // namespace
} // namespace manta
