/**
 * @file
 * Tests for the ParallelHarness determinism contract: indexed result
 * slots, and bit-identical metrics between the parallel and the
 * sequential evaluation path on a fixed-seed corpus.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "analysis/acyclic.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "eval/parallel.h"
#include "fuzz/campaign.h"
#include "fuzz/sample.h"

namespace manta {
namespace {

/** A small fixed-seed corpus (shrunk for test runtime). */
std::vector<ProjectProfile>
testCorpus()
{
    auto profiles = standardCorpus();
    profiles.resize(4);
    for (auto &profile : profiles)
        profile.config.numFunctions = 12;
    return profiles;
}

/** Everything a bench row derives from one project, exactly-comparable. */
struct ProjectMetrics
{
    StageStats finalStats;
    TypeEval eval;
    std::size_t vars = 0;

    bool
    operator==(const ProjectMetrics &other) const
    {
        return finalStats.precise == other.finalStats.precise &&
               finalStats.over == other.finalStats.over &&
               finalStats.unknown == other.finalStats.unknown &&
               eval.total == other.eval.total &&
               eval.preciseCorrect == other.eval.preciseCorrect &&
               eval.captured == other.eval.captured &&
               eval.unknown == other.eval.unknown &&
               eval.incorrect == other.eval.incorrect &&
               vars == other.vars;
    }
};

ProjectMetrics
measure(PreparedProject &project)
{
    ProjectMetrics m;
    const InferenceResult result =
        project.analyzer->infer(HybridConfig::full());
    m.finalStats = result.finalStats();
    m.eval = evalInference(project.module(), project.truth(), result);
    m.vars = evaluatedParams(project.module(), project.truth()).size();
    return m;
}

TEST(ParallelHarnessTest, MapKeepsIndexOrder)
{
    ParallelHarness harness(4);
    auto squares = harness.map(100, [](std::size_t i) {
        return i * i;
    });
    ASSERT_EQ(squares.size(), 100u);
    for (std::size_t i = 0; i < squares.size(); ++i)
        EXPECT_EQ(squares[i], i * i);
}

TEST(ParallelHarnessTest, MapPropagatesTaskException)
{
    ParallelHarness harness(2);
    EXPECT_THROW(harness.map(10,
                             [](std::size_t i) -> int {
                                 if (i == 3)
                                     throw std::runtime_error("task 3");
                                 return 0;
                             }),
                 std::runtime_error);
}

TEST(ParallelHarnessTest, ParallelMatchesSequentialBitExactly)
{
    const auto profiles = testCorpus();

    // Sequential reference: the plain loop the bench binaries used to
    // run.
    std::vector<ProjectMetrics> sequential;
    for (const auto &profile : profiles) {
        PreparedProject project = prepareProject(profile);
        sequential.push_back(measure(project));
    }

    // Parallel run with more workers than projects to force real
    // concurrency.
    ParallelHarness harness(4);
    auto parallel = harness.mapProjects(
        profiles, [](PreparedProject &project, std::size_t) {
            return measure(project);
        });

    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t i = 0; i < parallel.size(); ++i)
        EXPECT_TRUE(parallel[i] == sequential[i]) << "project " << i;
}

TEST(ParallelHarnessTest, OneWorkerMatchesManyWorkers)
{
    const auto profiles = testCorpus();
    auto run = [&](std::size_t jobs) {
        ParallelHarness harness(jobs);
        return harness.mapProjects(
            profiles, [](PreparedProject &project, std::size_t) {
                return measure(project);
            });
    };
    const auto one = run(1);
    const auto many = run(3);
    ASSERT_EQ(one.size(), many.size());
    for (std::size_t i = 0; i < one.size(); ++i)
        EXPECT_TRUE(one[i] == many[i]) << "project " << i;
}

TEST(ParallelHarnessTest, LedgerBillsPrepareAndAnalyze)
{
    ParallelHarness harness(2);
    auto profiles = testCorpus();
    profiles.resize(2);
    harness.mapProjects(profiles,
                        [](PreparedProject &, std::size_t) { return 0; });
    EXPECT_GT(harness.ledger().total("prepare"), 0.0);
    EXPECT_GE(harness.ledger().total("analyze"), 0.0);
}

TEST(ParallelHarnessTest, FirmwareFleetPreparesInOrder)
{
    auto fleet = firmwareFleet();
    fleet.resize(2);
    for (auto &profile : fleet)
        profile.config.numFunctions = 10;
    ParallelHarness harness(2);
    auto names = harness.mapFirmware(
        fleet, [](PreparedProject &project, std::size_t) {
            return project.name;
        });
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], fleet[0].name);
    EXPECT_EQ(names[1], fleet[1].name);
}

/** Temporarily pin MANTA_JOBS; restores the prior value on scope exit. */
class ScopedJobs
{
  public:
    explicit ScopedJobs(const char *value)
    {
        if (const char *prev = std::getenv("MANTA_JOBS")) {
            had_ = true;
            prev_ = prev;
        }
        ::setenv("MANTA_JOBS", value, 1);
    }
    ~ScopedJobs()
    {
        if (had_)
            ::setenv("MANTA_JOBS", prev_.c_str(), 1);
        else
            ::unsetenv("MANTA_JOBS");
    }

  private:
    bool had_ = false;
    std::string prev_;
};

/** Per-module inference metrics for the fuzz corpus, exact-comparable. */
struct CorpusMetrics
{
    std::size_t precise = 0;
    std::size_t over = 0;
    std::size_t unknown = 0;
    std::size_t insts = 0;

    bool
    operator==(const CorpusMetrics &other) const
    {
        return precise == other.precise && over == other.over &&
               unknown == other.unknown && insts == other.insts;
    }
};

TEST(ParallelHarnessTest, FuzzCorpusMetricsIdenticalAcrossJobCounts)
{
    // ISSUE contract: bit-identical metrics under MANTA_JOBS=1 vs
    // MANTA_JOBS=8 for a fuzz-generated corpus. The env var is what
    // ParallelHarness(0) resolves its worker count from.
    constexpr std::size_t kCorpus = 12;
    auto run = [&](const char *jobs_env) {
        ScopedJobs jobs(jobs_env);
        ParallelHarness harness(0);
        return harness.map(kCorpus, [](std::size_t i) {
            const fuzz::FuzzCase c = fuzz::sampleCase(
                fuzz::caseSeedFor(/*base_seed=*/77, i));
            fuzz::CaseProgram prog = fuzz::materialize(c);
            makeAcyclic(*prog.module);
            MantaAnalyzer analyzer(*prog.module, HybridConfig::full());
            const StageStats stats = analyzer.infer().finalStats();
            return CorpusMetrics{stats.precise, stats.over, stats.unknown,
                                 prog.module->numInsts()};
        });
    };
    const auto one = run("1");
    const auto eight = run("8");
    ASSERT_EQ(one.size(), eight.size());
    for (std::size_t i = 0; i < one.size(); ++i)
        EXPECT_TRUE(one[i] == eight[i]) << "fuzz case " << i;
}

TEST(ParallelHarnessTest, FuzzCampaignCountersIdenticalAcrossJobCounts)
{
    // The campaign's own aggregation must also be job-count invariant:
    // same verdicts, same counters, same case sizes.
    auto run = [&](std::size_t jobs) {
        fuzz::CampaignOptions opts;
        opts.seed = 5;
        opts.count = 24;
        opts.jobs = jobs;
        opts.shrink = false;
        opts.writeJson = false;
        opts.writeReproducers = false;
        return fuzz::runCampaign(opts);
    };
    const auto one = run(1);
    const auto eight = run(8);
    EXPECT_EQ(one.cases, eight.cases);
    EXPECT_EQ(one.failedCases, eight.failedCases);
    EXPECT_EQ(one.totalInsts, eight.totalInsts);
    for (std::size_t o = 0; o < fuzz::kNumOracles; ++o) {
        EXPECT_EQ(one.counters.runs[o], eight.counters.runs[o])
            << fuzz::oracleName(static_cast<fuzz::OracleId>(o));
        EXPECT_EQ(one.counters.failures[o], eight.counters.failures[o])
            << fuzz::oracleName(static_cast<fuzz::OracleId>(o));
    }
}

TEST(ParallelHarnessTest, PerStageProfileTimesAreRecorded)
{
    auto profile = standardCorpus().front();
    profile.config.numFunctions = 12;
    PreparedProject project = prepareProject(profile);
    const InferenceResult result =
        project.analyzer->infer(HybridConfig::full());
    const InferenceProfile &p = result.profile();
    EXPECT_GT(p.fiSeconds, 0.0);
    EXPECT_GE(p.csSeconds, 0.0);
    EXPECT_GE(p.fsSeconds, 0.0);
    // Stage times are contained in the end-to-end reading.
    EXPECT_LE(p.fiSeconds + p.csSeconds + p.fsSeconds,
              p.seconds + 1e-6);
}

} // namespace
} // namespace manta
