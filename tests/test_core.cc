/**
 * @file
 * Tests for the hybrid-sensitive inference core, including the paper's
 * motivating examples: Figure 3 (union refined flow-sensitively),
 * Figure 4 (flow-sensitive alone loses the type, flow-insensitive
 * recovers it) and Figure 7 (context sensitivity rejects CFL-invalid
 * polymorphic hints).
 */
#include <gtest/gtest.h>

#include "analysis/acyclic.h"
#include "core/pipeline.h"
#include "mir/parser.h"

namespace manta {
namespace {

class CoreTest : public ::testing::Test
{
  protected:
    void
    analyze(const std::string &text, HybridConfig config)
    {
        module_ = parseModuleOrDie(text);
        makeAcyclic(module_);
        analyzer_ = std::make_unique<MantaAnalyzer>(module_, config);
        result_ = std::make_unique<InferenceResult>(analyzer_->infer());
    }

    ValueId
    val(const std::string &name) const
    {
        for (std::size_t v = 0; v < module_.numValues(); ++v) {
            const ValueId vid(static_cast<ValueId::RawType>(v));
            if (module_.nameOf(vid) == name)
                return vid;
        }
        return ValueId::invalid();
    }

    /** The instruction defining a named value. */
    InstId
    defSite(const std::string &name) const
    {
        return module_.value(val(name)).inst;
    }

    /** The instruction using `name` as a call argument (first hit). */
    InstId
    useSite(const std::string &name) const
    {
        const ValueId v = val(name);
        for (std::size_t i = 0; i < module_.numInsts(); ++i) {
            const InstId iid(static_cast<InstId::RawType>(i));
            const Instruction &inst = module_.inst(iid);
            if (inst.op != Opcode::Call)
                continue;
            for (const ValueId op : module_.operands(inst)) {
                if (op == v)
                    return iid;
            }
        }
        return InstId::invalid();
    }

    std::string
    typeOf(ValueId v) const
    {
        const BoundPair bp = result_->valueBounds(v);
        const TypeTable &tt = module_.types();
        return "[" + tt.toString(bp.lower) + ", " + tt.toString(bp.upper) +
               "]";
    }

    Module module_;
    std::unique_ptr<MantaAnalyzer> analyzer_;
    std::unique_ptr<InferenceResult> result_;
};

// The Figure 3 program: a stack slot holding a union instantiated as
// int64 in one branch and char* in the other.
const char *kUnionProgram = R"(
string @msg "hello"
func @main(%a:64) {
entry:
  %slot = alloca 8
  %c = icmp.eq %a, 0:64
  br %c, then, else
then:
  store %slot, 1234:64
  %i = load.64 %slot
  %r1 = call.32 @print_int(%i)
  jmp done
else:
  store %slot, @msg
  %s = load.64 %slot
  %r2 = call.32 @print_str(%s)
  jmp done
done:
  ret
}
)";

TEST_F(CoreTest, UnionIsOverApproximatedByFI)
{
    // Pinned to the unification core: this documents ITS merge
    // behavior (the subtype engine keeps the branches apart).
    HybridConfig config = HybridConfig::fiOnly();
    config.inferEngine = InferEngine::Unify;
    analyze(kUnionProgram, config);
    // Flow-insensitive unification merges both branches' hints.
    EXPECT_EQ(result_->valueClass(val("i")), TypeClass::Over);
    EXPECT_EQ(result_->valueClass(val("s")), TypeClass::Over);
    const BoundPair bp = result_->valueBounds(val("i"));
    EXPECT_EQ(bp.upper, module_.types().reg(64));
}

TEST_F(CoreTest, UnionResolvedPerSiteByFlowRefinement)
{
    analyze(kUnionProgram, HybridConfig::full());
    TypeTable &tt = module_.types();
    // At the print_int call site, the slot value is precisely int64.
    const BoundPair at_int = result_->siteBounds(val("i"), useSite("i"));
    EXPECT_EQ(at_int.classify(tt), TypeClass::Precise)
        << typeOf(val("i"));
    EXPECT_EQ(at_int.upper, tt.intTy(64));
    // At the print_str call site, it is precisely char*.
    const BoundPair at_str = result_->siteBounds(val("s"), useSite("s"));
    EXPECT_EQ(at_str.classify(tt), TypeClass::Precise);
    EXPECT_EQ(at_str.upper, tt.ptr(tt.intTy(8)));
}

// The Figure 4 program: the parameter is printed in a guard branch and
// dereferenced (via pointer arithmetic) in the other branch.
const char *kGuardProgram = R"(
func @parsestr(%s:64, %offset:64) {
entry:
  %c = icmp.eq %s, 0:64
  br %c, err, ok
err:
  %r = call.32 @print_str(%s)
  ret
ok:
  %p = add %s, %offset
  %v = load.8 %p
  ret
}
)";

TEST_F(CoreTest, GuardParamUnknownAtUseSiteUnderFSOnly)
{
    analyze(kGuardProgram, HybridConfig::fsOnly());
    TypeTable &tt = module_.types();
    // Standalone flow-sensitive analysis cannot see the err-branch
    // hint from the ok branch: the add site stays unknown.
    const InstId add_site = defSite("p");
    const BoundPair at_add = result_->siteBounds(val("s"), add_site);
    EXPECT_EQ(at_add.classify(tt), TypeClass::Unknown) << typeOf(val("s"));
}

TEST_F(CoreTest, GuardParamResolvedByFI)
{
    analyze(kGuardProgram, HybridConfig::full());
    TypeTable &tt = module_.types();
    // The flow-insensitive stage captures the print_str hint: the
    // parameter resolves as a pointer for every site.
    const BoundPair bp = result_->valueBounds(val("s"));
    EXPECT_EQ(bp.classify(tt), TypeClass::Precise) << typeOf(val("s"));
    EXPECT_EQ(tt.kind(bp.upper), TypeKind::Ptr);
}

// The Figure 7 program: a polymorphic identity function called with a
// heap pointer from one context and an integer from another.
const char *kPolyProgram = R"(
func @id(%x:64) {
entry:
  ret %x
}
func @caller1() {
entry:
  %h = call.64 @malloc(8:64)
  %r1 = call.64 @id(%h)
  %p1 = call.32 @print_str(%r1)
  ret
}
func @caller2() {
entry:
  %r2 = call.64 @id(42:64)
  %p2 = call.32 @print_int(%r2)
  ret
}
)";

TEST_F(CoreTest, PolymorphicMergedByFI)
{
    // Unifier-only behavior: the subtype engine already separates the
    // two calling contexts at the FI stage (see test_subtype.cc's
    // AblationFlip for the differential assertion).
    HybridConfig config = HybridConfig::fiOnly();
    config.inferEngine = InferEngine::Unify;
    analyze(kPolyProgram, config);
    EXPECT_EQ(result_->valueClass(val("r2")), TypeClass::Over);
}

TEST_F(CoreTest, ContextRefinementSeparatesPolymorphicContexts)
{
    // Pinned to the unifier: csResolved > 0 requires the FI stage to
    // leave r1/r2 over-approximated for CS refinement to resolve.
    HybridConfig config = HybridConfig::full();
    config.inferEngine = InferEngine::Unify;
    analyze(kPolyProgram, config);
    TypeTable &tt = module_.types();
    // CFL-reachability rejects the cross-context hints: r2 is int64.
    const BoundPair r2 = result_->valueBounds(val("r2"));
    EXPECT_EQ(r2.classify(tt), TypeClass::Precise) << typeOf(val("r2"));
    EXPECT_EQ(r2.upper, tt.intTy(64));
    // r1 resolves as a pointer.
    const BoundPair r1 = result_->valueBounds(val("r1"));
    EXPECT_EQ(tt.kind(r1.upper), TypeKind::Ptr) << typeOf(val("r1"));
    EXPECT_GT(result_->profile().csResolved, 0u);
}

TEST_F(CoreTest, HintIndexFindsExternalSignatures)
{
    analyze(kPolyProgram, HybridConfig::fiOnly());
    const HintIndex &hints = analyzer_->hints();
    bool malloc_hint = false;
    for (const TypeHint &h : hints.of(val("h")))
        malloc_hint |= module_.types().isPtr(h.type);
    EXPECT_TRUE(malloc_hint);
    EXPECT_GT(hints.numHints(), 4u);
}

TEST_F(CoreTest, CopyChainsSharePreciseTypes)
{
    analyze(R"(
func @f() {
entry:
  %h = call.64 @malloc(8:64)
  %a = copy %h
  %b = copy %a
  ret %b
}
)",
            HybridConfig::fiOnly());
    TypeTable &tt = module_.types();
    EXPECT_EQ(result_->valueClass(val("b")), TypeClass::Precise);
    EXPECT_EQ(result_->valueBounds(val("b")).upper, tt.ptrAny());
}

TEST_F(CoreTest, LoadStoreUnifyThroughMemory)
{
    analyze(R"(
func @f() {
entry:
  %slot = alloca 8
  %h = call.64 @malloc(8:64)
  store %slot, %h
  %l = load.64 %slot
  ret %l
}
)",
            HybridConfig::fiOnly());
    TypeTable &tt = module_.types();
    // The loaded value unifies with the stored pointer.
    EXPECT_EQ(result_->valueBounds(val("l")).upper, tt.ptrAny());
    EXPECT_EQ(result_->valueClass(val("l")), TypeClass::Precise);
}

TEST_F(CoreTest, NoHintsMeansUnknown)
{
    analyze(R"(
func @f(%a:64) {
entry:
  %b = copy %a
  ret %b
}
)",
            HybridConfig::fiOnly());
    EXPECT_EQ(result_->valueClass(val("b")), TypeClass::Unknown);
    // Unknowns widen to the any-type interval.
    const BoundPair bp = result_->valueBounds(val("b"));
    EXPECT_EQ(bp.upper, module_.types().top());
    EXPECT_EQ(bp.lower, module_.types().bottom());
}

TEST_F(CoreTest, FloatArithmeticReveals)
{
    analyze(R"(
func @f(%a:64, %b:64) {
entry:
  %s = fadd %a, %b
  ret %s
}
)",
            HybridConfig::fiOnly());
    TypeTable &tt = module_.types();
    EXPECT_EQ(result_->valueBounds(val("s")).upper, tt.doubleTy());
    EXPECT_EQ(result_->valueClass(val("s")), TypeClass::Precise);
}

TEST_F(CoreTest, PointerComparedWithErrorConstantGoesNoisy)
{
    // The Section 6.4 soundness gap: cmp unifies a pointer with -1.
    analyze(R"(
func @f() {
entry:
  %h = call.64 @malloc(8:64)
  %c = icmp.eq %h, -1:64
  ret %h
}
)",
            HybridConfig::fiOnly());
    // The pointer picks up an integer hint: over-approximated.
    EXPECT_EQ(result_->valueClass(val("h")), TypeClass::Over);
}

TEST_F(CoreTest, NullCompareStaysClean)
{
    analyze(R"(
func @f() {
entry:
  %h = call.64 @malloc(8:64)
  %c = icmp.eq %h, 0:64
  ret %h
}
)",
            HybridConfig::fiOnly());
    // Zero may be NULL: no integer hint, the pointer stays precise.
    EXPECT_EQ(result_->valueClass(val("h")), TypeClass::Precise);
}

TEST_F(CoreTest, ProfileCountsStages)
{
    analyze(kUnionProgram, HybridConfig::full());
    const InferenceProfile &prof = result_->profile();
    EXPECT_GT(prof.afterFi.total(), 0u);
    EXPECT_GT(prof.fiOver, 0u);
    EXPECT_GT(prof.hintCount, 0u);
    EXPECT_GE(prof.seconds, 0.0);
}

TEST_F(CoreTest, StageConfigLabels)
{
    EXPECT_EQ(HybridConfig::full().label(), "FI+CS+FS");
    EXPECT_EQ(HybridConfig::fiOnly().label(), "FI");
    EXPECT_EQ(HybridConfig::fsOnly().label(), "FS");
    EXPECT_EQ(HybridConfig::fiFs().label(), "FI+FS");
}

TEST_F(CoreTest, RefinementNeverWidensBeyondFI)
{
    // Property: for every variable the final upper bound is a subtype
    // of the FI upper bound joined with Top handling; i.e. refinement
    // narrows or loses, never invents wider intervals (modulo the
    // unknown widening).
    analyze(kUnionProgram, HybridConfig::full());
    Module module2 = parseModuleOrDie(kUnionProgram);
    makeAcyclic(module2);
    MantaAnalyzer fi_analyzer(module2, HybridConfig::fiOnly());
    InferenceResult fi_result = fi_analyzer.infer();

    TypeTable &tt = module_.types();
    for (std::size_t i = 0; i < module_.numValues(); ++i) {
        const ValueId vid(static_cast<ValueId::RawType>(i));
        if (module_.value(vid).kind != ValueKind::InstResult)
            continue;
        const BoundPair full_bp = result_->valueBounds(vid);
        const BoundPair fi_bp = fi_result.valueBounds(vid);
        if (fi_bp.classify(tt) != TypeClass::Over)
            continue;
        if (full_bp.classify(tt) == TypeClass::Unknown)
            continue; // flow-sensitive loss is allowed
        EXPECT_TRUE(tt.isSubtype(full_bp.upper, fi_bp.upper) ||
                    fi_bp.upper == tt.top())
            << module_.nameOf(vid);
    }
}

} // namespace
} // namespace manta

namespace manta {
namespace {

// Late additions: pipeline profile invariants and field-level queries.

class CoreExtraTest : public CoreTest
{};

TEST_F(CoreExtraTest, FieldBoundsExposeObjectTypes)
{
    analyze(R"(
func @f() {
entry:
  %s = alloca 16
  %h = call.64 @malloc(8:64)
  store %s, %h
  %f8 = add %s, 8:64
  store %f8, 42:64
  %l8 = load.64 %f8
  %m = mul %l8, 2:64
  ret
}
)",
            HybridConfig::fiOnly());
    TypeTable &tt = module_.types();
    const PointsTo &pts = analyzer_->pts();
    const ObjectId obj = pts.locs(val("s")).begin()->obj;
    // Offset 0 holds the malloc pointer; offset 8 holds an integer.
    const BoundPair f0 = result_->fieldBounds(obj, 0);
    EXPECT_TRUE(tt.isPtr(f0.upper)) << tt.toString(f0.upper);
    const BoundPair f8 = result_->fieldBounds(obj, 8);
    EXPECT_EQ(f8.upper, tt.intTy(64));
}

TEST_F(CoreExtraTest, ProfileStageCountsAreConsistent)
{
    analyze(kUnionProgram, HybridConfig::full());
    const InferenceProfile &prof = result_->profile();
    // Refinement only ever touches V_O members.
    EXPECT_LE(prof.csResolved + prof.csStillOver, prof.fiOver + 1);
    EXPECT_LE(prof.fsResolved, prof.fiOver);
    // Final stats cover exactly the Argument/InstResult population.
    std::size_t variables = 0;
    for (std::size_t v = 0; v < module_.numValues(); ++v) {
        const ValueKind kind =
            module_.value(ValueId(ValueId::RawType(v))).kind;
        variables += kind == ValueKind::Argument ||
                     kind == ValueKind::InstResult;
    }
    const StageStats final_stats = result_->finalStats();
    EXPECT_EQ(final_stats.total(), variables);
}

TEST_F(CoreExtraTest, FsOnlySiteViewStillServesClients)
{
    analyze(kUnionProgram, HybridConfig::fsOnly());
    TypeTable &tt = module_.types();
    // Even standalone FS resolves the union per site.
    const BoundPair at_int = result_->siteBounds(val("i"), useSite("i"));
    EXPECT_EQ(at_int.upper, tt.intTy(64));
}

} // namespace
} // namespace manta
