/**
 * @file
 * Unit tests for the fast traversal engine's building blocks (context
 * interning, epoch-stamped scratch, memoized summaries) and for
 * fast-vs-reference agreement on the CFL edge cases: maxStack capping,
 * budget truncation mid-query, call-argument exits under a bound
 * context, and empty-stack ascent past the starting frame.
 */
#include <gtest/gtest.h>

#include "analysis/acyclic.h"
#include "core/ddg_walk.h"
#include "core/pipeline.h"
#include "frontend/generator.h"
#include "mir/parser.h"

namespace manta {
namespace {

TEST(CtxInternerTest, HashConsesStacks)
{
    CtxInterner interner;
    const InstId site1(7), site2(9);
    const std::uint32_t a = interner.push(CtxInterner::kEmpty, site1);
    const std::uint32_t b = interner.push(CtxInterner::kEmpty, site1);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, CtxInterner::kEmpty);

    const std::uint32_t c = interner.push(a, site2);
    EXPECT_NE(c, a);
    EXPECT_EQ(interner.pop(c), a);
    EXPECT_EQ(interner.pop(a), CtxInterner::kEmpty);
    EXPECT_EQ(interner.top(c), site2.raw());
    EXPECT_EQ(interner.top(CtxInterner::kEmpty), CtxInterner::kNoSite);
    EXPECT_EQ(interner.depth(c), 2u);
    EXPECT_EQ(interner.depth(CtxInterner::kEmpty), 0u);

    // Re-interning an identical stack bottom-up lands on the same id.
    EXPECT_EQ(interner.push(interner.push(CtxInterner::kEmpty, site1),
                            site2),
              c);
}

TEST(EpochScratchTest, FlagsQueriesPastMarkFrontierAnswerFalse)
{
    // Regression: flow refinement probes hint-root ids against a
    // candidate's root set, and those ids are not bounded by what was
    // marked. Reading past the frontier must answer false, not read
    // out of bounds (this was a heap-buffer-overflow caught by the
    // walk_diff oracle under ASan).
    EpochFlags flags;
    flags.ensure(4);
    flags.newEpoch();
    EXPECT_TRUE(flags.mark(2));
    EXPECT_FALSE(flags.mark(2));
    EXPECT_TRUE(flags.marked(2));
    EXPECT_FALSE(flags.marked(3));
    EXPECT_FALSE(flags.marked(100000));
    EXPECT_TRUE(flags.mark(100000));
    EXPECT_TRUE(flags.marked(100000));
    flags.newEpoch();
    EXPECT_FALSE(flags.marked(2));
    EXPECT_FALSE(flags.marked(100000));
}

TEST(EpochScratchTest, VisitedSeparatesEpochsAndTops)
{
    EpochVisited visited;
    visited.ensure(3);
    visited.newEpoch();
    EXPECT_TRUE(visited.insert(1, 7));
    EXPECT_FALSE(visited.insert(1, 7));
    EXPECT_TRUE(visited.insert(1, 8));  // same node, different ctx top
    EXPECT_FALSE(visited.insert(1, 8));
    EXPECT_TRUE(visited.insert(2, 7));
    visited.newEpoch();  // no clearing, marks just expire
    EXPECT_TRUE(visited.insert(1, 7));
    EXPECT_TRUE(visited.insert(1, 8));
}

class DdgWalkTest : public ::testing::Test
{
  protected:
    void
    load(const std::string &text)
    {
        module_ = parseModuleOrDie(text);
        makeAcyclic(module_);
        analyzer_ =
            std::make_unique<MantaAnalyzer>(module_, HybridConfig::full());
        env_ = std::make_unique<TypeEnv>(module_.types());
        FlowInsensitiveInference fi(module_, analyzer_->pts(),
                                    analyzer_->hints());
        fi.run(*env_);
    }

    ValueId
    val(const std::string &name) const
    {
        for (std::size_t v = 0; v < module_.numValues(); ++v) {
            const ValueId vid(static_cast<ValueId::RawType>(v));
            if (module_.str(module_.value(vid).name) == name)
                return vid;
        }
        return ValueId::invalid();
    }

    DdgWalker
    walker(WalkEngine engine, WalkBudget budget = {})
    {
        return DdgWalker(analyzer_->ddg(), env_.get(), module_.types(),
                         budget, engine);
    }

    /** Both engines, element for element, over every value. */
    void
    expectEnginesAgree(WalkBudget budget = {})
    {
        DdgWalker fast = walker(WalkEngine::Fast, budget);
        DdgWalker ref = walker(WalkEngine::Reference, budget);
        for (std::size_t v = 0; v < module_.numValues(); ++v) {
            const ValueId vid(static_cast<ValueId::RawType>(v));
            const ValueKind kind = module_.value(vid).kind;
            if (kind != ValueKind::Argument && kind != ValueKind::InstResult)
                continue;
            EXPECT_EQ(fast.findRoots(vid), ref.findRoots(vid))
                << "roots differ for value " << v;
            EXPECT_EQ(fast.collectTypes(vid, analyzer_->hints()),
                      ref.collectTypes(vid, analyzer_->hints()))
                << "types differ for value " << v;
        }
    }

    Module module_;
    std::unique_ptr<MantaAnalyzer> analyzer_;
    std::unique_ptr<TypeEnv> env_;
};

namespace {
const char *const kNestedCalls = R"(
func @leaf(%x:64) {
entry:
  ret %x
}
func @mid(%y:64) {
entry:
  %m = call.64 @leaf(%y)
  ret %m
}
func @top1() {
entry:
  %h = call.64 @malloc(8:64)
  %r = call.64 @mid(%h)
  %p = call.32 @print_str(%r)
  ret
}
func @top2() {
entry:
  %c = copy 42:64
  %r2 = call.64 @mid(%c)
  %p2 = call.32 @print_int(%r2)
  ret
}
)";
} // namespace

TEST_F(DdgWalkTest, MaxStackCapsDescentIdenticallyInBothEngines)
{
    load(kNestedCalls);
    WalkBudget shallow;
    shallow.maxStack = 1;  // can enter @mid but not @leaf
    expectEnginesAgree(shallow);

    DdgWalker fast = walker(WalkEngine::Fast, shallow);
    (void)fast.findRoots(val("r"));
    (void)fast.collectTypes(val("h"), analyzer_->hints());
    EXPECT_LE(fast.stats().peakCtxDepth, shallow.maxStack);

    WalkBudget deep;
    deep.maxStack = 8;
    DdgWalker fast_deep = walker(WalkEngine::Fast, deep);
    (void)fast_deep.collectTypes(val("h"), analyzer_->hints());
    EXPECT_GE(fast_deep.stats().peakCtxDepth, 2u);
    expectEnginesAgree(deep);
}

TEST_F(DdgWalkTest, CallArgExitRespectsBoundContext)
{
    // Backward from @top2's call result descends into @mid/@leaf with
    // the calling context bound; the CallArg exit must come back out
    // through @top2's argument edge only, never @top1's pointer.
    load(kNestedCalls);
    for (const WalkEngine engine :
         {WalkEngine::Fast, WalkEngine::Reference}) {
        DdgWalker w = walker(engine);
        const auto roots = w.findRoots(val("r2"));
        ASSERT_EQ(roots.size(), 1u);
        EXPECT_EQ(module_.value(roots[0]).kind, ValueKind::Constant);
        EXPECT_EQ(module_.value(roots[0]).constValue, 42);
        const auto roots1 = w.findRoots(val("r"));
        ASSERT_EQ(roots1.size(), 1u);
        EXPECT_EQ(roots1[0], val("h"));
    }
}

TEST_F(DdgWalkTest, EmptyStackAscentReachesEveryCaller)
{
    // Starting INSIDE the callee (no context bound), the walk may
    // ascend through any call-argument edge: both callers' sources
    // are roots of the shared parameter.
    load(kNestedCalls);
    for (const WalkEngine engine :
         {WalkEngine::Fast, WalkEngine::Reference}) {
        DdgWalker w = walker(engine);
        const auto roots = w.findRoots(val("y"));
        bool saw_h = false, saw_const = false;
        for (const ValueId r : roots) {
            saw_h |= r == val("h");
            saw_const |= module_.value(r).kind == ValueKind::Constant &&
                         module_.value(r).constValue == 42;
        }
        EXPECT_TRUE(saw_h) << "engine " << static_cast<int>(engine);
        EXPECT_TRUE(saw_const) << "engine " << static_cast<int>(engine);
    }
    expectEnginesAgree();
}

TEST_F(DdgWalkTest, TruncatedQueriesAreNotMemoized)
{
    load(R"(
func @f() {
entry:
  %h = call.64 @malloc(8:64)
  %a = copy %h
  %b = copy %a
  %c = copy %b
  %d = copy %c
  ret %d
}
)");
    WalkBudget tiny;
    tiny.maxVisited = 2;
    DdgWalker w = walker(WalkEngine::Fast, tiny);
    const auto first = w.rootsOf(val("d"));
    EXPECT_TRUE(w.lastQueryTruncated());
    const auto second = w.rootsOf(val("d"));
    EXPECT_TRUE(w.lastQueryTruncated());
    EXPECT_EQ(first, second);  // deterministic recompute
    EXPECT_EQ(w.stats().queries, 2u);
    EXPECT_EQ(w.stats().memoHits, 0u);  // truncated answers never cached
    EXPECT_EQ(w.stats().truncated, 2u);

    DdgWalker roomy = walker(WalkEngine::Fast);
    const auto full1 = roomy.rootsOf(val("d"));
    EXPECT_FALSE(roomy.lastQueryTruncated());
    const auto full2 = roomy.rootsOf(val("d"));
    EXPECT_EQ(full1, full2);
    EXPECT_EQ(roomy.stats().memoHits, 1u);
    (void)roomy.typesOf(val("h"), analyzer_->hints());
    (void)roomy.typesOf(val("h"), analyzer_->hints());
    EXPECT_EQ(roomy.stats().memoHits, 2u);
    EXPECT_EQ(roomy.stats().truncated, 0u);
}

TEST_F(DdgWalkTest, GeneratedProgramEnginesAgree)
{
    GenConfig cfg;
    cfg.seed = 20250805;
    cfg.numFunctions = 20;
    GeneratedProgram prog = generateProgram(cfg);
    makeAcyclic(*prog.module);
    MantaAnalyzer an(*prog.module);

    HybridConfig fast_par = HybridConfig::full();
    fast_par.walkEngine = WalkEngine::Fast;
    fast_par.walkParallel = true;
    HybridConfig fast_seq = fast_par;
    fast_seq.walkParallel = false;
    HybridConfig ref_cfg = HybridConfig::full();
    ref_cfg.walkEngine = WalkEngine::Reference;
    ref_cfg.walkParallel = false;

    const InferenceResult par = an.infer(fast_par);
    const InferenceResult seq = an.infer(fast_seq);
    const InferenceResult ref = an.infer(ref_cfg);

    auto expect_same = [&](const InferenceResult &a,
                           const InferenceResult &b, const char *label) {
        EXPECT_EQ(a.overlay().size(), b.overlay().size()) << label;
        for (const auto &[v, bp] : a.overlay()) {
            const auto it = b.overlay().find(v);
            ASSERT_NE(it, b.overlay().end()) << label << " value " << v.raw();
            EXPECT_EQ(it->second.upper, bp.upper) << label;
            EXPECT_EQ(it->second.lower, bp.lower) << label;
        }
        EXPECT_EQ(a.siteOverlay().size(), b.siteOverlay().size()) << label;
        for (const auto &[sv, bp] : a.siteOverlay()) {
            const auto it = b.siteOverlay().find(sv);
            ASSERT_NE(it, b.siteOverlay().end()) << label;
            EXPECT_EQ(it->second.upper, bp.upper) << label;
            EXPECT_EQ(it->second.lower, bp.lower) << label;
        }
    };
    expect_same(par, seq, "parallel-vs-sequential");
    expect_same(par, ref, "fast-vs-reference");

    // Query counts are job-count-invariant (fixed-size chunks; a
    // memo hit still counts as a query). Hit counts differ between
    // the chunked and whole-worklist memo scopes, so only the totals
    // that the bounds depend on are asserted here.
    EXPECT_EQ(par.profile().csWalk.queries, seq.profile().csWalk.queries);
    EXPECT_EQ(par.profile().fsWalk.queries, seq.profile().fsWalk.queries);
    EXPECT_GT(par.profile().csWalk.queries + par.profile().fsWalk.queries,
              0u);
}

} // namespace
} // namespace manta
