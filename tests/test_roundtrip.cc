/**
 * @file
 * Property sweeps over generated programs: printer/parser round-trip
 * fidelity, pipeline determinism, and points-to/DDG sanity invariants
 * that must hold for arbitrary generated inputs.
 */
#include <gtest/gtest.h>

#include "analysis/acyclic.h"
#include "core/pipeline.h"
#include "frontend/generator.h"
#include "mir/parser.h"
#include "mir/printer.h"
#include "mir/verifier.h"

namespace manta {
namespace {

GenConfig
sweepConfig(std::uint64_t seed)
{
    GenConfig cfg;
    cfg.seed = seed;
    cfg.numFunctions = 16;
    cfg.realBugRate = 0.1;
    cfg.decoyRate = 0.1;
    return cfg;
}

class GeneratedSweep : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(GeneratedSweep, PrintParseRoundTrip)
{
    const GeneratedProgram prog = generateProgram(sweepConfig(GetParam()));
    const std::string once = printModule(*prog.module);

    Module reparsed;
    std::string error;
    ASSERT_TRUE(parseModule(once, reparsed, error)) << error;
    EXPECT_TRUE(verifyModule(reparsed).empty());

    // Print -> parse -> print is a fixpoint.
    const std::string twice = printModule(reparsed);
    Module reparsed2;
    ASSERT_TRUE(parseModule(twice, reparsed2, error)) << error;
    EXPECT_EQ(printModule(reparsed2), twice);

    // Structure is preserved: same functions, same opcode multiset.
    ASSERT_EQ(reparsed.numFuncs(), prog.module->numFuncs());
    std::map<int, int> ops_a, ops_b;
    for (std::size_t i = 0; i < prog.module->numInsts(); ++i)
        ++ops_a[(int)prog.module->inst(InstId(InstId::RawType(i))).op];
    for (std::size_t i = 0; i < reparsed.numInsts(); ++i)
        ++ops_b[(int)reparsed.inst(InstId(InstId::RawType(i))).op];
    EXPECT_EQ(ops_a, ops_b);
}

TEST_P(GeneratedSweep, PipelineIsDeterministic)
{
    auto run = [&] {
        GeneratedProgram prog = generateProgram(sweepConfig(GetParam()));
        makeAcyclic(*prog.module);
        MantaAnalyzer analyzer(*prog.module, HybridConfig::full());
        const InferenceResult result = analyzer.infer();
        const StageStats stats = result.finalStats();
        return std::tuple<std::size_t, std::size_t, std::size_t>(
            stats.precise, stats.over, stats.unknown);
    };
    EXPECT_EQ(run(), run());
}

TEST_P(GeneratedSweep, PointsToLocationsAreWellFormed)
{
    GeneratedProgram prog = generateProgram(sweepConfig(GetParam()));
    makeAcyclic(*prog.module);
    const MemObjects objects(*prog.module);
    PointsTo pts(*prog.module, objects);
    pts.run();
    for (std::size_t v = 0; v < prog.module->numValues(); ++v) {
        const ValueId vid(static_cast<ValueId::RawType>(v));
        for (const Loc &loc : pts.locs(vid)) {
            ASSERT_TRUE(loc.obj.valid());
            ASSERT_LT(loc.obj.index(), objects.numObjects());
            const MemObject &obj = objects.object(loc.obj);
            if (!loc.collapsed() && obj.sizeBytes > 0) {
                EXPECT_LT(static_cast<std::uint32_t>(loc.offset),
                          obj.sizeBytes);
            }
        }
        // Only 64-bit values can carry addresses.
        if (!pts.locs(vid).empty()) {
            EXPECT_EQ(prog.module->value(vid).width, 64);
        }
    }
}

TEST_P(GeneratedSweep, DdgEdgesReferenceValidValues)
{
    GeneratedProgram prog = generateProgram(sweepConfig(GetParam()));
    makeAcyclic(*prog.module);
    const MemObjects objects(*prog.module);
    PointsTo pts(*prog.module, objects);
    pts.run();
    const Ddg ddg(*prog.module, pts);
    for (std::uint32_t i = 0; i < ddg.numEdges(); ++i) {
        const Ddg::Edge &e = ddg.edge(i);
        ASSERT_LT(e.from.index(), prog.module->numValues());
        ASSERT_LT(e.to.index(), prog.module->numValues());
        if (e.kind == DepKind::CallArg || e.kind == DepKind::CallRet) {
            EXPECT_TRUE(e.site.valid());
        }
        EXPECT_FALSE(e.pruned);
    }
}

TEST_P(GeneratedSweep, SiteBoundsRefineValueBounds)
{
    // Property: every site-refined bound is at least as tight as, or a
    // refinement of, what the FI stage concluded (never wider than the
    // FI upper bound unless the site was refined to unknown).
    GeneratedProgram prog = generateProgram(sweepConfig(GetParam()));
    makeAcyclic(*prog.module);
    MantaAnalyzer analyzer(*prog.module, HybridConfig::full());
    const InferenceResult fi = analyzer.infer(HybridConfig::fiOnly());
    const InferenceResult full = analyzer.infer();
    TypeTable &tt = prog.module->types();

    std::size_t checked = 0;
    for (std::size_t v = 0; v < prog.module->numValues() && checked < 500;
         ++v) {
        const ValueId vid(static_cast<ValueId::RawType>(v));
        const ValueKind kind = prog.module->value(vid).kind;
        if (kind != ValueKind::Argument && kind != ValueKind::InstResult)
            continue;
        const BoundPair fi_bp = fi.valueBounds(vid);
        if (fi_bp.classify(tt) != TypeClass::Over)
            continue;
        const BoundPair full_bp = full.valueBounds(vid);
        if (full_bp.classify(tt) == TypeClass::Unknown)
            continue; // refinement loss is allowed
        ++checked;
        EXPECT_TRUE(tt.isSubtype(full_bp.upper, fi_bp.upper) ||
                    fi_bp.upper == tt.top())
            << "v" << v << ": full=" << tt.toString(full_bp.upper)
            << " fi=" << tt.toString(fi_bp.upper);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedSweep,
                         ::testing::Values(21ull, 22ull, 23ull, 24ull,
                                           25ull, 1000ull, 2000ull,
                                           3000ull));

// ---- Parser error paths: malformed inputs must produce diagnostics,
// never crashes or silent acceptance. ----

struct MalformedCase
{
    const char *name;    ///< test label, shown on failure
    const char *text;    ///< malformed module text
    const char *expect;  ///< substring required in the diagnostic
};

class ParserRejects : public ::testing::TestWithParam<MalformedCase>
{};

TEST_P(ParserRejects, WithLineTaggedDiagnostic)
{
    const MalformedCase &c = GetParam();
    Module m;
    std::string error;
    ASSERT_FALSE(parseModule(c.text, m, error)) << c.name;
    EXPECT_FALSE(error.empty()) << c.name;
    EXPECT_NE(error.find("line "), std::string::npos)
        << c.name << ": diagnostic lacks a line tag: " << error;
    EXPECT_NE(error.find(c.expect), std::string::npos)
        << c.name << ": expected '" << c.expect << "' in: " << error;
}

const MalformedCase kMalformed[] = {
    {"truncated_body",
     "func @main() {\nentry:\n  ret 0:64\n",
     "unterminated function"},
    {"undefined_register",
     "func @main() {\nentry:\n  %x = add %undef, 1:64\n  ret %x\n}\n",
     "use of undefined value %undef"},
    {"bad_load_width",
     "func @main(%p:64) {\nentry:\n  %v = load.7 %p\n  ret %v\n}\n",
     "invalid width 7"},
    {"junk_width",
     "func @main(%p:64) {\nentry:\n  %v = load.abc %p\n  ret %v\n}\n",
     "malformed width"},
    {"trunc_without_suffix",
     "func @main(%x:64) {\nentry:\n  %n = trunc %x\n  ret %n\n}\n",
     "trunc requires a width suffix"},
    {"bad_param_width",
     "func @main(%x:13) {\nentry:\n  ret %x\n}\n",
     "invalid width 13"},
    {"malformed_param",
     "func @main(%x) {\nentry:\n  ret 0:64\n}\n",
     "malformed parameter"},
    {"duplicate_function",
     "func @f() {\nentry:\n  ret 0:64\n}\nfunc @f() {\nentry:\n"
     "  ret 0:64\n}\n",
     "duplicate function @f"},
    {"duplicate_block_label",
     "func @main() {\nentry:\n  jmp entry\nentry:\n  ret 0:64\n}\n",
     "duplicate block label entry"},
    {"value_redefinition",
     "func @main() {\nentry:\n  %x = copy 1:64\n  %x = copy 2:64\n"
     "  ret %x\n}\n",
     "redefinition of %x"},
    {"store_with_result",
     "func @main(%p:64) {\nentry:\n  %r = store %p, 1:64\n"
     "  ret 0:64\n}\n",
     "store does not produce a result"},
    {"missing_result_name",
     "func @main() {\nentry:\n  add 1:64, 2:64\n  ret 0:64\n}\n",
     "expected '%name ='"},
    {"unknown_opcode",
     "func @main() {\nentry:\n  %x = frobnicate 1:64\n  ret %x\n}\n",
     "unknown opcode frobnicate"},
    {"unknown_callee",
     "func @main() {\nentry:\n  %x = call @nosuch(1:64)\n  ret %x\n}\n",
     "unknown callee @nosuch"},
    {"unknown_branch_target",
     "func @main(%c:1) {\nentry:\n  br %c, nowhere, entry\n}\n",
     "unknown block label nowhere"},
    {"inst_before_label",
     "func @main() {\n  %x = copy 1:64\nentry:\n  ret %x\n}\n",
     "instruction before any block label"},
    {"wrong_operand_count",
     "func @main(%c:1) {\nentry:\n  br %c, entry\n}\n",
     "br expects 3 operands"},
    {"unknown_predicate",
     "func @main() {\nentry:\n  %c = icmp.zz 1:64, 2:64\n"
     "  ret 0:64\n}\n",
     "unknown compare predicate .zz"},
    {"junk_constant",
     "func @main() {\nentry:\n  %x = add 12abc, 1:64\n  ret %x\n}\n",
     "bad operand 12abc"},
    {"phi_only_forward_refs",
     "func @main() {\nentry:\n  %p = phi %a, entry, %b, entry\n"
     "  ret %p\n}\n",
     "phi with only forward references"},
    {"unresolved_phi_operand",
     "func @main() {\nentry:\n  %p = phi 1:64, entry, %never, other\n"
     "  jmp other\nother:\n  ret %p\n}\n",
     "unresolved phi operand %never"},
    {"malformed_global",
     "global @g\nfunc @main() {\nentry:\n  ret 0:64\n}\n",
     "malformed global"},
    {"duplicate_global",
     "global @g 8\nglobal @g 16\nfunc @main() {\nentry:\n"
     "  ret 0:64\n}\n",
     "duplicate global @g"},
    {"malformed_alloca_size",
     "func @main() {\nentry:\n  %p = alloca lots\n  ret 0:64\n}\n",
     "malformed alloca size"},
};

INSTANTIATE_TEST_SUITE_P(
    Malformed, ParserRejects, ::testing::ValuesIn(kMalformed),
    [](const ::testing::TestParamInfo<MalformedCase> &info) {
        return std::string(info.param.name);
    });

} // namespace
} // namespace manta
