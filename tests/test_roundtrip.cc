/**
 * @file
 * Property sweeps over generated programs: printer/parser round-trip
 * fidelity, pipeline determinism, and points-to/DDG sanity invariants
 * that must hold for arbitrary generated inputs.
 */
#include <gtest/gtest.h>

#include "analysis/acyclic.h"
#include "core/pipeline.h"
#include "frontend/generator.h"
#include "mir/parser.h"
#include "mir/printer.h"
#include "mir/verifier.h"

namespace manta {
namespace {

GenConfig
sweepConfig(std::uint64_t seed)
{
    GenConfig cfg;
    cfg.seed = seed;
    cfg.numFunctions = 16;
    cfg.realBugRate = 0.1;
    cfg.decoyRate = 0.1;
    return cfg;
}

class GeneratedSweep : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(GeneratedSweep, PrintParseRoundTrip)
{
    const GeneratedProgram prog = generateProgram(sweepConfig(GetParam()));
    const std::string once = printModule(*prog.module);

    Module reparsed;
    std::string error;
    ASSERT_TRUE(parseModule(once, reparsed, error)) << error;
    EXPECT_TRUE(verifyModule(reparsed).empty());

    // Print -> parse -> print is a fixpoint.
    const std::string twice = printModule(reparsed);
    Module reparsed2;
    ASSERT_TRUE(parseModule(twice, reparsed2, error)) << error;
    EXPECT_EQ(printModule(reparsed2), twice);

    // Structure is preserved: same functions, same opcode multiset.
    ASSERT_EQ(reparsed.numFuncs(), prog.module->numFuncs());
    std::map<int, int> ops_a, ops_b;
    for (std::size_t i = 0; i < prog.module->numInsts(); ++i)
        ++ops_a[(int)prog.module->inst(InstId(InstId::RawType(i))).op];
    for (std::size_t i = 0; i < reparsed.numInsts(); ++i)
        ++ops_b[(int)reparsed.inst(InstId(InstId::RawType(i))).op];
    EXPECT_EQ(ops_a, ops_b);
}

TEST_P(GeneratedSweep, PipelineIsDeterministic)
{
    auto run = [&] {
        GeneratedProgram prog = generateProgram(sweepConfig(GetParam()));
        makeAcyclic(*prog.module);
        MantaAnalyzer analyzer(*prog.module, HybridConfig::full());
        const InferenceResult result = analyzer.infer();
        const StageStats stats = result.finalStats();
        return std::tuple<std::size_t, std::size_t, std::size_t>(
            stats.precise, stats.over, stats.unknown);
    };
    EXPECT_EQ(run(), run());
}

TEST_P(GeneratedSweep, PointsToLocationsAreWellFormed)
{
    GeneratedProgram prog = generateProgram(sweepConfig(GetParam()));
    makeAcyclic(*prog.module);
    const MemObjects objects(*prog.module);
    PointsTo pts(*prog.module, objects);
    pts.run();
    for (std::size_t v = 0; v < prog.module->numValues(); ++v) {
        const ValueId vid(static_cast<ValueId::RawType>(v));
        for (const Loc &loc : pts.locs(vid)) {
            ASSERT_TRUE(loc.obj.valid());
            ASSERT_LT(loc.obj.index(), objects.numObjects());
            const MemObject &obj = objects.object(loc.obj);
            if (!loc.collapsed() && obj.sizeBytes > 0) {
                EXPECT_LT(static_cast<std::uint32_t>(loc.offset),
                          obj.sizeBytes);
            }
        }
        // Only 64-bit values can carry addresses.
        if (!pts.locs(vid).empty()) {
            EXPECT_EQ(prog.module->value(vid).width, 64);
        }
    }
}

TEST_P(GeneratedSweep, DdgEdgesReferenceValidValues)
{
    GeneratedProgram prog = generateProgram(sweepConfig(GetParam()));
    makeAcyclic(*prog.module);
    const MemObjects objects(*prog.module);
    PointsTo pts(*prog.module, objects);
    pts.run();
    const Ddg ddg(*prog.module, pts);
    for (std::uint32_t i = 0; i < ddg.numEdges(); ++i) {
        const Ddg::Edge &e = ddg.edge(i);
        ASSERT_LT(e.from.index(), prog.module->numValues());
        ASSERT_LT(e.to.index(), prog.module->numValues());
        if (e.kind == DepKind::CallArg || e.kind == DepKind::CallRet) {
            EXPECT_TRUE(e.site.valid());
        }
        EXPECT_FALSE(e.pruned);
    }
}

TEST_P(GeneratedSweep, SiteBoundsRefineValueBounds)
{
    // Property: every site-refined bound is at least as tight as, or a
    // refinement of, what the FI stage concluded (never wider than the
    // FI upper bound unless the site was refined to unknown).
    GeneratedProgram prog = generateProgram(sweepConfig(GetParam()));
    makeAcyclic(*prog.module);
    MantaAnalyzer analyzer(*prog.module, HybridConfig::full());
    const InferenceResult fi = analyzer.infer(HybridConfig::fiOnly());
    const InferenceResult full = analyzer.infer();
    TypeTable &tt = prog.module->types();

    std::size_t checked = 0;
    for (std::size_t v = 0; v < prog.module->numValues() && checked < 500;
         ++v) {
        const ValueId vid(static_cast<ValueId::RawType>(v));
        const ValueKind kind = prog.module->value(vid).kind;
        if (kind != ValueKind::Argument && kind != ValueKind::InstResult)
            continue;
        const BoundPair fi_bp = fi.valueBounds(vid);
        if (fi_bp.classify(tt) != TypeClass::Over)
            continue;
        const BoundPair full_bp = full.valueBounds(vid);
        if (full_bp.classify(tt) == TypeClass::Unknown)
            continue; // refinement loss is allowed
        ++checked;
        EXPECT_TRUE(tt.isSubtype(full_bp.upper, fi_bp.upper) ||
                    fi_bp.upper == tt.top())
            << "v" << v << ": full=" << tt.toString(full_bp.upper)
            << " fi=" << tt.toString(fi_bp.upper);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedSweep,
                         ::testing::Values(21ull, 22ull, 23ull, 24ull,
                                           25ull, 1000ull, 2000ull,
                                           3000ull));

} // namespace
} // namespace manta
