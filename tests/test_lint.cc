/**
 * @file
 * Tests for the lint framework (src/lint/, docs/LINT.md): the
 * registry and engine plumbing, SARIF serialization, bit-identical
 * parity between the paper checker adapters and the pre-framework
 * BugDetector, true-positive and type-assisted-suppression cases for
 * each of the five new checkers, and campaign determinism across
 * worker counts.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "analysis/acyclic.h"
#include "eval/harness.h"
#include "lint/campaign.h"
#include "lint/checker.h"
#include "lint/run.h"
#include "mir/parser.h"

namespace manta {
namespace {

class LintTest : public ::testing::Test
{
  protected:
    void
    load(const std::string &text)
    {
        module_ = parseModuleOrDie(text);
        makeAcyclic(module_);
        analyzer_ =
            std::make_unique<MantaAnalyzer>(module_, HybridConfig::full());
        result_ = std::make_unique<InferenceResult>(analyzer_->infer());
    }

    /** Run one checker (or all when `checker` is empty). */
    lint::LintResult
    lintOne(const std::string &checker, bool use_types,
            lint::LintOptions opts = {})
    {
        if (!checker.empty())
            opts.enabled = {checker};
        return lint::runLint(*analyzer_,
                             use_types ? result_.get() : nullptr, nullptr,
                             opts);
    }

    Module module_;
    std::unique_ptr<MantaAnalyzer> analyzer_;
    std::unique_ptr<InferenceResult> result_;
};

// ---------------------------------------------------------------------
// Registry and engine plumbing.
// ---------------------------------------------------------------------

TEST(LintRegistry, ThirteenBuiltinCheckersSortedById)
{
    lint::registerBuiltinCheckers();
    lint::registerBuiltinCheckers();  // Idempotent.
    const auto checkers = lint::CheckerRegistry::instance().createAll();
    ASSERT_EQ(checkers.size(), 13u);
    std::vector<std::string> ids;
    for (const auto &c : checkers)
        ids.push_back(c->id());
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
    const std::vector<std::string> expected = {
        "addr-leak", "bof",  "cmi",          "double-free",
        "format-string", "icall-mismatch", "npd",  "rsa",
        "sign-confusion", "taint-deref",    "uaf",
        "uninit-stack", "width-trunc"};
    std::vector<std::string> sorted_expected = expected;
    std::sort(sorted_expected.begin(), sorted_expected.end());
    EXPECT_EQ(ids, sorted_expected);
}

TEST(LintEngine, DeduplicatesAndSortsDeterministically)
{
    lint::DiagnosticEngine engine;
    lint::Diagnostic b;
    b.checker = "zzz";
    b.primary.inst = InstId(7);
    b.primary.func = "f";
    b.message = "later";
    lint::Diagnostic a;
    a.checker = "aaa";
    a.primary.inst = InstId(3);
    a.primary.func = "f";
    a.message = "earlier";
    engine.report(b);
    engine.report(a);
    engine.report(a);  // Duplicate finding: dropped.
    const auto diags = engine.take();
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].checker, "aaa");
    EXPECT_EQ(diags[1].checker, "zzz");
}

TEST(LintEngine, DisableAndEnableOnlyFilter)
{
    lint::DiagnosticEngine engine;
    engine.enableOnly({"npd", "uaf"});
    engine.disable("uaf");
    EXPECT_TRUE(engine.checkerEnabled("npd"));
    EXPECT_FALSE(engine.checkerEnabled("uaf"));   // Disabled wins.
    EXPECT_FALSE(engine.checkerEnabled("bof"));   // Not in enableOnly.

    lint::Diagnostic d;
    d.checker = "bof";
    d.primary.inst = InstId(1);
    d.message = "m";
    engine.report(d);
    EXPECT_TRUE(engine.take().empty());
}

TEST_F(LintTest, BaselineSuppressesKnownFindings)
{
    load(R"(
string @key "cmd"
func @f() {
entry:
  %t = call.64 @nvram_get(@key)
  %r = call.32 @system(%t)
  %buf = alloca 8
  %r2 = call.64 @strcpy(%buf, %t)
  ret
}
)");
    const lint::LintResult first = lintOne("", true);
    ASSERT_GE(first.diagnostics.size(), 2u);
    for (const auto &d : first.diagnostics)
        EXPECT_FALSE(d.fingerprint.empty());

    lint::LintOptions opts;
    opts.baselineText =
        lint::DiagnosticEngine::writeBaseline(first.diagnostics);
    const lint::LintResult second = lintOne("", true, opts);
    EXPECT_TRUE(second.diagnostics.empty());
    std::size_t suppressed = 0;
    for (const auto &stats : second.perChecker)
        suppressed += stats.baselineSuppressed;
    EXPECT_EQ(suppressed, first.diagnostics.size());
}

TEST_F(LintTest, SarifLogHasRequiredShape)
{
    load(R"(
string @key "cmd"
func @f() {
entry:
  %t = call.64 @nvram_get(@key)
  %r = call.32 @system(%t)
  ret
}
)");
    const lint::LintResult result = lintOne("", true);
    ASSERT_FALSE(result.diagnostics.empty());
    EXPECT_EQ(result.rules.size(), 13u);
    lint::SarifRun run;
    run.artifact = "unit.mir";
    run.diagnostics = result.diagnostics;
    const std::string log = lint::sarifLog({run}, result.rules);
    for (const char *needle :
         {"\"$schema\"", "\"version\": \"2.1.0\"", "\"manta-lint\"",
          "\"ruleId\"", "\"partialFingerprints\"", "\"startLine\"",
          "\"logicalLocations\"", "\"unit.mir\""}) {
        EXPECT_NE(log.find(needle), std::string::npos)
            << "missing " << needle;
    }
    // Pseudo-line is the 1-based instruction id.
    const InstId primary = result.diagnostics[0].primary.inst;
    const std::string line =
        "\"startLine\": " + std::to_string(primary.raw() + 1);
    EXPECT_NE(log.find(line), std::string::npos);
}

TEST(LintSarif, JsonEscapeHandlesSpecials)
{
    EXPECT_EQ(lint::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// ---------------------------------------------------------------------
// Paper parity: the five adapters reproduce BugDetector bit for bit.
// ---------------------------------------------------------------------

using ReportTuple =
    std::tuple<std::string, std::uint32_t, std::uint32_t, std::uint32_t>;

const char *
paperIdOf(CheckerKind kind)
{
    switch (kind) {
      case CheckerKind::NPD: return "npd";
      case CheckerKind::RSA: return "rsa";
      case CheckerKind::UAF: return "uaf";
      case CheckerKind::CMI: return "cmi";
      case CheckerKind::BOF: return "bof";
    }
    return "";
}

TEST(LintPaperParity, FrameworkMatchesBugDetectorOnGeneratedCorpus)
{
    const std::vector<std::string> paper_ids = {"bof", "cmi", "npd",
                                                "rsa", "uaf"};
    for (std::uint64_t seed : {11u, 12u, 13u}) {
        ProjectProfile profile;
        profile.name = "parity-" + std::to_string(seed);
        profile.kloc = 1;
        profile.config.seed = seed;
        profile.config.numFunctions = 10;
        profile.config.realBugRate = 0.08;
        profile.config.decoyRate = 0.06;
        profile.config.benignCopyRate = 0.04;
        profile.config.benignSystemRate = 0.04;
        PreparedProject project = prepareProject(profile);
        InferenceResult inference = project.analyzer->infer();

        // Pre-framework Table 5 pipeline.
        std::vector<ReportTuple> detector_tuples;
        for (const BugReport &r : detectBugs(project, &inference)) {
            detector_tuples.emplace_back(paperIdOf(r.kind),
                                         r.sourceSite.raw(),
                                         r.sinkSite.raw(), r.sinkTag);
        }

        // The same five checkers through the framework.
        lint::LintOptions opts;
        opts.enabled = paper_ids;
        const lint::LintResult lr = lint::runLint(
            *project.analyzer, &inference, &project.truth(), opts);
        std::vector<ReportTuple> framework_tuples;
        for (const lint::Diagnostic &d : lr.diagnostics) {
            ASSERT_EQ(d.related.size(), 1u);
            framework_tuples.emplace_back(d.checker,
                                          d.related[0].inst.raw(),
                                          d.primary.inst.raw(), d.srcTag);
        }

        std::sort(detector_tuples.begin(), detector_tuples.end());
        std::sort(framework_tuples.begin(), framework_tuples.end());
        EXPECT_EQ(detector_tuples, framework_tuples)
            << "seed " << seed << ": framework diverged from detector";
    }
}

// ---------------------------------------------------------------------
// width-trunc.
// ---------------------------------------------------------------------

TEST_F(LintTest, WidthTruncDetectsNarrowedAddress)
{
    load(R"(
func @f(%x:64) {
entry:
  %t = trunc.16 %x
  %w = zext.64 %t
  %v = load.8 %w
  ret
}
)");
    const auto typed = lintOne("width-trunc", true);
    ASSERT_EQ(typed.diagnostics.size(), 1u);
    EXPECT_EQ(typed.diagnostics[0].checker, "width-trunc");
    EXPECT_NE(typed.diagnostics[0].message.find("64 to 16"),
              std::string::npos);
    const auto untyped = lintOne("width-trunc", false);
    EXPECT_EQ(untyped.diagnostics.size(), 1u);
}

TEST_F(LintTest, WidthTruncSuppressedByOffsetPruning)
{
    // The truncated value is only an offset; Table 2 pruning cuts the
    // offset -> pointer edge so the typed slice never reaches the
    // dereference, while the untyped ablation still reports.
    load(R"(
func @f(%x:64) {
entry:
  %base = call.64 @malloc(64:64)
  %t = trunc.16 %x
  %w = zext.64 %t
  %m = mul %w, 1:64
  %p = add %base, %m
  %v = load.8 %p
  ret
}
)");
    const auto typed = lintOne("width-trunc", true);
    EXPECT_TRUE(typed.diagnostics.empty());
    const auto untyped = lintOne("width-trunc", false);
    EXPECT_FALSE(untyped.diagnostics.empty());
}

// ---------------------------------------------------------------------
// sign-confusion.
// ---------------------------------------------------------------------

TEST_F(LintTest, SignConfusionDetectsUnreachableSextCompare)
{
    load(R"(
func @f(%x:32) {
entry:
  %s = sext.64 %x
  %c = icmp.lt %s, 3000000000:64
  br %c, yes, no
yes:
  ret
no:
  ret
}
)");
    const auto typed = lintOne("sign-confusion", true);
    ASSERT_EQ(typed.diagnostics.size(), 1u);
    EXPECT_NE(typed.diagnostics[0].message.find("sign-extended"),
              std::string::npos);
    const auto untyped = lintOne("sign-confusion", false);
    EXPECT_EQ(untyped.diagnostics.size(), 1u);
}

TEST_F(LintTest, SignConfusionPointerErrorIdiomSuppressedWithTypes)
{
    // Ordering a pointer against -1 (the error-constant idiom of
    // Section 6.4): typed mode knows the operand is a pointer and
    // stays quiet; the no-type ablation flags the signedness hazard.
    load(R"(
func @f() {
entry:
  %p = call.64 @malloc(8:64)
  %v = load.8 %p
  %c = icmp.gt %p, -1:64
  br %c, yes, no
yes:
  ret
no:
  ret
}
)");
    const auto typed = lintOne("sign-confusion", true);
    EXPECT_TRUE(typed.diagnostics.empty());
    const auto untyped = lintOne("sign-confusion", false);
    ASSERT_EQ(untyped.diagnostics.size(), 1u);
    EXPECT_NE(untyped.diagnostics[0].message.find("-1"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// uninit-stack.
// ---------------------------------------------------------------------

TEST_F(LintTest, UninitStackDetectsNeverWrittenSlot)
{
    load(R"(
func @f() {
entry:
  %slot = alloca 8
  %v = load.64 %slot
  ret
}
)");
    const auto typed = lintOne("uninit-stack", true);
    ASSERT_EQ(typed.diagnostics.size(), 1u);
    EXPECT_NE(typed.diagnostics[0].message.find("never written"),
              std::string::npos);
    ASSERT_EQ(typed.diagnostics[0].related.size(), 1u);
    EXPECT_EQ(typed.diagnostics[0].related[0].role, "stack slot");
    const auto untyped = lintOne("uninit-stack", false);
    EXPECT_EQ(untyped.diagnostics.size(), 1u);
}

TEST_F(LintTest, UninitStackCommittedFieldSuppressedWithTypes)
{
    // A join-path read of a slot initialized on only one arm: the
    // field-sensitive unification commits the slot's field (the load
    // feeds a numeric-typed call argument), so typed mode downgrades
    // the partial-initialization pattern; the ablation reports it.
    load(R"(
func @f(%c:1) {
entry:
  %slot = alloca 8
  br %c, w, s
w:
  store %slot, 7:64
  jmp j
s:
  jmp j
j:
  %v = load.64 %slot
  %r = call.32 @print_int(%v)
  ret
}
)");
    const auto typed = lintOne("uninit-stack", true);
    EXPECT_TRUE(typed.diagnostics.empty());
    const auto untyped = lintOne("uninit-stack", false);
    ASSERT_EQ(untyped.diagnostics.size(), 1u);
    EXPECT_NE(untyped.diagnostics[0].message.find("no "
                                                  "store reaches"),
              std::string::npos);
}

TEST_F(LintTest, UninitStackEscapedSlotStaysQuiet)
{
    // The slot's address is passed to a callee that may initialize it.
    load(R"(
func @init(%p:64) {
entry:
  store %p, 1:64
  ret
}
func @f() {
entry:
  %slot = alloca 8
  %r = call.32 @init(%slot)
  %v = load.64 %slot
  ret
}
)");
    EXPECT_TRUE(lintOne("uninit-stack", true).diagnostics.empty());
    EXPECT_TRUE(lintOne("uninit-stack", false).diagnostics.empty());
}

// ---------------------------------------------------------------------
// double-free.
// ---------------------------------------------------------------------

TEST_F(LintTest, DoubleFreeDetectsMustAliasRelease)
{
    load(R"(
func @f() {
entry:
  %h = call.64 @malloc(16:64)
  %p = copy %h
  call @free(%h)
  call @free(%p)
  ret
}
)");
    const auto typed = lintOne("double-free", true);
    ASSERT_EQ(typed.diagnostics.size(), 1u);
    EXPECT_EQ(typed.diagnostics[0].severity, lint::Severity::Error);
    ASSERT_EQ(typed.diagnostics[0].related.size(), 1u);
    EXPECT_EQ(typed.diagnostics[0].related[0].role, "first free");
    const auto untyped = lintOne("double-free", false);
    EXPECT_EQ(untyped.diagnostics.size(), 1u);
}

TEST_F(LintTest, DoubleFreeMayAliasSuppressedWithTypes)
{
    // The second freed pointer may be either allocation (loaded from a
    // branch-merged slot): typed mode demands must-alias and stays
    // quiet; the untyped may-overlap rule reports its documented FP.
    load(R"(
func @f(%c:1) {
entry:
  %slot = alloca 8
  %h1 = call.64 @malloc(16:64)
  %h2 = call.64 @malloc(16:64)
  br %c, a, b
a:
  store %slot, %h1
  jmp j
b:
  store %slot, %h2
  jmp j
j:
  %p = load.64 %slot
  call @free(%h1)
  call @free(%p)
  ret
}
)");
    const auto typed = lintOne("double-free", true);
    EXPECT_TRUE(typed.diagnostics.empty());
    const auto untyped = lintOne("double-free", false);
    EXPECT_FALSE(untyped.diagnostics.empty());
}

// ---------------------------------------------------------------------
// icall-mismatch.
// ---------------------------------------------------------------------

TEST_F(LintTest, IcallMismatchDetectsArityGap)
{
    // No address-taken target accepts zero arguments.
    load(R"(
func @takes_one(%a:64) {
entry:
  %r = call.32 @print_int(%a)
  ret
}
func @main() {
entry:
  %f = copy @takes_one
  icall.32 %f()
  ret
}
)");
    const auto typed = lintOne("icall-mismatch", true);
    ASSERT_EQ(typed.diagnostics.size(), 1u);
    EXPECT_NE(typed.diagnostics[0].message.find("no feasible"),
              std::string::npos);
    const auto untyped = lintOne("icall-mismatch", false);
    EXPECT_EQ(untyped.diagnostics.size(), 1u);
}

TEST_F(LintTest, IcallMismatchSurplusArgsSuppressedWithTypes)
{
    // A two-argument call to a one-parameter candidate: exact-arity
    // matching (no types) flags it, while FullTypes models the
    // calling-convention rule that surplus arguments are ignored.
    load(R"(
func @takes_one(%a:64) {
entry:
  %r = call.32 @print_int(%a)
  ret
}
func @main() {
entry:
  %f = copy @takes_one
  icall.32 %f(1:64, 2:64)
  ret
}
)");
    const auto typed = lintOne("icall-mismatch", true);
    EXPECT_TRUE(typed.diagnostics.empty());
    const auto untyped = lintOne("icall-mismatch", false);
    EXPECT_EQ(untyped.diagnostics.size(), 1u);
}

// ---------------------------------------------------------------------
// Framework integration.
// ---------------------------------------------------------------------

TEST_F(LintTest, LintSecondsCreditedToProfile)
{
    load(R"(
func @f() {
entry:
  %slot = alloca 8
  %v = load.64 %slot
  ret
}
)");
    const double before = result_->profile().lintSeconds;
    const lint::LintResult result = lintOne("", true);
    EXPECT_GE(result.seconds, 0.0);
    EXPECT_GE(result_->profile().lintSeconds, before);
    EXPECT_EQ(result.perChecker.size(), 13u);
    for (std::size_t i = 1; i < result.perChecker.size(); ++i)
        EXPECT_LT(result.perChecker[i - 1].id, result.perChecker[i].id);
}

TEST_F(LintTest, RepeatedRunsAreIdentical)
{
    load(R"(
string @key "cmd"
func @f() {
entry:
  %t = call.64 @nvram_get(@key)
  %r = call.32 @system(%t)
  %slot = alloca 8
  %v = load.64 %slot
  ret
}
)");
    const auto first = lintOne("", true);
    const auto second = lintOne("", true);
    EXPECT_EQ(lint::DiagnosticEngine::renderText(first.diagnostics),
              lint::DiagnosticEngine::renderText(second.diagnostics));
}

// ---------------------------------------------------------------------
// Campaign determinism (the MANTA_JOBS byte-identity guarantee).
// ---------------------------------------------------------------------

TEST(LintCampaign, ArtifactsByteIdenticalAcrossWorkerCounts)
{
    lint::LintCampaignOptions options;
    options.seed = 5;
    options.count = 4;
    options.stable = true;

    options.jobs = 1;
    const lint::LintCampaignResult serial = runLintCampaign(options);
    options.jobs = 8;
    const lint::LintCampaignResult parallel = runLintCampaign(options);

    EXPECT_EQ(serial.textReport, parallel.textReport);
    EXPECT_EQ(serial.sarif, parallel.sarif);
    EXPECT_EQ(serial.json, parallel.json);
    EXPECT_EQ(serial.totalDiagnostics, parallel.totalDiagnostics);

    ASSERT_EQ(serial.checkers.size(), 13u);
    for (const auto &summary : serial.checkers) {
        EXPECT_GE(summary.precision(), 0.0);
        EXPECT_LE(summary.precision(), 1.0);
        EXPECT_GE(summary.recall(), 0.0);
        EXPECT_LE(summary.recall(), 1.0);
    }
    EXPECT_NE(serial.json.find("\"precision\""), std::string::npos);
    EXPECT_NE(serial.json.find("\"recall\""), std::string::npos);
}

// The satellite-2 regression: the Table 5 pipeline itself (detector
// reports over a generated project) is independent of harness job
// count, because ReportSet orders deterministically and per-project
// work is isolated.
TEST(LintCampaign, DetectorReportsIndependentOfJobCount)
{
    ProjectProfile profile;
    profile.name = "jobs-identity";
    profile.kloc = 1;
    profile.config.seed = 21;
    profile.config.numFunctions = 10;
    profile.config.realBugRate = 0.08;
    profile.config.decoyRate = 0.06;

    auto run_once = [&profile]() {
        PreparedProject project = prepareProject(profile);
        InferenceResult inference = project.analyzer->infer();
        std::vector<ReportTuple> tuples;
        for (const BugReport &r : detectBugs(project, &inference)) {
            tuples.emplace_back(paperIdOf(r.kind), r.sourceSite.raw(),
                                r.sinkSite.raw(), r.sinkTag);
        }
        return tuples;
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace manta
