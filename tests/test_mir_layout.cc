/**
 * @file
 * Tests for the arena-backed struct-of-arrays MIR storage layout:
 * pool growth keeping ids stable, CSR operand-slice iteration order,
 * name-interner dedup/round-trip, the pool snapshot codec, and the
 * LocSet paged-bitmap tier (promotion, demotion, word-parallel set
 * algebra) agreeing with the vector tiers.
 */
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/locset.h"
#include "mir/builder.h"
#include "mir/mir.h"
#include "mir/printer.h"
#include "mir/serialize.h"
#include "support/binio.h"

namespace manta {
namespace {

// ---- Pool growth / id stability -----------------------------------

TEST(MirLayout, ValueIdsStayValidAcrossPoolGrowth)
{
    Module m;
    std::vector<ValueId> ids;
    for (int i = 0; i < 4096; ++i) {
        Value v;
        v.kind = ValueKind::Constant;
        v.width = 64;
        v.constValue = i;
        ids.push_back(m.addValue(v));
    }
    // Growth reallocates the pool; the 32-bit handles must still
    // resolve to the records they were handed out for.
    for (int i = 0; i < 4096; ++i) {
        EXPECT_EQ(ids[i].index(), static_cast<std::uint32_t>(i));
        EXPECT_EQ(m.value(ids[i]).constValue, i);
    }
}

TEST(MirLayout, InstSlicesSurviveOperandPoolGrowth)
{
    Module m;
    std::vector<ValueId> vals;
    for (int i = 0; i < 64; ++i) {
        Value v;
        v.kind = ValueKind::Constant;
        v.constValue = i;
        vals.push_back(m.addValue(v));
    }
    // Interleave instructions with growing operand lists so slices
    // land at many offsets while the shared pool reallocates.
    std::vector<InstId> insts;
    for (int i = 0; i < 512; ++i) {
        Instruction rec;
        rec.op = Opcode::Call;
        std::vector<ValueId> ops;
        for (int k = 0; k <= i % 7; ++k)
            ops.push_back(vals[static_cast<std::size_t>((i + k) % 64)]);
        insts.push_back(m.addInst(rec, ops));
    }
    for (int i = 0; i < 512; ++i) {
        const auto ops = m.operands(insts[static_cast<std::size_t>(i)]);
        ASSERT_EQ(ops.size(), static_cast<std::size_t>(i % 7 + 1));
        for (std::size_t k = 0; k < ops.size(); ++k) {
            EXPECT_EQ(ops[k],
                      vals[(static_cast<std::size_t>(i) + k) % 64]);
        }
    }
}

// ---- CSR slice semantics ------------------------------------------

TEST(MirLayout, SetOperandsGrowthLeavesNeighborsIntact)
{
    Module m;
    Value v;
    v.kind = ValueKind::Constant;
    const ValueId a = m.addValue(v);
    const ValueId b = m.addValue(v);
    const ValueId c = m.addValue(v);

    Instruction rec;
    rec.op = Opcode::Call;
    const ValueId first_ops[] = {a, b};
    const InstId i0 = m.addInst(rec, first_ops);
    const ValueId second_ops[] = {c};
    const InstId i1 = m.addInst(rec, second_ops);

    // Same length: rewritten in place.
    const ValueId same[] = {c, a};
    m.setOperands(i0, same);
    EXPECT_EQ(m.operand(i0, 0), c);
    EXPECT_EQ(m.operand(i0, 1), a);

    // Longer: appends a fresh run; the neighbor's slice is untouched.
    const ValueId grown[] = {a, b, c};
    m.setOperands(i0, grown);
    ASSERT_EQ(m.inst(i0).numOperands(), 3u);
    EXPECT_EQ(m.operand(i0, 0), a);
    EXPECT_EQ(m.operand(i0, 1), b);
    EXPECT_EQ(m.operand(i0, 2), c);
    ASSERT_EQ(m.inst(i1).numOperands(), 1u);
    EXPECT_EQ(m.operand(i1, 0), c);
}

TEST(MirLayout, CloneDuplicatesSlicesIndependently)
{
    Module m;
    Value v;
    v.kind = ValueKind::Constant;
    const ValueId a = m.addValue(v);
    const ValueId b = m.addValue(v);

    Instruction rec;
    rec.op = Opcode::Call;
    const ValueId ops[] = {a, b};
    const InstId orig = m.addInst(rec, ops);
    const InstId clone = m.addInstClone(m.inst(orig));

    // Rewriting the clone's operands must not alias the original.
    m.operandsMut(clone)[0] = b;
    EXPECT_EQ(m.operand(orig, 0), a);
    EXPECT_EQ(m.operand(clone, 0), b);
    EXPECT_EQ(m.operand(clone, 1), b);
}

// ---- Name interner ------------------------------------------------

TEST(MirLayout, InternerDedupsAndRoundTrips)
{
    Module m;
    const NameId a = m.internName("foo");
    const NameId b = m.internName("bar");
    const NameId a2 = m.internName("foo");
    EXPECT_EQ(a, a2);
    EXPECT_NE(a, b);
    EXPECT_EQ(m.str(a), "foo");
    EXPECT_EQ(m.str(b), "bar");

    // Empty maps to the invalid handle, which prints as "".
    const NameId none = m.internName("");
    EXPECT_FALSE(none.valid());
    EXPECT_EQ(m.str(none), "");
}

TEST(MirLayout, NameOfResolvesThroughValues)
{
    Module m;
    Value v;
    v.kind = ValueKind::Constant;
    v.name = m.internName("answer");
    const ValueId vid = m.addValue(v);
    EXPECT_EQ(m.nameOf(vid), "answer");
}

// ---- Pool snapshot codec ------------------------------------------

TEST(MirLayout, PoolCodecMatchesElementWiseCodec)
{
    Module m;
    ModuleBuilder mb(m);
    auto fb = mb.function("f", {64, 64});
    const ValueId sum = fb.add(fb.param(0), fb.param(1));
    fb.ret(sum);

    ByteWriter pool_w;
    serializeModulePools(m, pool_w);
    const std::string pool_bytes = pool_w.take();
    ByteReader pool_r(pool_bytes);
    Module via_pools;
    ASSERT_TRUE(deserializeModulePools(pool_r, via_pools));

    ByteWriter elem_w;
    serializeModule(m, elem_w);
    const std::string elem_bytes = elem_w.take();
    ByteReader elem_r(elem_bytes);
    Module via_elems;
    ASSERT_TRUE(deserializeModule(elem_r, via_elems));

    EXPECT_EQ(printModule(via_pools), printModule(via_elems));
    EXPECT_EQ(printModule(via_pools), printModule(m));
}

TEST(MirLayout, PoolCodecRejectsTruncatedInput)
{
    Module m;
    ModuleBuilder mb(m);
    auto fb = mb.function("f", {64});
    fb.ret(fb.param(0));

    ByteWriter w;
    serializeModulePools(m, w);
    std::string bytes = w.take();
    bytes.resize(bytes.size() / 2);
    ByteReader r(bytes);
    Module out;
    EXPECT_FALSE(deserializeModulePools(r, out));
}

// ---- LocSet bitmap tier -------------------------------------------

Loc
loc(std::uint32_t obj, std::int32_t offset)
{
    Loc l;
    l.obj = ObjectId(obj);
    l.offset = offset;
    return l;
}

TEST(MirLayout, LocSetPromotesAndKeepsSortedOrder)
{
    LocSet set;
    std::set<Loc> ref;
    // Mixed objects, offsets and the collapsed (-1) sentinel, inserted
    // in a scrambled order so promotion sees an arbitrary history.
    for (std::uint32_t i = 0; i < 3 * LocSet::kPromote; ++i) {
        const std::uint32_t obj = (i * 7) % 5;
        const std::int32_t off =
            (i % 11 == 0) ? Loc::unknownOffset
                          : static_cast<std::int32_t>((i * 13) % 97);
        set.insert(loc(obj, off));
        ref.insert(loc(obj, off));
    }
    ASSERT_TRUE(set.onBitset());
    ASSERT_EQ(set.size(), ref.size());
    // Iteration must match std::set's (obj, signed offset) order, with
    // collapsed (-1) sorting before offset 0.
    auto it = set.begin();
    for (const Loc &expect : ref) {
        ASSERT_NE(it, set.end());
        EXPECT_EQ(*it, expect);
        ++it;
    }
    EXPECT_EQ(it, set.end());

    for (const Loc &l : ref)
        EXPECT_TRUE(set.contains(l));
    EXPECT_FALSE(set.contains(loc(99, 0)));
}

TEST(MirLayout, LocSetCompactDemotesWithoutChangingContent)
{
    LocSet set;
    for (std::uint32_t i = 0; i < 2 * LocSet::kPromote; ++i)
        set.insert(loc(i % 3, static_cast<std::int32_t>(i)));
    ASSERT_TRUE(set.onBitset());
    const LocSet paged = set;

    set.compact();
    EXPECT_FALSE(set.onBitset());
    EXPECT_EQ(set.size(), paged.size());
    // Mixed-tier equality: element-wise over identical orderings.
    EXPECT_TRUE(set == paged);
    // compact() on a vector-tier set is a no-op.
    set.compact();
    EXPECT_TRUE(set == paged);
}

TEST(MirLayout, LocSetPagedUnionMatchesElementWise)
{
    LocSet a, b;
    std::set<Loc> ref;
    for (std::uint32_t i = 0; i < 2 * LocSet::kPromote; ++i) {
        a.insert(loc(i % 4, static_cast<std::int32_t>(i * 3)));
        ref.insert(loc(i % 4, static_cast<std::int32_t>(i * 3)));
        b.insert(loc(i % 4, static_cast<std::int32_t>(i * 3 + 1)));
        ref.insert(loc(i % 4, static_cast<std::int32_t>(i * 3 + 1)));
    }
    ASSERT_TRUE(a.onBitset());
    ASSERT_TRUE(b.onBitset());
    a.unionWith(b);
    EXPECT_EQ(a.size(), ref.size());
    auto it = a.begin();
    for (const Loc &expect : ref) {
        ASSERT_NE(it, a.end());
        EXPECT_EQ(*it, expect);
        ++it;
    }
}

TEST(MirLayout, LocSetPagedIntersectionMatchesElementWise)
{
    LocSet a, b;
    for (std::uint32_t i = 0; i < 3 * LocSet::kPromote; ++i)
        a.insert(loc(0, static_cast<std::int32_t>(i)));
    for (std::uint32_t i = 0; i < 3 * LocSet::kPromote; ++i)
        b.insert(loc(0, static_cast<std::int32_t>(i * 2)));
    ASSERT_TRUE(a.onBitset());
    ASSERT_TRUE(b.onBitset());

    LocSet expected;
    for (const Loc &l : a) {
        if (b.contains(l))
            expected.insert(l);
    }
    a.intersectWith(b);
    EXPECT_TRUE(a == expected);
}

TEST(MirLayout, LocSetMixedTierUnionAndEquality)
{
    LocSet small;
    small.insert(loc(1, 4));
    small.insert(loc(2, Loc::unknownOffset));

    LocSet big;
    for (std::uint32_t i = 0; i < 2 * LocSet::kPromote; ++i)
        big.insert(loc(0, static_cast<std::int32_t>(i)));
    ASSERT_TRUE(big.onBitset());
    ASSERT_FALSE(small.onBitset());

    // paged |= vector and vector |= paged agree.
    LocSet lhs = big;
    lhs.unionWith(small);
    LocSet rhs = small;
    rhs.unionWith(big);
    EXPECT_EQ(lhs.size(), big.size() + small.size());
    EXPECT_TRUE(lhs == rhs);

    // Equality across tiers compares content, not representation.
    LocSet demoted = lhs;
    demoted.compact();
    EXPECT_TRUE(demoted == lhs);
    demoted.insert(loc(9, 9));
    EXPECT_TRUE(demoted != lhs);
}

} // namespace
} // namespace manta
