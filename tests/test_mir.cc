/**
 * @file
 * Tests for the MIR substrate: builder, verifier, printer/parser
 * round-trips, and the external registry.
 */
#include <gtest/gtest.h>

#include "mir/builder.h"
#include "mir/externals.h"
#include "mir/mir.h"
#include "mir/parser.h"
#include "mir/printer.h"
#include "mir/verifier.h"

namespace manta {
namespace {

/** Build the paper's Figure 3 example: a union instantiated per branch. */
Module
buildUnionExample()
{
    Module m;
    const auto se = StandardExternals::install(m);
    ModuleBuilder mb(m);

    auto fb = mb.function("main", {64});
    const BlockId then_bb = fb.newBlock("then");
    const BlockId else_bb = fb.newBlock("else");
    const BlockId exit_bb = fb.newBlock("exit");

    const ValueId slot = fb.alloca_(8);
    const ValueId cond =
        fb.icmp(CmpPred::EQ, fb.param(0), mb.constInt(0, 64));
    fb.br(cond, then_bb, else_bb);

    fb.setInsertPoint(then_bb);
    fb.store(slot, mb.constInt(1234, 64));
    const ValueId i = fb.load(slot, 64);
    fb.callExternal(se.printIntFn, {i}, 32);
    fb.jmp(exit_bb);

    fb.setInsertPoint(else_bb);
    const ValueId str = mb.addStringLiteral("msg", "hello");
    fb.store(slot, str);
    const ValueId s = fb.load(slot, 64);
    fb.callExternal(se.printStrFn, {s}, 32);
    fb.jmp(exit_bb);

    fb.setInsertPoint(exit_bb);
    fb.ret(mb.constInt(0, 64));
    return m;
}

TEST(Builder, ConstructsVerifiableModule)
{
    const Module m = buildUnionExample();
    const auto errors = verifyModule(m);
    EXPECT_TRUE(errors.empty())
        << (errors.empty() ? "" : errors.front());
    EXPECT_EQ(m.numFuncs(), 1u);
    EXPECT_GT(m.numInsts(), 8u);
}

TEST(Builder, ParamWidthsRespected)
{
    Module m;
    ModuleBuilder mb(m);
    auto fb = mb.function("f", {64, 32, 8});
    fb.ret();
    EXPECT_EQ(m.value(fb.param(0)).width, 64);
    EXPECT_EQ(m.value(fb.param(1)).width, 32);
    EXPECT_EQ(m.value(fb.param(2)).width, 8);
}

TEST(Builder, FuncAddrMarksAddressTaken)
{
    Module m;
    ModuleBuilder mb(m);
    auto callee = mb.function("callee", {64});
    callee.ret(callee.param(0));
    auto caller = mb.function("caller", {});
    const ValueId addr = mb.funcAddr(callee.funcId());
    caller.icall(addr, {mb.constInt(7, 64)}, 64);
    caller.ret();
    EXPECT_TRUE(m.func(callee.funcId()).addressTaken);
    EXPECT_EQ(m.addressTakenFuncs().size(), 1u);
}

TEST(Builder, OwningFuncTracksDefiners)
{
    Module m;
    ModuleBuilder mb(m);
    auto fb = mb.function("f", {64});
    const ValueId v = fb.copy(fb.param(0));
    fb.ret(v);
    EXPECT_EQ(m.owningFunc(v), fb.funcId());
    EXPECT_EQ(m.owningFunc(fb.param(0)), fb.funcId());
    EXPECT_FALSE(m.owningFunc(mb.constInt(1, 64)).valid());
}

TEST(Verifier, CatchesMissingTerminator)
{
    Module m;
    ModuleBuilder mb(m);
    auto fb = mb.function("f", {});
    fb.copy(mb.constInt(1, 64)); // no terminator
    const auto errors = verifyModule(m);
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors.front().find("terminator"), std::string::npos);
}

TEST(Verifier, CatchesCrossFunctionOperand)
{
    Module m;
    ModuleBuilder mb(m);
    auto f = mb.function("f", {64});
    f.ret(f.param(0));
    auto g = mb.function("g", {});
    g.ret(f.param(0)); // foreign operand
    const auto errors = verifyModule(m);
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors.front().find("crosses function"), std::string::npos);
}

TEST(Verifier, CatchesNonBooleanBranch)
{
    Module m;
    ModuleBuilder mb(m);
    auto fb = mb.function("f", {64});
    const BlockId other = fb.newBlock("other");
    fb.br(fb.param(0), other, other); // 64-bit condition
    fb.setInsertPoint(other);
    fb.ret();
    const auto errors = verifyModule(m);
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors.front().find("1 bit"), std::string::npos);
}

TEST(Verifier, AcceptsWellFormedPhi)
{
    Module m;
    ModuleBuilder mb(m);
    auto fb = mb.function("f", {64});
    const BlockId a = fb.newBlock("a");
    const BlockId b = fb.newBlock("b");
    const BlockId join = fb.newBlock("join");
    const ValueId cond =
        fb.icmp(CmpPred::NE, fb.param(0), mb.constInt(0, 64));
    fb.br(cond, a, b);
    fb.setInsertPoint(a);
    const ValueId va = fb.copy(fb.param(0));
    fb.jmp(join);
    fb.setInsertPoint(b);
    const ValueId vb = fb.copy(mb.constInt(5, 64));
    fb.jmp(join);
    fb.setInsertPoint(join);
    const ValueId merged = fb.phi({va, vb}, {a, b});
    fb.ret(merged);
    EXPECT_TRUE(verifyModule(m).empty());
}

TEST(Externals, StandardSetInstalled)
{
    Module m;
    const auto se = StandardExternals::install(m);
    EXPECT_EQ(m.external(se.mallocFn).role, ExternRole::Alloc);
    EXPECT_EQ(m.external(se.systemFn).role, ExternRole::CommandSink);
    EXPECT_EQ(m.external(se.strcpyFn).role, ExternRole::StrCopy);
    EXPECT_EQ(m.external(se.nvramGetFn).role, ExternRole::TaintSource);
    EXPECT_EQ(m.external(se.atoiFn).role, ExternRole::Sanitizer);
    EXPECT_EQ(m.findExternal("malloc"), se.mallocFn);
    EXPECT_FALSE(m.findExternal("no_such_fn").valid());
}

TEST(Externals, SignaturesAreTyped)
{
    Module m;
    const auto se = StandardExternals::install(m);
    const TypeTable &tt = m.types();
    const External &strcpy_ext = m.external(se.strcpyFn);
    ASSERT_EQ(strcpy_ext.paramTypes.size(), 2u);
    EXPECT_EQ(tt.toString(strcpy_ext.paramTypes[0]), "ptr(int8)");
    const External &malloc_ext = m.external(se.mallocFn);
    EXPECT_EQ(tt.toString(malloc_ext.retType), "ptr(top)");
    EXPECT_FALSE(m.external(se.freeFn).retType.valid());
}

TEST(Printer, EmitsFunctionShape)
{
    const Module m = buildUnionExample();
    const std::string text = printModule(m);
    EXPECT_NE(text.find("func @main"), std::string::npos);
    EXPECT_NE(text.find("alloca 8"), std::string::npos);
    EXPECT_NE(text.find("call.32 @print_str"), std::string::npos);
    EXPECT_NE(text.find("string @msg \"hello\""), std::string::npos);
}

TEST(Parser, ParsesMinimalFunction)
{
    const std::string text = R"(
func @id(%x:64) {
entry:
  ret %x
}
)";
    const Module m = parseModuleOrDie(text);
    EXPECT_EQ(m.numFuncs(), 1u);
    EXPECT_TRUE(verifyModule(m).empty());
    const Function &fn = m.func(FuncId(0));
    EXPECT_EQ(m.str(fn.name), "id");
    EXPECT_EQ(fn.params.size(), 1u);
}

TEST(Parser, ParsesControlFlowAndPhi)
{
    const std::string text = R"(
func @max(%a:64, %b:64) {
entry:
  %c = icmp.gt %a, %b
  br %c, left, right
left:
  jmp done
right:
  jmp done
done:
  %m = phi [%a, left], [%b, right]
  ret %m
}
)";
    const Module m = parseModuleOrDie(text);
    EXPECT_TRUE(verifyModule(m).empty());
    EXPECT_EQ(m.func(FuncId(0)).blocks.size(), 4u);
}

TEST(Parser, ParsesCallsAndConstants)
{
    const std::string text = R"(
func @alloc() {
entry:
  %p = call.64 @malloc(16:64)
  store %p, 0:64
  %v = load.32 %p
  call.32 @print_int(%x0)
  ret
}
func @helper(%a:64) {
entry:
  ret %a
}
)";
    // %x0 is undefined: expect a parse error.
    Module m;
    std::string error;
    EXPECT_FALSE(parseModule(text, m, error));
    EXPECT_NE(error.find("undefined value"), std::string::npos);
}

TEST(Parser, ResolvesInternalAndExternalCalls)
{
    const std::string text = R"(
func @caller(%a:64) {
entry:
  %r = call.64 @helper(%a)
  %p = call.64 @malloc(%a)
  ret %r
}
func @helper(%x:64) {
entry:
  ret %x
}
)";
    const Module m = parseModuleOrDie(text);
    EXPECT_TRUE(verifyModule(m).empty());
    const Function &caller = m.func(m.findFunc("caller"));
    const Instruction &first_call =
        m.inst(m.block(caller.blocks[0]).insts[0]);
    EXPECT_TRUE(first_call.callee.valid());
    const Instruction &second_call =
        m.inst(m.block(caller.blocks[0]).insts[1]);
    EXPECT_TRUE(second_call.external.valid());
}

TEST(Parser, FuncAddressOperandMarksAddressTaken)
{
    const std::string text = R"(
func @target(%x:64) {
entry:
  ret %x
}
func @caller() {
entry:
  %t = copy @target
  %r = icall.64 %t(3:64)
  ret %r
}
)";
    const Module m = parseModuleOrDie(text);
    EXPECT_TRUE(verifyModule(m).empty());
    EXPECT_TRUE(m.func(m.findFunc("target")).addressTaken);
}

TEST(Parser, RejectsMalformedInput)
{
    Module m;
    std::string error;
    EXPECT_FALSE(parseModule("func @f( {\n}\n", m, error));
    Module m2;
    EXPECT_FALSE(parseModule(
        "func @f() {\nentry:\n  %x = frobnicate %y\n  ret\n}\n", m2, error));
    EXPECT_NE(error.find("unknown"), std::string::npos);
}

TEST(RoundTrip, PrintThenParsePreservesStructure)
{
    const Module original = buildUnionExample();
    const std::string text = printModule(original);
    const Module reparsed = parseModuleOrDie(text);
    EXPECT_TRUE(verifyModule(reparsed).empty());
    EXPECT_EQ(reparsed.numFuncs(), original.numFuncs());
    // Same instruction opcode sequence per function.
    for (std::size_t f = 0; f < original.numFuncs(); ++f) {
        const Function &fa = original.func(FuncId(FuncId::RawType(f)));
        const FuncId fb_id = reparsed.findFunc(original.str(fa.name));
        ASSERT_TRUE(fb_id.valid());
        const Function &fb = reparsed.func(fb_id);
        ASSERT_EQ(fa.blocks.size(), fb.blocks.size());
        for (std::size_t b = 0; b < fa.blocks.size(); ++b) {
            const auto &ia = original.block(fa.blocks[b]).insts;
            const auto &ib = reparsed.block(fb.blocks[b]).insts;
            ASSERT_EQ(ia.size(), ib.size());
            for (std::size_t k = 0; k < ia.size(); ++k) {
                EXPECT_EQ(original.inst(ia[k]).op, reparsed.inst(ib[k]).op);
            }
        }
    }
}

TEST(RoundTrip, DoubleRoundTripIsStable)
{
    const Module original = buildUnionExample();
    const std::string once = printModule(original);
    const Module reparsed = parseModuleOrDie(once);
    const std::string twice = printModule(reparsed);
    const Module reparsed2 = parseModuleOrDie(twice);
    EXPECT_EQ(printModule(reparsed2), twice);
}

} // namespace
} // namespace manta
