/**
 * @file
 * Tests for the serving layer (docs/SERVING.md): the NDJSON protocol,
 * cache invalidation, snapshot round-trips and their failure modes,
 * warm-vs-cold byte identity, and the --help parity contract.
 *
 * The replay test at the bottom re-executes every `>>>` request line
 * from docs/SERVING.md against a fresh Service and checks the
 * documented `<<<` response shape (ok flag, error code), so protocol
 * examples in the docs cannot drift from the implementation.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "serve/cli_modes.h"
#include "serve/json.h"
#include "serve/keys.h"
#include "serve/service.h"
#include "serve/session.h"
#include "serve/snapshot.h"

namespace manta {
namespace serve {
namespace {

// A three-function chain @a -> @b -> @c with enough memory traffic
// for refinement candidates to exist in every function.
const char *kChainText = R"(
func @c(%p:64) {
entry:
  %v = load.64 %p
  %w = add %v, 1:64
  ret %w
}
func @b(%p:64) {
entry:
  %r = call.64 @c(%p)
  ret %r
}
func @a() {
entry:
  %buf = alloca 16
  store %buf, 7:64
  %r = call.64 @b(%buf)
  ret %r
}
)";

// Same module with @b's body changed (extra arithmetic).
const char *kChainPatchedB = R"(
func @c(%p:64) {
entry:
  %v = load.64 %p
  %w = add %v, 1:64
  ret %w
}
func @b(%p:64) {
entry:
  %r = call.64 @c(%p)
  %s = add %r, 2:64
  ret %s
}
func @a() {
entry:
  %buf = alloca 16
  store %buf, 7:64
  %r = call.64 @b(%buf)
  ret %r
}
)";

// A fourth function rides along untouched by either edit.
const char *kIslandTail = R"(
func @island(%x:64) {
entry:
  %y = add %x, 3:64
  ret %y
}
)";

Json
parseOrDie(const std::string &text)
{
    Json j;
    std::string err;
    EXPECT_TRUE(parseJson(text, j, err)) << err << " in: " << text;
    return j;
}

std::string
request(Service &service, const std::string &line)
{
    return service.handleLine(line);
}

/** Response must be ok:true; returns the result object. */
Json
okResult(Service &service, const std::string &line)
{
    const Json resp = parseOrDie(request(service, line));
    const Json *ok = resp.get("ok");
    EXPECT_TRUE(ok != nullptr && ok->isBool() && ok->asBool())
        << "response not ok: " << resp.dump();
    const Json *result = resp.get("result");
    EXPECT_NE(result, nullptr);
    return result != nullptr ? *result : Json::null();
}

/** Response must be ok:false with the given error code. */
void
expectError(Service &service, const std::string &line, const char *code)
{
    const Json resp = parseOrDie(request(service, line));
    const Json *ok = resp.get("ok");
    ASSERT_TRUE(ok != nullptr && ok->isBool());
    EXPECT_FALSE(ok->asBool()) << resp.dump();
    const Json *error = resp.get("error");
    ASSERT_NE(error, nullptr);
    const Json *got = error->get("code");
    ASSERT_TRUE(got != nullptr && got->isString());
    EXPECT_EQ(got->asString(), code) << resp.dump();
}

std::string
analyzeLine(const std::string &binary, const std::string &text)
{
    Json params = Json::object();
    params.set("binary", Json::string(binary));
    params.set("text", Json::string(text));
    Json req = Json::object();
    req.set("id", Json::integer(1));
    req.set("method", Json::string("analyze"));
    req.set("params", std::move(params));
    return req.dump();
}

TEST(ServeJson, RoundTripsNestedDocuments)
{
    const std::string text =
        R"({"id":42,"s":"a\"b\\c\nd","arr":[1,2.5,true,null],"o":{"k":"v"}})";
    const Json j = parseOrDie(text);
    EXPECT_EQ(j.get("id")->asInt(), 42);
    EXPECT_TRUE(j.get("id")->isIntegral());
    EXPECT_EQ(j.get("s")->asString(), "a\"b\\c\nd");
    EXPECT_EQ(j.get("arr")->items().size(), 4u);
    // Dump/parse fixpoint.
    const Json again = parseOrDie(j.dump());
    EXPECT_EQ(again.dump(), j.dump());
}

TEST(ServeJson, RejectsMalformedInput)
{
    Json j;
    std::string err;
    EXPECT_FALSE(parseJson("{\"a\":", j, err));
    EXPECT_FALSE(parseJson("{} trailing", j, err));
    EXPECT_FALSE(parseJson("{'single':1}", j, err));
    EXPECT_FALSE(parseJson("[1,]", j, err));
}

TEST(ServeProtocol, ErrorCodes)
{
    Service service;
    expectError(service, "not json at all", errc::kParseError);
    expectError(service, "[1,2,3]", errc::kBadRequest);
    expectError(service, R"({"id":1})", errc::kBadRequest);
    expectError(service, R"({"id":1,"method":"nope"})",
                errc::kUnknownMethod);
    expectError(service,
                R"({"id":1,"method":"types","params":{"binary":"x"}})",
                errc::kUnknownBinary);
    expectError(service, R"({"id":1,"method":"analyze","params":{}})",
                errc::kBadRequest);
    expectError(
        service,
        R"({"id":1,"method":"analyze","params":{"binary":"x","text":"func @"}})",
        errc::kAnalysisError);
}

TEST(ServeProtocol, AnalyzeRenderSliceStatus)
{
    Service service;
    const Json first = okResult(service, analyzeLine("demo", kChainText));
    EXPECT_EQ(first.get("funcs")->asInt(), 3);
    EXPECT_FALSE(first.get("unchanged")->asBool());
    EXPECT_TRUE(first.get("dirty")->items().empty());

    // Identical resubmission short-circuits on the text hash.
    const Json again = okResult(service, analyzeLine("demo", kChainText));
    EXPECT_TRUE(again.get("unchanged")->asBool());

    const Json types = okResult(
        service, R"({"id":2,"method":"types","params":{"binary":"demo"}})");
    EXPECT_NE(types.get("text")->asString().find("func @a"),
              std::string::npos);
    okResult(service,
             R"({"id":3,"method":"lint","params":{"binary":"demo"}})");
    okResult(service,
             R"({"id":4,"method":"icall","params":{"binary":"demo"}})");
    const Json taint = okResult(
        service, R"({"id":9,"method":"taint","params":{"binary":"demo"}})");
    EXPECT_NE(taint.get("text")->asString().find("flow(s)"),
              std::string::npos);

    const Json slice = okResult(
        service,
        R"({"id":5,"method":"slice","params":{"binary":"demo","func":"a","value":"buf"}})");
    EXPECT_FALSE(slice.get("values")->items().empty());

    const Json status =
        okResult(service, R"({"id":6,"method":"status"})");
    ASSERT_EQ(status.get("binaries")->items().size(), 1u);
    const Json &entry = status.get("binaries")->items()[0];
    EXPECT_EQ(entry.get("binary")->asString(), "demo");
    EXPECT_TRUE(entry.get("analyzed")->asBool());
    EXPECT_EQ(entry.get("analyses")->asInt(), 1);

    okResult(service, R"({"id":7,"method":"shutdown"})");
    EXPECT_TRUE(service.shuttingDown());
    expectError(service,
                R"({"id":8,"method":"lint","params":{"binary":"demo"}})",
                errc::kShuttingDown);
}

TEST(ServeInvalidation, PatchDirtiesExactlyTheFunctionAndItsClosure)
{
    BinarySession session("inv");
    const std::string before = std::string(kChainText) + kIslandTail;
    const std::string after = std::string(kChainPatchedB) + kIslandTail;
    ASSERT_TRUE(session.analyze(before).ok);

    const AnalyzeOutcome out = session.analyze(after);
    ASSERT_TRUE(out.ok);
    // Exactly @b changed...
    ASSERT_EQ(out.dirty.size(), 1u);
    EXPECT_EQ(out.dirty[0], "b");
    // ...and the re-analysis frontier is its call closure: the caller
    // @a, @b itself, and the callee @c - but never @island.
    EXPECT_EQ(out.closure, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ServeInvalidation, UnchangedResubmissionReusesEveryCandidate)
{
    BinarySession session("reuse");
    ASSERT_TRUE(session.analyze(kChainText).ok);
    // Same text with different whitespace: same content hashes, so the
    // memo answers every refinement candidate without a walk.
    std::string reformatted = kChainText;
    reformatted += "\n\n";
    const AnalyzeOutcome out = session.analyze(reformatted);
    ASSERT_TRUE(out.ok);
    EXPECT_FALSE(out.unchanged); // text hash differs...
    EXPECT_TRUE(out.dirty.empty()); // ...but no function does.
}

TEST(ServeIdentity, WarmRendersMatchColdByteForByte)
{
    // Warm: analyze the base text, then the patched text.
    BinarySession warm("warm");
    ASSERT_TRUE(warm.analyze(kChainText).ok);
    const AnalyzeOutcome warm_out = warm.analyze(kChainPatchedB);
    ASSERT_TRUE(warm_out.ok);

    // Cold: a fresh session sees only the patched text.
    BinarySession cold("cold");
    ASSERT_TRUE(cold.analyze(kChainPatchedB).ok);

    EXPECT_EQ(warm.renderTypes(), cold.renderTypes());
    EXPECT_EQ(warm.renderLint(), cold.renderLint());
    EXPECT_EQ(warm.renderIcall(), cold.renderIcall());
    EXPECT_EQ(warm.renderTaint(), cold.renderTaint());
}

TEST(ServeSnapshot, RoundTripRestoresIdenticalRenders)
{
    BinarySession saver("snap");
    ASSERT_TRUE(saver.analyze(kChainText).ok);
    std::string bytes, error;
    ASSERT_TRUE(saver.saveSnapshot(bytes, error)) << error;
    EXPECT_EQ(bytes.compare(0, 4, "MSNP"), 0);

    BinarySession loader("snap");
    ASSERT_TRUE(loader.loadSnapshot(bytes, error)) << error;
    EXPECT_EQ(loader.renderTypes(), saver.renderTypes());
    EXPECT_EQ(loader.renderLint(), saver.renderLint());
    EXPECT_EQ(loader.renderIcall(), saver.renderIcall());
    EXPECT_EQ(loader.renderTaint(), saver.renderTaint());
    EXPECT_EQ(loader.textHash(), saver.textHash());

    // The restored memo keeps answering: a patch after reload reuses
    // records exactly as the saving session would have.
    const AnalyzeOutcome out = loader.analyze(kChainPatchedB);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.dirty, std::vector<std::string>{"b"});
}

TEST(ServeSnapshot, CorruptByteIsRejectedAndColdAnalysisStillWorks)
{
    BinarySession saver("snap");
    ASSERT_TRUE(saver.analyze(kChainText).ok);
    std::string bytes, error;
    ASSERT_TRUE(saver.saveSnapshot(bytes, error)) << error;

    // Flip one byte in every region of the file: header, section
    // table, and payloads. Each corruption must be rejected outright.
    for (const std::size_t at :
         {std::size_t(1), std::size_t(9), bytes.size() / 2,
          bytes.size() - 1}) {
        std::string bad = bytes;
        bad[at] = static_cast<char>(bad[at] ^ 0x5a);
        BinarySession loader("snap");
        std::string load_error;
        EXPECT_FALSE(loader.loadSnapshot(bad, load_error))
            << "byte " << at << " accepted";
        EXPECT_FALSE(load_error.empty());
        EXPECT_FALSE(loader.hasResult());
        // Cold fallback: the session is still usable.
        EXPECT_TRUE(loader.analyze(kChainText).ok);
    }
}

TEST(ServeSnapshot, VersionMismatchIsRejected)
{
    BinarySession saver("snap");
    ASSERT_TRUE(saver.analyze(kChainText).ok);
    std::string bytes, error;
    ASSERT_TRUE(saver.saveSnapshot(bytes, error)) << error;

    // The u32 format version sits right after the 4-byte magic.
    std::string bad = bytes;
    bad[4] = static_cast<char>(kSnapshotVersion + 1);
    BinarySession loader("snap");
    std::string load_error;
    EXPECT_FALSE(loader.loadSnapshot(bad, load_error));
    EXPECT_NE(load_error.find("version"), std::string::npos) << load_error;
    EXPECT_FALSE(loader.hasResult());
    EXPECT_TRUE(loader.analyze(kChainText).ok);
}

TEST(ServeKeys, TextHashIsStableAndSensitive)
{
    const std::string a(100, 'x');
    std::string b = a;
    b[50] = 'y';
    EXPECT_EQ(hashText(a), hashText(a));
    EXPECT_NE(hashText(a), hashText(b));
    // Word-folded hashing must still see pure-length differences.
    EXPECT_NE(hashText(a), hashText(a + "x"));
    EXPECT_NE(hashText(std::string()), hashText(std::string(1, '\0')));
}

TEST(ServeCli, HelpTextCoversEveryMode)
{
    const std::string help = cliHelpText();
    for (const CliMode &mode : cliModes()) {
        EXPECT_NE(help.find(std::string("  ") + mode.name),
                  std::string::npos)
            << "mode '" << mode.name << "' missing from --help";
        EXPECT_NE(help.find(mode.summary), std::string::npos)
            << "summary for '" << mode.name << "' missing from --help";
    }
    EXPECT_NE(help.find("usage: manta_cli"), std::string::npos);
}

TEST(ServeCli, ModeListMatchesDispatchedModes)
{
    // The modes manta_cli's main() dispatches on. Adding a branch to
    // the binary without registering it in cliModes() (or vice versa)
    // must fail here - this list is the parity contract.
    const std::vector<std::string> dispatched = {
        "types", "bugs", "bugs-notype", "lint", "lint-notype",
        "lint-sarif", "icall", "stats", "run", "serve",
    };
    ASSERT_EQ(cliModes().size(), dispatched.size());
    for (std::size_t i = 0; i < dispatched.size(); ++i)
        EXPECT_EQ(cliModes()[i].name, dispatched[i]);
}

/**
 * Replay every `>>>` request from docs/SERVING.md and compare the
 * response against the documented `<<<` line: the ok flag must match,
 * and when the doc shows an error, the code must match too.
 */
TEST(ServeDocs, ServingMdExamplesReplay)
{
    std::ifstream doc(std::string(MANTA_DOCS_DIR) + "/SERVING.md");
    ASSERT_TRUE(doc.is_open()) << "docs/SERVING.md not found";
    Service service;
    std::string line;
    std::string pending_response;
    std::size_t replayed = 0;
    while (std::getline(doc, line)) {
        if (line.rfind(">>> ", 0) == 0) {
            pending_response = request(service, line.substr(4));
            ++replayed;
        } else if (line.rfind("<<< ", 0) == 0) {
            ASSERT_FALSE(pending_response.empty())
                << "expected line without a preceding request: " << line;
            const Json expected = parseOrDie(line.substr(4));
            const Json got = parseOrDie(pending_response);
            ASSERT_NE(expected.get("ok"), nullptr);
            EXPECT_EQ(got.get("ok")->asBool(),
                      expected.get("ok")->asBool())
                << "for documented request; got: " << pending_response;
            if (const Json *want_err = expected.get("error")) {
                const Json *got_err = got.get("error");
                ASSERT_NE(got_err, nullptr);
                EXPECT_EQ(got_err->get("code")->asString(),
                          want_err->get("code")->asString());
            }
            pending_response.clear();
        }
    }
    // The doc must actually contain a replayable session.
    EXPECT_GE(replayed, 6u);
}

} // namespace
} // namespace serve
} // namespace manta
