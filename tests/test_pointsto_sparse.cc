/**
 * @file
 * The sparse points-to solver: LocSet container semantics, delta
 * propagation on small CFG shapes, and the differential guarantee
 * that the sparse worklist engine computes a bit-identical solution
 * to the dense reference (MANTA_PTS_DENSE=1) on generated corpora —
 * including identical downstream inference results.
 */
#include <cstdlib>

#include <gtest/gtest.h>

#include "analysis/acyclic.h"
#include "analysis/locset.h"
#include "analysis/memobj.h"
#include "analysis/pointsto.h"
#include "core/pipeline.h"
#include "frontend/generator.h"
#include "mir/parser.h"

namespace manta {
namespace {

Loc
loc(std::uint32_t obj, std::int32_t offset)
{
    return Loc{ObjectId(obj), offset};
}

// ---------------------------------------------------------------------------
// LocSet container semantics (must mirror the std::set it replaced).
// ---------------------------------------------------------------------------

TEST(LocSetTest, InsertDedupesAndReportsInsertion)
{
    LocSet set;
    EXPECT_TRUE(set.empty());
    EXPECT_TRUE(set.insert(loc(1, 8)).second);
    EXPECT_FALSE(set.insert(loc(1, 8)).second);
    EXPECT_EQ(set.size(), 1u);
    EXPECT_EQ(set.insert(loc(1, 8)).first->offset, 8);
}

TEST(LocSetTest, IterationIsSortedByObjectThenSignedOffset)
{
    LocSet set;
    set.insert(loc(2, 0));
    set.insert(loc(1, 16));
    set.insert(loc(1, Loc::unknownOffset));
    set.insert(loc(1, 0));
    ASSERT_EQ(set.size(), 4u);
    auto it = set.begin();
    // The unknown offset is -1 and must sort before real offsets,
    // exactly as the signed std::set ordering did.
    EXPECT_EQ(*it++, loc(1, Loc::unknownOffset));
    EXPECT_EQ(*it++, loc(1, 0));
    EXPECT_EQ(*it++, loc(1, 16));
    EXPECT_EQ(*it++, loc(2, 0));
    EXPECT_EQ(it, set.end());
}

TEST(LocSetTest, RangeInsertIsSetUnion)
{
    LocSet a;
    a.insert(loc(1, 0));
    a.insert(loc(3, 0));
    LocSet b;
    b.insert(loc(2, 0));
    b.insert(loc(3, 0));
    a.insert(b.begin(), b.end());
    ASSERT_EQ(a.size(), 3u);
    EXPECT_TRUE(a.contains(loc(1, 0)));
    EXPECT_TRUE(a.contains(loc(2, 0)));
    EXPECT_EQ(a.count(loc(3, 0)), 1u);
    EXPECT_EQ(a.count(loc(4, 0)), 0u);
}

TEST(LocSetTest, GrowsPastInlineCapacity)
{
    LocSet set;
    constexpr int n = 37; // enough to spill and regrow a few times
    for (int i = n - 1; i >= 0; --i)
        set.insert(loc(7, i * 4));
    ASSERT_EQ(set.size(), static_cast<std::size_t>(n));
    int expect = 0;
    for (const Loc &l : set) {
        EXPECT_EQ(l, loc(7, expect));
        expect += 4;
    }
    for (int i = 0; i < n; ++i)
        EXPECT_FALSE(set.insert(loc(7, i * 4)).second);
}

TEST(LocSetTest, CopyAndMoveKeepContents)
{
    LocSet small;
    small.insert(loc(1, 0));
    LocSet big;
    for (int i = 0; i < 16; ++i)
        big.insert(loc(2, i));

    LocSet small_copy = small;
    LocSet big_copy = big;
    EXPECT_EQ(small_copy, small);
    EXPECT_EQ(big_copy, big);

    LocSet big_moved = std::move(big_copy);
    EXPECT_EQ(big_moved, big);
    EXPECT_TRUE(big_copy.empty()); // NOLINT: moved-from is reusable
    big_copy = big_moved;
    EXPECT_EQ(big_copy, big);

    // Self-consistency of equality.
    EXPECT_NE(small, big);
    big_moved.clear();
    EXPECT_TRUE(big_moved.empty());
    EXPECT_NE(big_moved, big);
}

// ---------------------------------------------------------------------------
// Delta propagation on explicit CFG shapes.
// ---------------------------------------------------------------------------

class SparseDiffTest : public ::testing::Test
{
  protected:
    /** Run both engines on one module text; return (dense, sparse). */
    void
    analyzeBoth(const std::string &text)
    {
        module_ = parseModuleOrDie(text);
        objects_ = std::make_unique<MemObjects>(module_);
        dense_ = std::make_unique<PointsTo>(module_, *objects_, true,
                                            PtsSolver::Dense);
        dense_->run();
        sparse_ = std::make_unique<PointsTo>(module_, *objects_, true,
                                             PtsSolver::Sparse);
        sparse_->run();
    }

    void
    expectIdentical()
    {
        for (std::size_t v = 0; v < module_.numValues(); ++v) {
            const ValueId vid(static_cast<ValueId::RawType>(v));
            EXPECT_EQ(dense_->locs(vid), sparse_->locs(vid))
                << "value #" << v;
        }
        EXPECT_EQ(dense_->fieldBuckets().size(),
                  sparse_->fieldBuckets().size());
        for (const auto &[obj, off] : dense_->fieldBuckets()) {
            EXPECT_EQ(dense_->fieldPts(obj, off), sparse_->fieldPts(obj, off))
                << "bucket (" << obj.raw() << ", " << off << ")";
        }
    }

    Module module_;
    std::unique_ptr<MemObjects> objects_;
    std::unique_ptr<PointsTo> dense_;
    std::unique_ptr<PointsTo> sparse_;
};

TEST_F(SparseDiffTest, DiamondStoreLoadPropagatesDeltas)
{
    // Stores on both diamond arms feed a load past the join; the load
    // must be re-transferred when either arm's bucket grows.
    analyzeBoth(R"(
func @f(%c:1) {
entry:
  %slot = alloca 8
  %a = call.64 @malloc(16:64)
  %b = call.64 @malloc(32:64)
  br %c, left, right
left:
  store %slot, %a
  jmp done
right:
  store %slot, %b
  jmp done
done:
  %l = load.64 %slot
  ret
}
)");
    expectIdentical();
    // The load observes both arms' stores.
    const auto find = [&](const char *name) {
        for (std::size_t v = 0; v < module_.numValues(); ++v) {
            const ValueId vid(static_cast<ValueId::RawType>(v));
            if (module_.nameOf(vid) == name)
                return vid;
        }
        return ValueId::invalid();
    };
    const LocSet &loaded = sparse_->locs(find("l"));
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_TRUE(sparse_->stats().converged);
    EXPECT_TRUE(dense_->stats().converged);
    // The sparse engine transfers strictly fewer instructions than
    // dense passes x instructions.
    EXPECT_LT(sparse_->stats().pops, dense_->stats().pops);
    EXPECT_GT(sparse_->stats().deltaLocs, 0u);
}

TEST_F(SparseDiffTest, ChainedCopiesConvergeIdentically)
{
    // A store whose payload arrives late (through a call binding)
    // exercises the "old address x new payload" half of the delta
    // store transfer, plus bucket re-reads at the load.
    analyzeBoth(R"(
func @make() {
entry:
  %h = call.64 @malloc(8:64)
  ret %h
}
func @f() {
entry:
  %slot = alloca 8
  %p = call.64 @make()
  store %slot, %p
  %l = load.64 %slot
  %l2 = copy %l
  ret
}
)");
    expectIdentical();
}

TEST_F(SparseDiffTest, SymbolicCollapseMatchesDenseSchedule)
{
    // The symbolic-index branch is non-monotone (it fires only while
    // one side is pointer-free), so identical results require the
    // sparse engine to replay the dense visit schedule.
    analyzeBoth(R"(
func @f(%i:64) {
entry:
  %s = alloca 32
  %t = alloca 8
  %x = add %s, %i
  %y = sub %x, 4:64
  %h = call.64 @malloc(8:64)
  store %x, %h
  %l = load.64 %y
  ret
}
)");
    expectIdentical();
}

TEST_F(SparseDiffTest, StrcpyPayloadCacheMatchesDense)
{
    analyzeBoth(R"(
func @f() {
entry:
  %src = alloca 16
  %dst = alloca 16
  %h = call.64 @malloc(8:64)
  store %src, %h
  %r = call.64 @strcpy(%dst, %src)
  %l = load.64 %dst
  ret
}
)");
    expectIdentical();
}

// ---------------------------------------------------------------------------
// Differential fuzzing over generated corpora + downstream inference.
// ---------------------------------------------------------------------------

TEST(SparseCorpusTest, BitIdenticalToDenseOnGeneratedPrograms)
{
    for (const std::uint64_t seed : {11ull, 97ull, 2026ull}) {
        GenConfig cfg;
        cfg.seed = seed;
        cfg.numFunctions = 40;
        cfg.realBugRate = 0.05;
        cfg.decoyRate = 0.05;
        GeneratedProgram prog = generateProgram(cfg);
        makeAcyclic(*prog.module);
        const Module &m = *prog.module;
        const MemObjects objects(m);

        PointsTo dense(m, objects, true, PtsSolver::Dense);
        dense.run();
        PointsTo sparse(m, objects, true, PtsSolver::Sparse);
        sparse.run();

        ASSERT_TRUE(dense.stats().converged) << "seed " << seed;
        ASSERT_TRUE(sparse.stats().converged) << "seed " << seed;

        for (std::size_t v = 0; v < m.numValues(); ++v) {
            const ValueId vid(static_cast<ValueId::RawType>(v));
            ASSERT_EQ(dense.locs(vid), sparse.locs(vid))
                << "seed " << seed << " value #" << v;
        }

        // Field buckets: same set of buckets, same flow-insensitive
        // contents.
        auto dense_buckets = dense.fieldBuckets();
        auto sparse_buckets = sparse.fieldBuckets();
        std::sort(dense_buckets.begin(), dense_buckets.end());
        std::sort(sparse_buckets.begin(), sparse_buckets.end());
        ASSERT_EQ(dense_buckets, sparse_buckets) << "seed " << seed;
        for (const auto &[obj, off] : dense_buckets) {
            ASSERT_EQ(dense.fieldPts(obj, off), sparse.fieldPts(obj, off))
                << "seed " << seed;
        }

        // Flow-filtered loads: identical observable contents at every
        // load site through every address location.
        for (std::size_t i = 0; i < m.numInsts(); ++i) {
            const InstId iid(static_cast<InstId::RawType>(i));
            if (m.inst(iid).op != Opcode::Load)
                continue;
            for (const Loc &addr :
                 sparse.locs(m.operand(m.inst(iid), 0))) {
                ASSERT_EQ(dense.loadedLocs(addr, iid),
                          sparse.loadedLocs(addr, iid))
                    << "seed " << seed << " load #" << i;
            }
        }
    }
}

TEST(SparseCorpusTest, DownstreamInferenceMatchesDense)
{
    GenConfig cfg;
    cfg.seed = 31337;
    cfg.numFunctions = 40;
    cfg.realBugRate = 0.05;
    GeneratedProgram prog = generateProgram(cfg);
    makeAcyclic(*prog.module);
    Module &m = *prog.module;

    setenv("MANTA_PTS_DENSE", "1", 1);
    MantaAnalyzer dense_analyzer(m);
    unsetenv("MANTA_PTS_DENSE");
    MantaAnalyzer sparse_analyzer(m);
    ASSERT_EQ(dense_analyzer.pts().solver(), PtsSolver::Dense);
    ASSERT_EQ(sparse_analyzer.pts().solver(), PtsSolver::Sparse);

    const InferenceResult dense_result = dense_analyzer.infer();
    const InferenceResult sparse_result = sparse_analyzer.infer();
    for (std::size_t v = 0; v < m.numValues(); ++v) {
        const ValueId vid(static_cast<ValueId::RawType>(v));
        const ValueKind kind = m.value(vid).kind;
        if (kind != ValueKind::Argument && kind != ValueKind::InstResult)
            continue;
        ASSERT_EQ(dense_result.valueClass(vid),
                  sparse_result.valueClass(vid))
            << "value #" << v;
    }
    EXPECT_GT(sparse_analyzer.pts().stats().seconds, 0.0);
    EXPECT_LE(sparse_analyzer.pts().stats().pops,
              dense_analyzer.pts().stats().pops);
}

TEST(SparseCorpusTest, FlowInsensitiveModeAlsoMatches)
{
    GenConfig cfg;
    cfg.seed = 777;
    cfg.numFunctions = 25;
    GeneratedProgram prog = generateProgram(cfg);
    makeAcyclic(*prog.module);
    const Module &m = *prog.module;
    const MemObjects objects(m);

    PointsTo dense(m, objects, false, PtsSolver::Dense);
    dense.run();
    PointsTo sparse(m, objects, false, PtsSolver::Sparse);
    sparse.run();
    for (std::size_t v = 0; v < m.numValues(); ++v) {
        const ValueId vid(static_cast<ValueId::RawType>(v));
        ASSERT_EQ(dense.locs(vid), sparse.locs(vid)) << "value #" << v;
    }
}

} // namespace
} // namespace manta
